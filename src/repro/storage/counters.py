"""Access-count instrumentation.

The paper's Section 6 cost model measures IVM cost as "the combined number of
tuple accesses and index lookups incurred by the ∆/D-script".  This module
provides the counters that every storage-level operation reports into, plus a
*phase* mechanism so the benchmark harness can attribute accesses to the cost
components shown in Figure 12 (cache update, view diff computation, view
update).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class AccessCounts:
    """Raw access counts for one phase (or the total).

    ``index_maintenance`` tracks secondary-index entry mutations caused
    by counted writes.  It is deliberately *excluded* from :attr:`total`:
    the paper grants every approach free index maintenance (Section 7.2),
    so the headline metric stays comparable — but the work is no longer
    invisible, and reconciliation tests can assert that counted and
    uncounted write paths agree on it.
    """

    index_lookups: int = 0
    tuple_reads: int = 0
    tuple_writes: int = 0
    index_maintenance: int = 0

    @property
    def total(self) -> int:
        """Combined accesses, the paper's cost metric (index maintenance
        excluded per the Section 7.2 courtesy)."""
        return self.index_lookups + self.tuple_reads + self.tuple_writes

    def add(self, other: "AccessCounts") -> None:
        self.index_lookups += other.index_lookups
        self.tuple_reads += other.tuple_reads
        self.tuple_writes += other.tuple_writes
        self.index_maintenance += other.index_maintenance

    def copy(self) -> "AccessCounts":
        return AccessCounts(
            self.index_lookups,
            self.tuple_reads,
            self.tuple_writes,
            self.index_maintenance,
        )

    def as_dict(self) -> dict[str, int]:
        """JSON-serializable form (used by traces and bench reports)."""
        return {
            "index_lookups": self.index_lookups,
            "tuple_reads": self.tuple_reads,
            "tuple_writes": self.tuple_writes,
            "index_maintenance": self.index_maintenance,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AccessCounts":
        return cls(
            int(data.get("index_lookups", 0)),
            int(data.get("tuple_reads", 0)),
            int(data.get("tuple_writes", 0)),
            int(data.get("index_maintenance", 0)),
        )

    def __sub__(self, other: "AccessCounts") -> "AccessCounts":
        return AccessCounts(
            self.index_lookups - other.index_lookups,
            self.tuple_reads - other.tuple_reads,
            self.tuple_writes - other.tuple_writes,
            self.index_maintenance - other.index_maintenance,
        )

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"lookups={self.index_lookups} reads={self.tuple_reads} "
            f"writes={self.tuple_writes} total={self.total}"
        )


class CounterSet:
    """A set of phase-labelled access counters.

    All storage operations report into the *current* phase (default
    ``"default"``).  Use :meth:`phase` to scope a block of work::

        counters = CounterSet()
        with counters.phase("view_update"):
            table.apply(...)

    Phases nest; accesses are attributed to the innermost phase only, and
    always to the grand total.
    """

    DEFAULT_PHASE = "default"

    def __init__(self) -> None:
        self.total = AccessCounts()
        self.phases: dict[str, AccessCounts] = {}
        self._stack: list[str] = [self.DEFAULT_PHASE]

    @property
    def current_phase(self) -> str:
        return self._stack[-1]

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute accesses within the block to phase *name*."""
        self._stack.append(name)
        try:
            yield
        finally:
            self._stack.pop()

    def _bucket(self) -> AccessCounts:
        name = self._stack[-1]
        bucket = self.phases.get(name)
        if bucket is None:
            bucket = AccessCounts()
            self.phases[name] = bucket
        return bucket

    def count_index_lookup(self, n: int = 1) -> None:
        self.total.index_lookups += n
        self._bucket().index_lookups += n

    def count_tuple_read(self, n: int = 1) -> None:
        self.total.tuple_reads += n
        self._bucket().tuple_reads += n

    def count_tuple_write(self, n: int = 1) -> None:
        self.total.tuple_writes += n
        self._bucket().tuple_writes += n

    def count_index_maintenance(self, n: int = 1) -> None:
        """Secondary-index entry mutations (tracked outside ``total``)."""
        if n:
            self.total.index_maintenance += n
            self._bucket().index_maintenance += n

    def reset(self) -> None:
        """Zero all counters but keep the phase stack."""
        self.total = AccessCounts()
        self.phases = {}

    def merge(self, other: "CounterSet") -> None:
        """Fold *other*'s counts into self, phase by phase (exact integer
        addition — the shard-merge reconciliation relies on it)."""
        for name, counts in other.phases.items():
            bucket = self.phases.get(name)
            if bucket is None:
                bucket = AccessCounts()
                self.phases[name] = bucket
            bucket.add(counts)
        self.total.add(other.total)

    def snapshot(self) -> dict[str, AccessCounts]:
        """Copy of per-phase counts (plus ``"__total__"``)."""
        out = {name: counts.copy() for name, counts in self.phases.items()}
        out["__total__"] = self.total.copy()
        return out

    def as_dict(self) -> dict[str, dict[str, int]]:
        """JSON-serializable snapshot: phase name -> count dict."""
        return {name: counts.as_dict() for name, counts in self.snapshot().items()}

    @classmethod
    def from_phase_counts(cls, phases: dict[str, AccessCounts]) -> "CounterSet":
        """Rebuild a counter set from per-phase counts (the wire-decode
        path for process shard workers).  The grand total is recomputed
        as the sum of the phases — exact, because every counted access
        lands in both its phase bucket and the total."""
        out = cls()
        for name, counts in phases.items():
            out.phases[name] = counts.copy()
            out.total.add(counts)
        return out


@dataclass
class CostBreakdown:
    """Named cost components, used for the Figure 12 stacked bars."""

    components: dict[str, AccessCounts] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(c.total for c in self.components.values())

    def component_total(self, name: str) -> int:
        counts = self.components.get(name)
        return counts.total if counts is not None else 0
