"""Database catalog: named tables, foreign keys, shared access counters."""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import SchemaError, UnknownTableError
from .counters import CounterSet
from .schema import ForeignKey, TableSchema
from .table import Table


class Database:
    """A catalog of :class:`Table` objects sharing one :class:`CounterSet`.

    Foreign keys are declarative only (not enforced on writes); the
    ∆-script generator uses them to prove the absence of multi-valued
    dependencies when deciding whether to materialize an intermediate
    cache (paper Section 4, footnote 6).
    """

    def __init__(self, counters: CounterSet | None = None, auto_index: bool = True):
        self.counters = counters if counters is not None else CounterSet()
        self.auto_index = auto_index
        self.tables: dict[str, Table] = {}
        self.foreign_keys: list[ForeignKey] = []

    # ------------------------------------------------------------------
    # catalog management
    # ------------------------------------------------------------------
    def create_table(
        self,
        name: str,
        columns: Sequence[str],
        key: Sequence[str],
        nullable: Sequence[str] | None = None,
        types: dict[str, str] | None = None,
    ) -> Table:
        """Create and register an empty table."""
        if name in self.tables:
            raise SchemaError(f"relation {name!r} already exists")
        schema = TableSchema(name, columns, key, nullable=nullable, types=types)
        table = Table(schema, counters=self.counters, auto_index=self.auto_index)
        self.tables[name] = table
        return table

    def add_table(self, table: Table) -> Table:
        """Register an existing table (rebinding it to the shared counters)."""
        if table.schema.name in self.tables:
            raise SchemaError(f"relation {table.schema.name!r} already exists")
        table.counters = self.counters
        self.tables[table.schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise UnknownTableError(f"no relation named {name!r}")
        del self.tables[name]

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise UnknownTableError(f"no relation named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    def add_foreign_key(
        self, child_table: str, child_columns: Sequence[str], parent_table: str
    ) -> None:
        """Declare ``child_table.child_columns -> parent_table`` (to its PK)."""
        self.table(child_table)
        self.table(parent_table)
        self.foreign_keys.append(ForeignKey(child_table, child_columns, parent_table))

    def foreign_keys_of(self, child_table: str) -> list[ForeignKey]:
        return [fk for fk in self.foreign_keys if fk.child_table == child_table]

    # ------------------------------------------------------------------
    # copying
    # ------------------------------------------------------------------
    def copy(self, counters: CounterSet | None = None) -> "Database":
        """Deep copy of all tables (used to derive the post-state database)."""
        clone = Database(
            counters=counters if counters is not None else CounterSet(),
            auto_index=self.auto_index,
        )
        for name, table in self.tables.items():
            clone.tables[name] = table.copy(counters=clone.counters)
        clone.foreign_keys = list(self.foreign_keys)
        return clone

    def table_names(self) -> list[str]:
        return list(self.tables)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        parts = ", ".join(f"{t.schema.name}({len(t)})" for t in self.tables.values())
        return f"Database({parts})"


def load_rows(db: Database, name: str, rows: Iterable[Sequence]) -> None:
    """Convenience bulk loader for tests and workloads."""
    db.table(name).load(rows)
