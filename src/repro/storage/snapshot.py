"""Database snapshots: JSON-serializable save/load of catalog + rows.

Useful for checkpointing a workload, shipping reproducible test
fixtures, and diffing database states.  Values must be JSON-compatible
scalars (str / int / float / bool / None) — which is all the engine's
expression layer produces.  Tuples are serialized as lists and restored
as tuples on load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import SchemaError
from .database import Database

FORMAT_VERSION = 1


def database_to_dict(db: Database) -> dict:
    """Plain-dict snapshot of schemas, rows, indexes and foreign keys.

    Secondary-index column sets and the ``auto_index`` setting are
    persisted so a restored database probes exactly like the original
    (an ``auto_index=False`` database would otherwise silently fall back
    to counted full scans).  Index *contents* are never serialized —
    restore rebuilds them from the rows, so stale entries cannot survive
    a round trip.
    """
    return {
        "format": FORMAT_VERSION,
        "auto_index": db.auto_index,
        "tables": [
            {
                "name": table.schema.name,
                "columns": list(table.schema.columns),
                "key": list(table.schema.key),
                "indexes": sorted(
                    list(columns) for columns in table._indexes
                ),
                "rows": [list(row) for row in table.rows_uncounted()],
            }
            for table in db.tables.values()
        ],
        "foreign_keys": [
            {
                "child_table": fk.child_table,
                "child_columns": list(fk.child_columns),
                "parent_table": fk.parent_table,
            }
            for fk in db.foreign_keys
        ],
    }


def database_from_dict(payload: dict) -> Database:
    """Rebuild a database from :func:`database_to_dict` output."""
    if payload.get("format") != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported snapshot format {payload.get('format')!r}; "
            f"expected {FORMAT_VERSION}"
        )
    db = Database(auto_index=bool(payload.get("auto_index", True)))
    for spec in payload["tables"]:
        table = db.create_table(spec["name"], spec["columns"], spec["key"])
        table.load(tuple(row) for row in spec["rows"])
        # Rebuild secondary indexes from the loaded rows (pre-1.1
        # snapshots carry no "indexes" field; auto_index re-creates them
        # lazily for those).  Counters start at zero: neither the bulk
        # load nor the index builds are maintenance cost.
        for columns in spec.get("indexes", []):
            table.create_index(columns)
    for fk in payload.get("foreign_keys", []):
        db.add_foreign_key(
            fk["child_table"], fk["child_columns"], fk["parent_table"]
        )
    return db


def save_database(db: Database, path: Union[str, Path]) -> None:
    """Write a JSON snapshot of *db* to *path*."""
    Path(path).write_text(json.dumps(database_to_dict(db)))


def load_database(path: Union[str, Path]) -> Database:
    """Read a JSON snapshot produced by :func:`save_database`."""
    return database_from_dict(json.loads(Path(path).read_text()))
