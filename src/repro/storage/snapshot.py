"""Database snapshots: JSON-serializable save/load of catalog + rows.

Useful for checkpointing a workload, shipping reproducible test
fixtures, and diffing database states.  Values must be JSON-compatible
scalars (str / int / float / bool / None) — which is all the engine's
expression layer produces.  Tuples are serialized as lists and restored
as tuples on load.

Both ordinary :class:`~repro.storage.database.Database` catalogs and
hash-partitioned :class:`~repro.storage.partition.PartitionedDatabase`
catalogs round-trip: a partitioned snapshot records the shard count and
restore re-routes every row through :func:`~repro.storage.partition.shard_of`,
rebuilds the shard-local secondary indexes and starts every per-shard
counter at zero (loading a snapshot is setup, not maintenance cost).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..errors import SchemaError
from .database import Database
from .partition import PartitionedDatabase, PartitionedTable

FORMAT_VERSION = 1

AnyDatabase = Union[Database, PartitionedDatabase]


def _table_indexes(table) -> list[list[str]]:
    """Secondary-index column sets of an ordinary or partitioned table.

    Every shard of a :class:`PartitionedTable` carries the same index
    definitions (``create_index`` broadcasts), so shard 0 is
    authoritative.
    """
    if isinstance(table, PartitionedTable):
        return sorted(list(columns) for columns in table.shards[0]._indexes)
    return sorted(list(columns) for columns in table._indexes)


def database_to_dict(db: AnyDatabase) -> dict:
    """Plain-dict snapshot of schemas, rows, indexes and foreign keys.

    Secondary-index column sets and the ``auto_index`` setting are
    persisted so a restored database probes exactly like the original
    (an ``auto_index=False`` database would otherwise silently fall back
    to counted full scans).  Index *contents* are never serialized —
    restore rebuilds them from the rows, so stale entries cannot survive
    a round trip.  Partitioned databases additionally record ``shards``;
    their rows are stored shard-merged (the stable ``shard_of`` hash
    re-derives the placement on load).
    """
    payload = {
        "format": FORMAT_VERSION,
        "auto_index": db.auto_index,
        "tables": [
            {
                "name": table.schema.name,
                "columns": list(table.schema.columns),
                "key": list(table.schema.key),
                "indexes": _table_indexes(table),
                "rows": [list(row) for row in table.rows_uncounted()],
            }
            for table in db.tables.values()
        ],
        "foreign_keys": [
            {
                "child_table": fk.child_table,
                "child_columns": list(fk.child_columns),
                "parent_table": fk.parent_table,
            }
            for fk in getattr(db, "foreign_keys", [])
        ],
    }
    if isinstance(db, PartitionedDatabase):
        payload["shards"] = db.n_shards
    return payload


def database_from_dict(payload: dict) -> AnyDatabase:
    """Rebuild a database from :func:`database_to_dict` output.

    A snapshot carrying ``shards`` restores to a
    :class:`PartitionedDatabase` with that shard count; rows route back
    to their shards by primary key, shard-local secondary indexes are
    rebuilt from the rows, and every per-shard counter starts at zero.
    """
    if payload.get("format") != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported snapshot format {payload.get('format')!r}; "
            f"expected {FORMAT_VERSION}"
        )
    n_shards = payload.get("shards")
    db: AnyDatabase
    if n_shards is not None:
        db = PartitionedDatabase(
            int(n_shards), auto_index=bool(payload.get("auto_index", True))
        )
    else:
        db = Database(auto_index=bool(payload.get("auto_index", True)))
    for spec in payload["tables"]:
        table = db.create_table(spec["name"], spec["columns"], spec["key"])
        table.load(tuple(row) for row in spec["rows"])
        # Rebuild secondary indexes from the loaded rows (pre-1.1
        # snapshots carry no "indexes" field; auto_index re-creates them
        # lazily for those).  Counters start at zero: neither the bulk
        # load nor the index builds are maintenance cost.
        for columns in spec.get("indexes", []):
            table.create_index(columns)
    for fk in payload.get("foreign_keys", []):
        if n_shards is not None:
            # PartitionedDatabase has no FK catalog; partition_database
            # drops them the same way.
            break
        db.add_foreign_key(
            fk["child_table"], fk["child_columns"], fk["parent_table"]
        )
    return db


def save_database(db: AnyDatabase, path: Union[str, Path]) -> None:
    """Write a JSON snapshot of *db* to *path*."""
    Path(path).write_text(json.dumps(database_to_dict(db)))


def load_database(path: Union[str, Path]) -> AnyDatabase:
    """Read a JSON snapshot produced by :func:`save_database`."""
    return database_from_dict(json.loads(Path(path).read_text()))
