"""Relation schemas: named columns plus a primary key.

Rows throughout the library are plain tuples aligned with the schema's
column order; :class:`TableSchema` provides the name-to-position mapping and
key extraction helpers used everywhere else.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import SchemaError, UnknownColumnError

#: Declared column types understood by the catalog and the static analyzer.
COLUMN_TYPES = ("int", "float", "str", "bool")


class TableSchema:
    """Schema of a stored relation: ordered columns and a primary key.

    Parameters
    ----------
    name:
        Relation name (unique within a :class:`~repro.storage.Database`).
    columns:
        Ordered column names; must be unique.
    key:
        Subset of *columns* forming the primary key.  Every base table in
        idIVM must have a key (the paper's core assumption).
    nullable:
        Columns that may hold NULL.  ``None`` (the default) keeps the
        historical behaviour: every non-key column is assumed nullable.
        Pass an explicit (possibly empty) sequence to declare NOT NULL
        columns; key columns are never nullable.  Declarative only — the
        storage layer does not enforce it; the static analyzer
        (:mod:`repro.analysis`) consumes it.
    types:
        Optional declared column types, a mapping ``column -> type name``
        from :data:`COLUMN_TYPES`.  Declarative only, like *nullable*.
    """

    __slots__ = (
        "name", "columns", "key", "nullable", "types",
        "_positions", "_key_positions",
    )

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        key: Sequence[str],
        nullable: Sequence[str] | None = None,
        types: "dict[str, str] | None" = None,
    ):
        columns = tuple(columns)
        key = tuple(key)
        if not name:
            raise SchemaError("relation name must be non-empty")
        if not columns:
            raise SchemaError(f"relation {name!r} must have at least one column")
        if len(set(columns)) != len(columns):
            raise SchemaError(f"relation {name!r} has duplicate column names: {columns}")
        if not key:
            raise SchemaError(f"relation {name!r} must have a primary key (idIVM requires keys)")
        missing = [k for k in key if k not in columns]
        if missing:
            raise SchemaError(f"key columns {missing} of {name!r} are not in the schema")
        if len(set(key)) != len(key):
            raise SchemaError(f"relation {name!r} has duplicate key columns: {key}")
        self.name = name
        self.columns = columns
        self.key = key
        if nullable is None:
            self.nullable = frozenset(c for c in columns if c not in key)
        else:
            nullable = tuple(nullable)
            unknown = [c for c in nullable if c not in columns]
            if unknown:
                raise SchemaError(
                    f"nullable columns {unknown} of {name!r} are not in the schema"
                )
            in_key = [c for c in nullable if c in key]
            if in_key:
                raise SchemaError(
                    f"key columns {in_key} of {name!r} cannot be nullable"
                )
            self.nullable = frozenset(nullable)
        types = dict(types or {})
        for column, type_name in types.items():
            if column not in columns:
                raise SchemaError(
                    f"typed column {column!r} of {name!r} is not in the schema"
                )
            if type_name not in COLUMN_TYPES:
                raise SchemaError(
                    f"unknown type {type_name!r} for {name}.{column}; "
                    f"have {COLUMN_TYPES}"
                )
        self.types = types
        self._positions = {c: i for i, c in enumerate(columns)}
        self._key_positions = tuple(self._positions[k] for k in key)

    @property
    def non_key_columns(self) -> tuple[str, ...]:
        key_set = set(self.key)
        return tuple(c for c in self.columns if c not in key_set)

    def position(self, column: str) -> int:
        """Index of *column* in a row tuple."""
        try:
            return self._positions[column]
        except KeyError:
            raise UnknownColumnError(
                f"column {column!r} not in relation {self.name!r} {self.columns}"
            ) from None

    def positions(self, columns: Iterable[str]) -> tuple[int, ...]:
        return tuple(self.position(c) for c in columns)

    def has_column(self, column: str) -> bool:
        return column in self._positions

    def key_of(self, row: tuple) -> tuple:
        """Extract the primary-key values from *row*."""
        return tuple(row[i] for i in self._key_positions)

    def project(self, row: tuple, columns: Sequence[str]) -> tuple:
        """Extract the values of *columns* from *row* (in the given order)."""
        return tuple(row[self.position(c)] for c in columns)

    def check_row(self, row: tuple) -> None:
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row arity {len(row)} does not match relation {self.name!r} "
                f"with {len(self.columns)} columns"
            )

    def is_nullable(self, column: str) -> bool:
        """Whether *column* may hold NULL (key columns never do)."""
        self.position(column)  # raise on unknown columns
        return column in self.nullable

    def column_type(self, column: str) -> "str | None":
        """Declared type of *column*, or None when undeclared."""
        self.position(column)
        return self.types.get(column)

    def rename(self, name: str) -> "TableSchema":
        return TableSchema(
            name, self.columns, self.key,
            nullable=tuple(self.nullable), types=self.types,
        )

    def __repr__(self) -> str:  # pragma: no cover - display helper
        cols = ", ".join(f"{c}*" if c in self.key else c for c in self.columns)
        return f"TableSchema({self.name}: {cols})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TableSchema)
            and self.name == other.name
            and self.columns == other.columns
            and self.key == other.key
        )

    def __hash__(self) -> int:
        return hash((self.name, self.columns, self.key))


class ForeignKey:
    """A foreign-key constraint, used by cache placement to rule out MVDs.

    ``child_table.child_columns`` references ``parent_table``'s primary key.
    """

    __slots__ = ("child_table", "child_columns", "parent_table")

    def __init__(self, child_table: str, child_columns: Sequence[str], parent_table: str):
        if not child_columns:
            raise SchemaError("foreign key must reference at least one column")
        self.child_table = child_table
        self.child_columns = tuple(child_columns)
        self.parent_table = parent_table

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"ForeignKey({self.child_table}.{self.child_columns} -> "
            f"{self.parent_table})"
        )
