"""Instrumented in-memory tables with a primary-key index and optional
secondary hash indexes.

Access-count policy (matching the paper's Section 6 / Appendix A model):

* fetching the ``m`` rows matching an indexed value costs ``1 + m``
  (one index lookup, ``m`` tuple reads);
* a full scan of ``n`` rows costs ``n`` tuple reads;
* writing a row (insert / in-place update / delete) costs one index lookup
  (to locate the slot) plus one tuple write;
* secondary-index maintenance does not enter the paper's cost metric — the
  paper explicitly grants the tuple-based baseline free index maintenance
  ("without counting the associated index maintenance cost", Section 7.2)
  and we extend the same courtesy to every approach.  Counted write paths
  nevertheless *track* every index-entry mutation in the separate
  ``index_maintenance`` counter (excluded from ``AccessCounts.total``), so
  the work is visible and reconcilable; ``*_uncounted`` paths touch no
  counter at all and must stay exactly count-neutral.

Concurrency: tables may be shared by the shard-parallel engine
(:mod:`repro.core.sharded`).  Structural mutations (row writes, index
builds) hold a per-table re-entrant lock; bucket lookups hand out copies.
Point reads stay lock-free — the shard router only parallelizes rounds
whose reads and writes are disjoint per shard, and full scans only happen
on tables no shard is writing (base tables, or broadcast rounds).
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ..errors import IntegrityError, SchemaError, ScriptError
from .counters import CounterSet
from .schema import TableSchema


class _SecondaryIndex:
    """Hash index from a column subset to the set of primary keys."""

    __slots__ = ("columns", "positions", "buckets")

    def __init__(self, schema: TableSchema, columns: tuple[str, ...]):
        self.columns = columns
        self.positions = schema.positions(columns)
        self.buckets: dict[tuple, set[tuple]] = {}

    def value_of(self, row: tuple) -> tuple:
        return tuple(row[i] for i in self.positions)

    def add(self, key: tuple, row: tuple) -> None:
        self.buckets.setdefault(self.value_of(row), set()).add(key)

    def remove(self, key: tuple, row: tuple) -> None:
        # Empty buckets are left in place: deleting the dict entry races
        # with a concurrent ``setdefault`` in :meth:`add` (the adder can
        # obtain the doomed set and lose its addition).
        bucket = self.buckets.get(self.value_of(row))
        if bucket is not None:
            bucket.discard(key)

    def get(self, value: tuple) -> set[tuple]:
        # A copy, so callers never iterate a set a writer is mutating.
        bucket = self.buckets.get(value)
        return set(bucket) if bucket else set()


class Table:
    """A stored relation: primary-key dict plus secondary hash indexes.

    All reads and writes report into *counters* (shared with the owning
    :class:`~repro.storage.Database`).  Methods with an ``_uncounted``
    suffix bypass instrumentation and exist for test oracles and workload
    setup only.
    """

    def __init__(
        self,
        schema: TableSchema,
        counters: CounterSet | None = None,
        auto_index: bool = True,
    ):
        self.schema = schema
        self.counters = counters if counters is not None else CounterSet()
        self.auto_index = auto_index
        self._rows: dict[tuple, tuple] = {}
        self._indexes: dict[tuple[str, ...], _SecondaryIndex] = {}
        # Guards structural mutation (row writes, index builds) when the
        # table is shared across shard worker threads.  Re-entrant: a
        # locked read path may trigger an auto-index build.
        self._lock = threading.RLock()
        # Optional write-set sink (see begin_capture): counted writes and
        # index builds append replayable ops here while active.
        self._capture: list[tuple] | None = None
        # Optional coverage audit (see audit_uncaptured): called with the
        # table name on every counted write that no capture records.
        self._uncaptured_audit: Callable[[str], None] | None = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    @property
    def name(self) -> str:
        return self.schema.name

    def has_index(self, columns: Sequence[str]) -> bool:
        columns = tuple(columns)
        return columns == self.schema.key or columns in self._indexes

    def index_columns(self) -> list[tuple[str, ...]]:
        """Column tuples of the secondary indexes (sorted; replication
        snapshots use this so replicas rebuild the same index set)."""
        with self._lock:
            return sorted(self._indexes)

    # ------------------------------------------------------------------
    # index management (uncounted)
    # ------------------------------------------------------------------
    def create_index(self, columns: Sequence[str]) -> None:
        """Create a secondary hash index on *columns* (no-op if present)."""
        columns = tuple(columns)
        if columns == self.schema.key or columns in self._indexes:
            return
        for c in columns:
            self.schema.position(c)  # validates
        with self._lock:
            if columns in self._indexes:  # lost the build race
                return
            index = _SecondaryIndex(self.schema, columns)
            for key, row in list(self._rows.items()):
                index.add(key, row)
            self._indexes[columns] = index
            if self._capture is not None:
                self._capture.append(("x", columns))

    def _index_for(self, columns: tuple[str, ...]) -> _SecondaryIndex | None:
        index = self._indexes.get(columns)
        if index is None and self.auto_index:
            self.create_index(columns)
            index = self._indexes.get(columns)
        return index

    # ------------------------------------------------------------------
    # counted reads
    # ------------------------------------------------------------------
    def get(self, key: tuple) -> tuple | None:
        """Primary-key lookup.  Costs 1 index lookup (+1 read if found)."""
        self.counters.count_index_lookup()
        row = self._rows.get(tuple(key))
        if row is not None:
            self.counters.count_tuple_read()
        return row

    def lookup(self, columns: Sequence[str], value: tuple) -> list[tuple]:
        """Fetch rows whose *columns* equal *value*.

        Uses the PK index when *columns* is exactly the key, a secondary
        index otherwise (auto-created when ``auto_index`` is on, falling
        back to a counted full scan when not).
        """
        columns = tuple(columns)
        value = tuple(value)
        if columns == self.schema.key:
            row = self._rows.get(value)
            self.counters.count_index_lookup()
            if row is None:
                return []
            self.counters.count_tuple_read()
            return [row]
        index = self._index_for(columns)
        if index is None:
            positions = self.schema.positions(columns)
            out = []
            for row in self._rows.values():
                self.counters.count_tuple_read()
                if tuple(row[i] for i in positions) == value:
                    out.append(row)
            return out
        self.counters.count_index_lookup()
        keys = index.get(value)
        rows = [self._rows[k] for k in keys]
        self.counters.count_tuple_read(len(rows))
        return rows

    def lookup_one(self, columns: Sequence[str], value: tuple) -> tuple | None:
        """One arbitrary row whose *columns* equal *value* (LIMIT 1).

        Costs one index lookup plus at most one tuple read — used when
        any exemplar suffices (e.g. the Section 9 view-reuse probes,
        where the requested attributes are functionally determined by
        the looked-up columns).
        """
        columns = tuple(columns)
        value = tuple(value)
        if columns == self.schema.key:
            self.counters.count_index_lookup()
            row = self._rows.get(value)
            if row is not None:
                self.counters.count_tuple_read()
            return row
        index = self._index_for(columns)
        if index is not None:
            self.counters.count_index_lookup()
            keys = index.get(value)
            if not keys:
                return None
            self.counters.count_tuple_read()
            return self._rows[next(iter(keys))]
        positions = self.schema.positions(columns)
        for row in self._rows.values():
            self.counters.count_tuple_read()
            if tuple(row[i] for i in positions) == value:
                return row
        return None

    def scan(self) -> Iterator[tuple]:
        """Iterate all rows; each yielded row costs one tuple read."""
        for row in self._rows.values():
            self.counters.count_tuple_read()
            yield row

    # ------------------------------------------------------------------
    # counted writes
    # ------------------------------------------------------------------
    def insert(self, row: Sequence) -> None:
        """Insert *row*; raises :class:`IntegrityError` on duplicate key."""
        row = tuple(row)
        self.schema.check_row(row)
        key = self.schema.key_of(row)
        self.counters.count_index_lookup()
        with self._lock:
            if key in self._rows:
                raise IntegrityError(
                    f"duplicate key {key} in relation {self.schema.name!r}"
                )
            self._rows[key] = row
            for index in self._indexes.values():
                index.add(key, row)
            self.counters.count_index_maintenance(len(self._indexes))
            if self._capture is not None:
                self._capture.append(("s", key, row))
            elif self._uncaptured_audit is not None:
                self._uncaptured_audit(self.schema.name)
        self.counters.count_tuple_write()

    def delete_key(self, key: tuple) -> tuple | None:
        """Delete the row with primary key *key*; returns it (or None)."""
        key = tuple(key)
        self.counters.count_index_lookup()
        with self._lock:
            row = self._rows.pop(key, None)
            if row is None:
                return None
            for index in self._indexes.values():
                index.remove(key, row)
            self.counters.count_index_maintenance(len(self._indexes))
            if self._capture is not None:
                self._capture.append(("d", key))
            elif self._uncaptured_audit is not None:
                self._uncaptured_audit(self.schema.name)
        self.counters.count_tuple_write()
        return row

    def update_key(self, key: tuple, changes: Mapping[str, object]) -> tuple | None:
        """Set *changes* (column -> new value) on the row with key *key*.

        Returns the pre-state row, or None when the key is absent.  Key
        columns are immutable (the paper's Section 5, footnote 7).
        """
        key = tuple(key)
        self.counters.count_index_lookup()
        with self._lock:
            old = self._rows.get(key)
            if old is None:
                return None
            for column in changes:
                if column in self.schema.key:
                    raise SchemaError(
                        f"key column {column!r} of {self.schema.name!r} is immutable"
                    )
            new = list(old)
            for column, value in changes.items():
                new[self.schema.position(column)] = value
            new_row = tuple(new)
            for index in self._indexes.values():
                index.remove(key, old)
                index.add(key, new_row)
            self.counters.count_index_maintenance(2 * len(self._indexes))
            self._rows[key] = new_row
            if self._capture is not None:
                self._capture.append(("s", key, new_row))
            elif self._uncaptured_audit is not None:
                self._uncaptured_audit(self.schema.name)
        self.counters.count_tuple_write()
        return old

    def replace_row(self, key: tuple, new_row: tuple) -> tuple | None:
        """Replace the whole row at *key* (key columns must be unchanged)."""
        key = tuple(key)
        self.schema.check_row(new_row)
        if self.schema.key_of(new_row) != key:
            raise SchemaError("replace_row must preserve the primary key")
        self.counters.count_index_lookup()
        with self._lock:
            old = self._rows.get(key)
            if old is None:
                return None
            for index in self._indexes.values():
                index.remove(key, old)
                index.add(key, new_row)
            self.counters.count_index_maintenance(2 * len(self._indexes))
            self._rows[key] = new_row
            if self._capture is not None:
                self._capture.append(("s", key, new_row))
            elif self._uncaptured_audit is not None:
                self._uncaptured_audit(self.schema.name)
        self.counters.count_tuple_write()
        return old

    # ------------------------------------------------------------------
    # APPLY-oriented primitives (paper Appendix A cost accounting:
    # identifying the to-be-modified tuples costs one index lookup per
    # diff tuple; each read-modify-write of a located row costs one
    # tuple access).
    # ------------------------------------------------------------------
    def locate(self, columns: Sequence[str], value: tuple) -> list[tuple]:
        """Primary keys of rows whose *columns* equal *value*.

        Costs exactly one index lookup (no tuple reads) — the
        "identification" step of applying a diff.
        """
        columns = tuple(columns)
        value = tuple(value)
        if columns == self.schema.key:
            self.counters.count_index_lookup()
            return [value] if value in self._rows else []
        index = self._index_for(columns)
        if index is not None:
            self.counters.count_index_lookup()
            return list(index.get(value))
        # No index: a counted full scan locates the rows.
        positions = self.schema.positions(columns)
        keys = []
        for key, row in self._rows.items():
            self.counters.count_tuple_read()
            if tuple(row[i] for i in positions) == value:
                keys.append(key)
        return keys

    def write_at(self, key: tuple, changes: Mapping[str, object]) -> tuple:
        """Read-modify-write the already-located row at *key*.

        Costs one tuple write (the paper counts the combined
        read-modify-write as a single access).  Returns the pre-state row.
        """
        key = tuple(key)
        with self._lock:
            old = self._rows[key]
            new = list(old)
            for column, value in changes.items():
                position = self.schema.position(column)
                if column in self.schema.key:
                    raise SchemaError(
                        f"key column {column!r} of {self.schema.name!r} is immutable"
                    )
                new[position] = value
            new_row = tuple(new)
            for index in self._indexes.values():
                index.remove(key, old)
                index.add(key, new_row)
            self.counters.count_index_maintenance(2 * len(self._indexes))
            self._rows[key] = new_row
            if self._capture is not None:
                self._capture.append(("s", key, new_row))
            elif self._uncaptured_audit is not None:
                self._uncaptured_audit(self.schema.name)
        self.counters.count_tuple_write()
        return old

    def delete_at(self, key: tuple) -> tuple:
        """Delete the already-located row at *key* (one tuple write)."""
        key = tuple(key)
        with self._lock:
            row = self._rows.pop(key)
            for index in self._indexes.values():
                index.remove(key, row)
            self.counters.count_index_maintenance(len(self._indexes))
            if self._capture is not None:
                self._capture.append(("d", key))
            elif self._uncaptured_audit is not None:
                self._uncaptured_audit(self.schema.name)
        self.counters.count_tuple_write()
        return row

    def insert_checked(self, row: tuple) -> bool:
        """Insert with the APPLY ∆+ NOT-IN guard (Section 2).

        Returns True when inserted, False when the identical row already
        exists (several insert i-diffs may carry the same tuple).  A row
        with the same key but *different* values signals an ineffective
        diff set and raises :class:`IntegrityError`.
        """
        row = tuple(row)
        self.schema.check_row(row)
        key = self.schema.key_of(row)
        self.counters.count_index_lookup()
        with self._lock:
            existing = self._rows.get(key)
            if existing is not None:
                if existing == row:
                    return False
                raise IntegrityError(
                    f"insert of {row} conflicts with existing {existing} "
                    f"in {self.schema.name!r}"
                )
            self._rows[key] = row
            for index in self._indexes.values():
                index.add(key, row)
            self.counters.count_index_maintenance(len(self._indexes))
            if self._capture is not None:
                self._capture.append(("s", key, row))
            elif self._uncaptured_audit is not None:
                self._uncaptured_audit(self.schema.name)
        self.counters.count_tuple_write()
        return True

    # ------------------------------------------------------------------
    # write-set capture and replay (process shard workers)
    # ------------------------------------------------------------------
    def begin_capture(self, sink: list[tuple] | None = None) -> list[tuple]:
        """Start recording counted writes as replayable ops into *sink*.

        Because primary keys are immutable, every counted mutation of
        this table reduces to an upsert ``("s", key, row)`` or a delete
        ``("d", key)``; index builds record ``("x", columns)`` so a
        replica's index set (and hence its ``index_maintenance`` counts)
        tracks the original's.  Returns the sink list.

        Captures do not nest: arming a second capture while one is
        active raises :class:`~repro.errors.ScriptError` — the inner
        caller would silently steal the outer caller's write-set.
        """
        with self._lock:
            if self._capture is not None:
                raise ScriptError(
                    f"nested begin_capture on table {self.schema.name!r}: "
                    f"a capture is already active"
                )
            sink = sink if sink is not None else []
            self._capture = sink
            return sink

    def end_capture(self) -> list[tuple]:
        """Stop recording and return the captured op list."""
        with self._lock:
            sink, self._capture = self._capture, None
            return sink if sink is not None else []

    def audit_uncaptured(self, hook: Callable[[str], None] | None) -> None:
        """Install (or clear, with None) the capture-coverage audit.

        While set and no capture is armed, every counted write calls
        ``hook(table_name)``.  The dynamic race detector arms this on
        tables *outside* the view's tagged cache set during a checked
        round: any hit is a writer whose effects would escape the
        process backend's write-set merge (the dynamic face of RACE604).
        """
        with self._lock:
            self._uncaptured_audit = hook

    def replay_writes(self, ops: Sequence[tuple]) -> None:
        """Apply a captured write-set, uncounted and idempotently.

        The counted work already happened wherever the ops were captured
        (a shard worker process); replay only moves this replica to the
        same post-state.  Upserts overwrite, deletes of absent keys are
        no-ops, index builds are idempotent — so replaying a merged
        round write-set on the worker that produced part of it is safe.
        """
        with self._lock:
            for op in ops:
                if op[0] == "s":
                    key, row = op[1], op[2]
                    old = self._rows.get(key)
                    if old == row:
                        continue
                    for index in self._indexes.values():
                        if old is not None:
                            index.remove(key, old)
                        index.add(key, row)
                    self._rows[key] = row
                elif op[0] == "d":
                    self.delete_uncounted(op[1])
                elif op[0] == "x":
                    self.create_index(op[1])
                else:  # pragma: no cover - encoder validates opcodes
                    raise SchemaError(f"unknown write op {op[0]!r}")

    # ------------------------------------------------------------------
    # uncounted helpers (setup, oracles, copying)
    # ------------------------------------------------------------------
    def insert_uncounted(self, row: Sequence) -> None:
        row = tuple(row)
        self.schema.check_row(row)
        key = self.schema.key_of(row)
        if key in self._rows:
            raise IntegrityError(
                f"duplicate key {key} in relation {self.schema.name!r}"
            )
        self._rows[key] = row
        for index in self._indexes.values():
            index.add(key, row)

    def load(self, rows: Iterable[Sequence]) -> None:
        """Bulk-load rows without counting (workload setup)."""
        for row in rows:
            self.insert_uncounted(row)

    def delete_uncounted(self, key: tuple) -> tuple | None:
        """Uncounted delete (modification time is outside the IVM cost)."""
        key = tuple(key)
        row = self._rows.pop(key, None)
        if row is None:
            return None
        for index in self._indexes.values():
            index.remove(key, row)
        return row

    def update_uncounted(self, key: tuple, changes: Mapping[str, object]) -> tuple | None:
        """Uncounted in-place update; returns the pre-state row."""
        key = tuple(key)
        old = self._rows.get(key)
        if old is None:
            return None
        new = list(old)
        for column, value in changes.items():
            if column in self.schema.key:
                raise SchemaError(
                    f"key column {column!r} of {self.schema.name!r} is immutable"
                )
            new[self.schema.position(column)] = value
        new_row = tuple(new)
        for index in self._indexes.values():
            index.remove(key, old)
            index.add(key, new_row)
        self._rows[key] = new_row
        return old

    def rows_uncounted(self) -> list[tuple]:
        return list(self._rows.values())

    def get_uncounted(self, key: tuple) -> tuple | None:
        return self._rows.get(tuple(key))

    def as_set(self) -> frozenset[tuple]:
        """Frozen set of rows, for order-insensitive comparisons in tests."""
        return frozenset(self._rows.values())

    def copy(self, counters: CounterSet | None = None) -> "Table":
        """Deep copy (rows are immutable tuples, so sharing them is safe)."""
        clone = Table(
            self.schema,
            counters=counters if counters is not None else self.counters,
            auto_index=self.auto_index,
        )
        clone._rows = dict(self._rows)
        for columns in self._indexes:
            clone.create_index(columns)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Table({self.schema.name}, {len(self._rows)} rows)"


def sort_rows(rows: Iterable[tuple]) -> list[tuple]:
    """Deterministically order rows for display and golden tests."""

    def sort_key(row: tuple):
        return tuple((value is None, str(type(value)), repr(value)) for value in row)

    return sorted(rows, key=sort_key)


RowFilter = Callable[[tuple], bool]
