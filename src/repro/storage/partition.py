"""Hash-partitioned storage: tables split into shard-local fragments.

The shard-parallel maintenance engine (:mod:`repro.core.sharded`) needs a
*stable* row-to-shard assignment so that a maintenance round touching
disjoint key ranges can run one worker per shard and still reconcile its
access counts exactly with a single-shard run.  This module provides

* :func:`shard_of` — the one hash function everything shares.  It is
  deliberately **not** Python's builtin ``hash`` (randomized per process),
  so shard assignments survive process restarts and snapshots;
* :class:`PartitionedTable` — a table hash-partitioned by primary key into
  N ordinary :class:`~repro.storage.table.Table` fragments, each with its
  own :class:`~repro.storage.counters.CounterSet` and shard-local
  secondary hash indexes;
* :class:`PartitionedDatabase` / :func:`partition_database` — a catalog of
  partitioned tables derived from an ordinary :class:`Database`.

The partitioned layer is the storage-level half of the sharding story:
it demonstrates that per-shard access counts sum to the unpartitioned
counts (key-routed operations) and what broadcast operations cost (a
lookup on a non-key column pays one probe *per shard*).  The maintenance
engine itself keeps a single shared database and partitions the *i-diff
instances* instead — see ``docs/SHARDING.md`` for how the two layers
relate.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import SchemaError, UnknownTableError
from .counters import AccessCounts, CounterSet
from .schema import TableSchema
from .table import Table


def shard_key_bytes(values: Sequence) -> bytes:
    """The canonical byte string :func:`shard_of` hashes for a key tuple.

    Exposed separately so cross-process determinism tests (and the wire
    layer's documentation) can pin the exact encoding: ``repr`` of the
    value tuple, UTF-8 encoded.  ``repr`` of the primitive types allowed
    on the wire (bool/int/float/str/None) is stable across interpreter
    runs and independent of ``PYTHONHASHSEED``.
    """
    return repr(tuple(values)).encode("utf-8")


def shard_of(values: Sequence, n_shards: int) -> int:
    """Stable shard assignment of a key-value tuple.

    Uses CRC-32 of :func:`shard_key_bytes`: deterministic across
    processes (unlike ``hash``, which is salted) and insensitive to how
    the values were produced, as long as they compare/``repr`` equal.
    The same assignment is therefore computed by the coordinator when it
    splits i-diff instances and by any worker process re-deriving a
    row's home shard.
    """
    if n_shards <= 1:
        return 0
    return zlib.crc32(shard_key_bytes(values)) % n_shards


class PartitionedTable:
    """A relation hash-partitioned by primary key into N shard tables.

    Each shard is an ordinary :class:`Table` with its own counters, so
    per-shard access costs are first-class.  Key-addressed operations
    route to exactly one shard; operations that cannot be routed (a
    lookup on non-key columns, a full scan) broadcast to every shard and
    pay the per-shard cost — the same cost asymmetry the maintenance
    router reasons about at the i-diff level.
    """

    def __init__(
        self,
        schema: TableSchema,
        n_shards: int,
        auto_index: bool = True,
    ):
        if n_shards < 1:
            raise SchemaError(f"need at least one shard, got {n_shards}")
        self.schema = schema
        self.n_shards = n_shards
        self.auto_index = auto_index
        self.shards: list[Table] = [
            Table(schema, counters=CounterSet(), auto_index=auto_index)
            for _ in range(n_shards)
        ]

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_for_key(self, key: Sequence) -> int:
        return shard_of(tuple(key), self.n_shards)

    def shard_for_row(self, row: Sequence) -> int:
        return self.shard_for_key(self.schema.key_of(tuple(row)))

    def shard(self, i: int) -> Table:
        return self.shards[i]

    # ------------------------------------------------------------------
    # counted operations (routed where possible, broadcast otherwise)
    # ------------------------------------------------------------------
    def get(self, key: tuple) -> tuple | None:
        return self.shards[self.shard_for_key(key)].get(key)

    def insert(self, row: Sequence) -> None:
        row = tuple(row)
        self.shards[self.shard_for_row(row)].insert(row)

    def delete_key(self, key: tuple) -> tuple | None:
        return self.shards[self.shard_for_key(key)].delete_key(tuple(key))

    def update_key(self, key: tuple, changes: Mapping[str, object]) -> tuple | None:
        return self.shards[self.shard_for_key(key)].update_key(tuple(key), changes)

    def lookup(self, columns: Sequence[str], value: tuple) -> list[tuple]:
        """Routed when *columns* is the key; broadcast to all shards
        otherwise (each shard pays its own probe)."""
        columns = tuple(columns)
        if columns == self.schema.key:
            return self.shards[self.shard_for_key(value)].lookup(columns, value)
        out: list[tuple] = []
        for shard in self.shards:
            out.extend(shard.lookup(columns, value))
        return out

    def scan(self) -> Iterator[tuple]:
        for shard in self.shards:
            yield from shard.scan()

    def create_index(self, columns: Sequence[str]) -> None:
        """Build the shard-local secondary index on every shard."""
        for shard in self.shards:
            shard.create_index(columns)

    # ------------------------------------------------------------------
    # uncounted helpers
    # ------------------------------------------------------------------
    def load(self, rows: Iterable[Sequence]) -> None:
        for row in rows:
            row = tuple(row)
            self.shards[self.shard_for_row(row)].insert_uncounted(row)

    def rows_uncounted(self) -> list[tuple]:
        out: list[tuple] = []
        for shard in self.shards:
            out.extend(shard.rows_uncounted())
        return out

    def as_set(self) -> frozenset[tuple]:
        return frozenset(self.rows_uncounted())

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    # ------------------------------------------------------------------
    # per-shard accounting
    # ------------------------------------------------------------------
    def shard_counts(self) -> list[AccessCounts]:
        """Copy of each shard's grand-total access counts, in shard order."""
        return [shard.counters.total.copy() for shard in self.shards]

    def combined_counts(self) -> AccessCounts:
        """Sum of all shard counters — comparable to an unpartitioned
        table's totals for key-routed workloads."""
        combined = AccessCounts()
        for shard in self.shards:
            combined.add(shard.counters.total)
        return combined

    def critical_path(self) -> int:
        """The busiest shard's total — the parallel wall-clock proxy."""
        return max((shard.counters.total.total for shard in self.shards), default=0)

    def reset_counters(self) -> None:
        for shard in self.shards:
            shard.counters.reset()

    def __repr__(self) -> str:  # pragma: no cover - display helper
        sizes = "/".join(str(len(shard)) for shard in self.shards)
        return f"PartitionedTable({self.schema.name!r}, shards={sizes})"


class PartitionedDatabase:
    """A catalog of :class:`PartitionedTable`\\ s sharing a shard count."""

    def __init__(self, n_shards: int, auto_index: bool = True):
        if n_shards < 1:
            raise SchemaError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        self.auto_index = auto_index
        self.tables: dict[str, PartitionedTable] = {}

    def create_table(
        self, name: str, columns: Sequence[str], key: Sequence[str]
    ) -> PartitionedTable:
        if name in self.tables:
            raise SchemaError(f"relation {name!r} already exists")
        table = PartitionedTable(
            TableSchema(name, columns, key), self.n_shards, auto_index=self.auto_index
        )
        self.tables[name] = table
        return table

    def table(self, name: str) -> PartitionedTable:
        try:
            return self.tables[name]
        except KeyError:
            raise UnknownTableError(f"no relation named {name!r}") from None

    def table_names(self) -> list[str]:
        return list(self.tables)

    def combined_counts(self) -> AccessCounts:
        combined = AccessCounts()
        for table in self.tables.values():
            combined.add(table.combined_counts())
        return combined

    def critical_path(self) -> int:
        """Max over shards of the shard's cost summed across tables."""
        per_shard = [0] * self.n_shards
        for table in self.tables.values():
            for i, shard in enumerate(table.shards):
                per_shard[i] += shard.counters.total.total
        return max(per_shard, default=0)

    def reset_counters(self) -> None:
        for table in self.tables.values():
            table.reset_counters()

    def __repr__(self) -> str:  # pragma: no cover - display helper
        parts = ", ".join(f"{t.schema.name}({len(t)})" for t in self.tables.values())
        return f"PartitionedDatabase(n={self.n_shards}; {parts})"


def partition_database(db, n_shards: int) -> PartitionedDatabase:
    """Hash-partition every table of an ordinary :class:`Database`.

    Rows route by primary key; secondary indexes present on the source
    tables are re-created shard-locally.  Loading is uncounted (it is
    setup, not maintenance cost).
    """
    out = PartitionedDatabase(n_shards, auto_index=db.auto_index)
    for name, table in db.tables.items():
        part = out.create_table(name, table.schema.columns, table.schema.key)
        part.load(table.rows_uncounted())
        for columns in table._indexes:
            part.create_index(columns)
    return out
