"""Storage substrate: instrumented in-memory relational engine.

This package stands in for the PostgreSQL instance the paper ran on.  It
provides keyed tables with hash indexes and, crucially, *access counting* —
the quantity the paper's Section 6 cost model is defined over.
"""

from .counters import AccessCounts, CostBreakdown, CounterSet
from .database import Database, load_rows
from .partition import (
    PartitionedDatabase,
    PartitionedTable,
    partition_database,
    shard_key_bytes,
    shard_of,
)
from .schema import ForeignKey, TableSchema
from .snapshot import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from .table import Table, sort_rows

__all__ = [
    "AccessCounts",
    "CostBreakdown",
    "CounterSet",
    "Database",
    "ForeignKey",
    "PartitionedDatabase",
    "PartitionedTable",
    "Table",
    "TableSchema",
    "database_from_dict",
    "database_to_dict",
    "load_database",
    "save_database",
    "load_rows",
    "partition_database",
    "shard_key_bytes",
    "shard_of",
    "sort_rows",
]
