"""Analytical cost model (paper Section 6, Appendix A) and its empirical
parameter extraction."""

from .measure import MeasuredParameters, measure_a, observed_speedup
from .symbolic import (
    CostExpr,
    CostVector,
    ScriptCostModel,
    StepCost,
    card_symbol,
    diff_sizes_env,
    merge_predictions,
)
from .model import (
    AggCosts,
    SpjCosts,
    agg_general_speedup_bound,
    agg_insert_speedup,
    agg_update_speedup,
    estimate_a_for_chain,
    estimate_p_for_chain,
    spj_general_speedup_bound,
    spj_update_speedup,
    tuple_based_break_even_a,
)

__all__ = [
    "AggCosts",
    "CostExpr",
    "CostVector",
    "MeasuredParameters",
    "ScriptCostModel",
    "SpjCosts",
    "StepCost",
    "card_symbol",
    "diff_sizes_env",
    "merge_predictions",
    "agg_general_speedup_bound",
    "agg_insert_speedup",
    "agg_update_speedup",
    "estimate_a_for_chain",
    "estimate_p_for_chain",
    "measure_a",
    "observed_speedup",
    "spj_general_speedup_bound",
    "spj_update_speedup",
    "tuple_based_break_even_a",
]
