"""Empirical extraction of the cost-model parameters from a live run.

The analytical model of :mod:`repro.costmodel.model` speaks in terms of
*a* (tuple-based probe cost per base diff tuple) and *p* (compression
factor).  These helpers measure both from the instrumented engines so the
model's predictions can be validated against observed speedups
(``benchmarks/bench_speedup_model.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import MaintenanceReport


@dataclass
class MeasuredParameters:
    """Cost-model parameters observed during one maintenance round."""

    base_diff_size: int
    view_diff_size: int
    id_cost: int
    tuple_cost: int

    @property
    def p(self) -> float:
        """Compression factor |D_V| / |∆_V| with a single base i-diff
        (|∆_V| = base diff size for pass-through update branches)."""
        if self.base_diff_size == 0:
            return 0.0
        return self.view_diff_size / self.base_diff_size

    @property
    def observed_speedup(self) -> float:
        if self.id_cost == 0:
            return float("inf") if self.tuple_cost else 1.0
        return self.tuple_cost / self.id_cost


def measure_a(report: MaintenanceReport, base_diff_size: int) -> float:
    """Observed *a*: the tuple-based view-diff computation accesses per
    base diff tuple (Section 6's diff-driven loop cost)."""
    if base_diff_size == 0:
        return 0.0
    return report.cost_of("view_diff") / base_diff_size


def observed_speedup(
    tuple_report: MaintenanceReport, id_report: MaintenanceReport
) -> float:
    """tuple-based cost / ID-based cost (the paper's speedup ratio)."""
    id_cost = id_report.total_cost
    tuple_cost = tuple_report.total_cost
    if id_cost == 0:
        return float("inf") if tuple_cost else 1.0
    return tuple_cost / id_cost
