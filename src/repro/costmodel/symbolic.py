"""Symbolic cost expressions for ∆-script cost inference (paper §6/App. A).

The analysis pass in :mod:`repro.analysis.cost` walks a generated ∆-script
and produces, per maintenance phase, a *closed-form formula* over workload
parameters — base i-diff cardinalities ``card[...]``, index fanouts
``f[...]``, selectivities ``s[...]``, locate fanouts ``loc[...]`` and
grouping compressions ``g[...]`` — predicting index lookups, tuple reads
and tuple writes.  This module provides the expression algebra those
formulas are written in:

* :class:`CostExpr` — a multivariate polynomial over named symbols,
  supporting ``+``/``*``, numeric evaluation under an environment, and a
  stable human-readable rendering;
* :class:`CostVector` — a (lookups, reads, writes) triple of expressions,
  mirroring :class:`repro.storage.counters.AccessCounts`;
* :class:`ScriptCostModel` — the per-phase formulas plus the symbol
  metadata needed to *resolve* them: definitions of derived cardinality
  symbols (e.g. an intermediate diff's card in terms of base cards) and
  a-priori numeric estimates for the leaf symbols, measured once from the
  database the view was defined over.

``ScriptCostModel.predict(env)`` evaluates every phase formula, resolving
symbols in priority order *observed environment → definition → estimate*.
Passing the observed ``MaintenanceReport.diff_sizes`` as the environment
yields the reconciliation prediction; passing nothing yields the a-priori
estimate used by the minimality lint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

Monomial = tuple[str, ...]

_EPS = 1e-12


class CostExpr:
    """A polynomial over named symbols: ``{monomial: coefficient}``.

    A monomial is a sorted tuple of symbol names (repetition encodes the
    power); the empty tuple is the constant term.  Instances are
    immutable — all operators return new expressions.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Mapping[Monomial, float]] = None):
        cleaned: dict[Monomial, float] = {}
        if terms:
            for mono, coeff in terms.items():
                if abs(coeff) > _EPS:
                    cleaned[tuple(sorted(mono))] = (
                        cleaned.get(tuple(sorted(mono)), 0.0) + coeff
                    )
        self.terms = {m: c for m, c in cleaned.items() if abs(c) > _EPS}

    # -- constructors --------------------------------------------------
    @classmethod
    def const(cls, value: float) -> "CostExpr":
        return cls({(): float(value)})

    @classmethod
    def var(cls, name: str) -> "CostExpr":
        return cls({(name,): 1.0})

    @classmethod
    def zero(cls) -> "CostExpr":
        return cls()

    # -- algebra -------------------------------------------------------
    def __add__(self, other: "CostExpr | float | int") -> "CostExpr":
        other = _coerce(other)
        terms = dict(self.terms)
        for mono, coeff in other.terms.items():
            terms[mono] = terms.get(mono, 0.0) + coeff
        return CostExpr(terms)

    __radd__ = __add__

    def __mul__(self, other: "CostExpr | float | int") -> "CostExpr":
        other = _coerce(other)
        terms: dict[Monomial, float] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                mono = tuple(sorted(m1 + m2))
                terms[mono] = terms.get(mono, 0.0) + c1 * c2
        return CostExpr(terms)

    __rmul__ = __mul__

    def is_zero(self) -> bool:
        return not self.terms

    def symbols(self) -> set[str]:
        out: set[str] = set()
        for mono in self.terms:
            out.update(mono)
        return out

    def constant_term(self) -> float:
        return self.terms.get((), 0.0)

    # -- evaluation ----------------------------------------------------
    def evaluate(self, env: Mapping[str, float]) -> float:
        """Numeric value under *env*; raises ``KeyError`` on a free symbol."""
        total = 0.0
        for mono, coeff in self.terms.items():
            value = coeff
            for sym in mono:
                value *= env[sym]
            total += value
        return total

    # -- display -------------------------------------------------------
    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for mono, coeff in sorted(self.terms.items()):
            factors = "·".join(mono)
            if not mono:
                parts.append(_fmt(coeff))
            elif abs(coeff - 1.0) <= _EPS:
                parts.append(factors)
            else:
                parts.append(f"{_fmt(coeff)}·{factors}")
        return " + ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"CostExpr({self})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CostExpr) and other.terms == self.terms

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))


def _coerce(value: "CostExpr | float | int") -> CostExpr:
    if isinstance(value, CostExpr):
        return value
    return CostExpr.const(float(value))


def _fmt(value: float) -> str:
    if abs(value - round(value)) <= 1e-9:
        return str(int(round(value)))
    return f"{value:.3g}"


ZERO = CostExpr.zero()


@dataclass(frozen=True)
class CostVector:
    """Per-metric cost formulas, mirroring ``AccessCounts``."""

    index_lookups: CostExpr = field(default_factory=CostExpr.zero)
    tuple_reads: CostExpr = field(default_factory=CostExpr.zero)
    tuple_writes: CostExpr = field(default_factory=CostExpr.zero)

    METRICS = ("index_lookups", "tuple_reads", "tuple_writes")

    def __add__(self, other: "CostVector") -> "CostVector":
        return CostVector(
            self.index_lookups + other.index_lookups,
            self.tuple_reads + other.tuple_reads,
            self.tuple_writes + other.tuple_writes,
        )

    def scale(self, factor: "CostExpr | float | int") -> "CostVector":
        f = _coerce(factor)
        return CostVector(
            self.index_lookups * f, self.tuple_reads * f, self.tuple_writes * f
        )

    def total(self) -> CostExpr:
        return self.index_lookups + self.tuple_reads + self.tuple_writes

    def is_zero(self) -> bool:
        return (
            self.index_lookups.is_zero()
            and self.tuple_reads.is_zero()
            and self.tuple_writes.is_zero()
        )

    def evaluate(self, env: Mapping[str, float]) -> dict[str, float]:
        out = {m: getattr(self, m).evaluate(env) for m in self.METRICS}
        out["total"] = sum(out.values())
        return out

    def symbols(self) -> set[str]:
        return (
            self.index_lookups.symbols()
            | self.tuple_reads.symbols()
            | self.tuple_writes.symbols()
        )

    def render(self) -> str:
        return (
            f"lookups: {self.index_lookups} | reads: {self.tuple_reads} "
            f"| writes: {self.tuple_writes}"
        )


def lookups(expr: "CostExpr | float | int") -> CostVector:
    return CostVector(index_lookups=_coerce(expr))


def reads(expr: "CostExpr | float | int") -> CostVector:
    return CostVector(tuple_reads=_coerce(expr))


def writes(expr: "CostExpr | float | int") -> CostVector:
    return CostVector(tuple_writes=_coerce(expr))


@dataclass
class StepCost:
    """Cost attribution for one ∆-script step (or sub-action)."""

    label: str
    phase: str
    vector: CostVector
    note: str = ""


class UnresolvedSymbolError(KeyError):
    """A formula symbol had no observed value, definition, or estimate."""


class ScriptCostModel:
    """Per-phase symbolic cost formulas for one generated ∆-script.

    * ``phases`` — phase name → :class:`CostVector` formula;
    * ``steps`` — per-step attribution (sums to ``phases``);
    * ``cards`` — definitions of derived cardinality symbols in terms of
      other symbols (intermediate diff cards, aggregate group counts);
    * ``estimates`` — a-priori numeric values for leaf symbols (fanouts,
      selectivities, nominal base diff sizes), measured at define time;
    * ``reconcile_sums`` — symbols whose observed value is the *sum* of
      several observed diff cardinalities (aggregate steps emit up to
      three diffs whose total approximates the touched-group count).
    """

    def __init__(self, view_name: str):
        self.view_name = view_name
        self.phases: dict[str, CostVector] = {}
        self.steps: list[StepCost] = []
        self.cards: dict[str, CostExpr] = {}
        self.estimates: dict[str, float] = {}
        self.reconcile_sums: dict[str, tuple[str, ...]] = {}
        self.notes: list[str] = []
        self._predict_memo: dict[tuple, dict[str, dict[str, float]]] = {}

    # -- construction --------------------------------------------------
    def add(self, label: str, phase: str, vector: CostVector, note: str = "") -> None:
        if vector.is_zero():
            return
        self.steps.append(StepCost(label, phase, vector, note))
        current = self.phases.get(phase)
        self.phases[phase] = vector if current is None else current + vector

    def define_card(self, symbol: str, definition: CostExpr) -> None:
        self.cards[symbol] = definition

    def estimate(self, symbol: str, value: float) -> None:
        self.estimates[symbol] = float(value)

    # -- resolution ----------------------------------------------------
    def _resolve(
        self, symbol: str, env: Mapping[str, float], stack: tuple[str, ...]
    ) -> float:
        if symbol in env:
            return float(env[symbol])
        if symbol in stack:
            raise UnresolvedSymbolError(f"cyclic cardinality definition: {symbol}")
        if symbol in self.cards:
            return self._eval(self.cards[symbol], env, stack + (symbol,))
        if symbol in self.estimates:
            return self.estimates[symbol]
        raise UnresolvedSymbolError(symbol)

    def _eval(
        self, expr: CostExpr, env: Mapping[str, float], stack: tuple[str, ...] = ()
    ) -> float:
        total = 0.0
        for mono, coeff in expr.terms.items():
            value = coeff
            for sym in mono:
                value *= self._resolve(sym, env, stack)
            total += value
        return total

    def _augment_env(self, env: Optional[Mapping[str, float]]) -> dict[str, float]:
        full: dict[str, float] = dict(env) if env else {}
        for symbol, names in self.reconcile_sums.items():
            if symbol not in full and all(n in full for n in names):
                full[symbol] = float(sum(full[n] for n in names))
        return full

    # -- prediction ----------------------------------------------------
    def predict(
        self, env: Optional[Mapping[str, float]] = None
    ) -> dict[str, dict[str, float]]:
        """Per-phase predicted counts under *env* (falling back to
        definitions, then estimates, for unbound symbols)."""
        full = self._augment_env(env)
        out: dict[str, dict[str, float]] = {}
        for phase, vector in sorted(self.phases.items()):
            out[phase] = {
                metric: self._eval(getattr(vector, metric), full)
                for metric in CostVector.METRICS
            }
            out[phase]["total"] = sum(out[phase].values())
        return out

    def predict_from_diff_sizes(
        self, diff_sizes: Mapping[str, int]
    ) -> dict[str, dict[str, float]]:
        """Reconciliation prediction: bind every observed diff cardinality.

        Memoized on the size vector — steady workloads produce the same
        cardinalities round after round, and the polynomial evaluation is
        pure.  Fresh inner dicts are returned so callers may mutate them.
        """
        key = tuple(sorted(diff_sizes.items()))
        memo = self._predict_memo
        cached = memo.get(key)
        if cached is None:
            if len(memo) > 256:
                memo.clear()
            cached = self.predict(
                {f"card[{name}]": float(n) for name, n in diff_sizes.items()}
            )
            memo[key] = cached
        return {phase: dict(counts) for phase, counts in cached.items()}

    def total(self, env: Optional[Mapping[str, float]] = None) -> float:
        return sum(p["total"] for p in self.predict(env).values())

    def evaluate_vector(
        self, vector: CostVector, env: Optional[Mapping[str, float]] = None
    ) -> dict[str, float]:
        """Evaluate an arbitrary :class:`CostVector` under this model's
        cardinality definitions and estimates (the sharing pass prices
        step subsets — e.g. one cached sub-plan's maintenance — without
        re-deriving the model)."""
        full = self._augment_env(env)
        return {
            metric: self._eval(getattr(vector, metric), full)
            for metric in CostVector.METRICS
        }

    def symbols(self) -> set[str]:
        out: set[str] = set()
        for vector in self.phases.values():
            out |= vector.symbols()
        return out

    # -- display -------------------------------------------------------
    def render(self, include_steps: bool = False) -> str:
        lines = [f"symbolic cost model for view {self.view_name!r}:"]
        for phase, vector in sorted(self.phases.items()):
            lines.append(f"  {phase}:")
            lines.append(f"    lookups = {vector.index_lookups}")
            lines.append(f"    reads   = {vector.tuple_reads}")
            lines.append(f"    writes  = {vector.tuple_writes}")
        if self.cards:
            lines.append("  derived cardinalities:")
            for symbol, definition in sorted(self.cards.items()):
                lines.append(f"    {symbol} := {definition}")
        if self.estimates:
            lines.append("  symbol estimates:")
            for symbol, value in sorted(self.estimates.items()):
                lines.append(f"    {symbol} ≈ {_fmt(value)}")
        if include_steps:
            lines.append("  per-step attribution:")
            for step in self.steps:
                lines.append(f"    [{step.phase}] {step.label}: {step.vector.render()}")
        return "\n".join(lines)


def card_symbol(name: str) -> str:
    """The cardinality symbol for a named diff/expansion."""
    return f"card[{name}]"


def diff_sizes_env(diff_sizes: Mapping[str, int]) -> dict[str, float]:
    return {card_symbol(name): float(n) for name, n in diff_sizes.items()}


def merge_predictions(
    parts: Iterable[dict[str, dict[str, float]]]
) -> dict[str, dict[str, float]]:
    """Sum per-phase predictions (used when several models cover a round)."""
    out: dict[str, dict[str, float]] = {}
    for part in parts:
        for phase, metrics in part.items():
            bucket = out.setdefault(phase, {})
            for metric, value in metrics.items():
                bucket[metric] = bucket.get(metric, 0.0) + value
    return out
