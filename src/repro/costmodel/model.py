"""The paper's Section 6 / Appendix A analytical cost model.

Costs are measured in combined index lookups + tuple accesses.  Two view
shapes are analyzed:

SPJ views (Table 2)
    ID-based cost   = |Du|·(1 + p)          (view lookups + accesses)
    tuple-based     = |Du|·(a + p + p)      (diff computation + apply)
    speedup (Eq. 1) = (a + 2p) / (1 + p)

Aggregate views with an intermediate cache (Table 3)
    ID-based cost   = |Du|·(1 + p) + |Du|·2pg      (cache + view)
    tuple-based     = |Du|·(a + 2pg)
    speedup (Eq. 2) = (a + 2pg) / (1 + p + 2pg)

where

* ``p``  — i-diff compression factor |D_V| / |∆_V| (may exceed 1 when the
  view fans out per diff tuple, or fall below 1 under overestimation);
* ``a``  — average accesses the tuple-based diff computation pays per
  base diff tuple (the diff-driven loop plan's probes);
* ``g``  — grouping compression |DuVagg| / |DuVspj|;
* ``k``  — rows inserted into the cache per base diff tuple (insert case).
"""

from __future__ import annotations

from dataclasses import dataclass


def spj_update_speedup(a: float, p: float) -> float:
    """Equation 1: speedup of ID- over tuple-based IVM for SPJ views when
    the base diff updates only non-conditional attributes."""
    if p < 0 or a < 0:
        raise ValueError("parameters a and p must be non-negative")
    return (a + 2 * p) / (1 + p)


def spj_general_speedup_bound(a: float, p: float) -> float:
    """Section 6.1(b): lower bound for any other diff kind —
    min((a+2p)/(1+p), 1): insert-only workloads degenerate to parity."""
    return min(spj_update_speedup(a, p), 1.0)


def agg_update_speedup(a: float, p: float, g: float = 1.0) -> float:
    """Equation 2 (Appendix A.2.1): aggregate views, non-conditional
    updates, with an intermediate cache."""
    if min(a, p, g) < 0:
        raise ValueError("parameters must be non-negative")
    return (a + 2 * p * g) / (1 + p + 2 * p * g)


def agg_insert_speedup(a: float, p: float, g: float, k: float) -> float:
    """Appendix A.2.2: base diffs producing cache inserts — the ID-based
    approach additionally pays k cache inserts per diff tuple, so the
    speedup (a+2pg)/(a+k+2pg) dips below 1, but the loss is bounded."""
    if min(a, p, g, k) < 0:
        raise ValueError("parameters must be non-negative")
    return (a + 2 * p * g) / (a + k + 2 * p * g)


def agg_general_speedup_bound(a: float, p: float, g: float, k: float) -> float:
    """Section 6.2(b): any other diff kind — min of the two regimes."""
    return min(agg_update_speedup(a, p, g), agg_insert_speedup(a, p, g, k))


def tuple_based_break_even_a(p: float) -> float:
    """The value of *a* below which tuple-based IVM wins on SPJ views:
    a < 1 - p (Section 6.1) — only reachable in the contrived corner case
    of shared join values plus severe overestimation (p << 1)."""
    return 1 - p


@dataclass
class SpjCosts:
    """Table 2, parameterized by the base diff size."""

    diff_size: int
    a: float
    p: float

    @property
    def id_based(self) -> float:
        # |Du| view index lookups + |Du|·p view tuple accesses.
        return self.diff_size * (1 + self.p)

    @property
    def tuple_based(self) -> float:
        # |Du|·a diff computation + |Du|·p lookups + |Du|·p accesses.
        return self.diff_size * (self.a + 2 * self.p)

    @property
    def speedup(self) -> float:
        return self.tuple_based / self.id_based


@dataclass
class AggCosts:
    """Table 3, parameterized by the base diff size."""

    diff_size: int
    a: float
    p: float
    g: float = 1.0

    @property
    def id_based(self) -> float:
        # cache: |Du| lookups + |Du|p accesses; view: |Du|pg lookups +
        # |Du|pg accesses; diff computations are free (RETURNING).
        return self.diff_size * (1 + self.p + 2 * self.p * self.g)

    @property
    def tuple_based(self) -> float:
        # diff computation |Du|a + view lookups/accesses |Du|pg each.
        return self.diff_size * (self.a + 2 * self.p * self.g)

    @property
    def speedup(self) -> float:
        return self.tuple_based / self.id_based


def estimate_a_for_chain(fanouts: list[float]) -> float:
    """Estimate the per-diff-tuple probe cost *a* of a join chain.

    A diff-driven loop plan pays, per diff tuple and per join in the
    chain, one index lookup plus the matched rows; matches multiply along
    the chain: a = Σ_i (1 + Π_{j<=i} f_j) with f_j the join fanouts.
    """
    a = 0.0
    acc = 1.0
    for fanout in fanouts:
        a += 1 + acc * fanout
        acc *= fanout
    return a


def estimate_p_for_chain(fanouts: list[float], selectivity: float = 1.0) -> float:
    """Estimate the compression factor *p*: view rows touched per diff
    tuple = the product of the chain fanouts scaled by the selectivity."""
    p = selectivity
    for fanout in fanouts:
        p *= fanout
    return p
