"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run the paper's running example end to end (Figures 1–7).
``explain --sql "SELECT ..." [--analyze]``
    Parse a view over the demo devices schema, print the annotated plan
    (Pass 1's Figure 5a shape) and the generated ∆-script (Figure 7).
    With ``--analyze``, also execute the plan and print per-operator
    actual row counts and access costs.
``sweep --param {d,s,f,j} --values 100,200,...``
    Run a Figure 12 style sweep of the devices workload for the chosen
    parameter and print the paper-style table.
``bsma [--updates N]``
    Run the Figure 10 social-analytics comparison.
``crosscheck --seed N --cases K``
    Run the differential fuzzer: every maintenance strategy against the
    recompute oracle over K generated cases (see ``docs/CROSSCHECK.md``).
    Divergent cases are shrunk and saved as replayable reproducers;
    exits non-zero if any case diverged.
``lint [--json]``
    Run the static analyzer (see ``docs/ANALYSIS.md``) over every
    shipped workload view — devices flat + aggregate and all eight BSMA
    queries — and print the diagnostics.  Exits non-zero if any view
    carries error-severity diagnostics.  With ``--cost``, also run
    several live seeded rounds per view, reconcile measured access
    counts against the symbolic prediction (COST503) and report
    sustained predicted-vs-observed drift (COST504, informational).
``top``
    Live terminal dashboard: per-view staleness, observed-lag and
    round-latency percentiles, drift EWMAs, shard balance.  Runs a
    local sharded BSMA demo loop, or polls a running
    ``python -m repro.obs.serve`` with ``--url`` (see
    ``docs/OBSERVABILITY.md``).

``demo``, ``sweep``, ``bsma`` and ``crosscheck`` accept ``--trace
FILE.jsonl`` to record every maintenance round as a span tree (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .algebra.explain import explain_analyze, explain_plan
from .obs import metrics, recording, write_trace
from .obs import spans as obs
from .baselines import TupleIvmEngine
from .bench import SweepPoint, SystemResult, format_figure10, format_sweep, run_system
from .core import IdIvmEngine, ShardedEngine
from .sql import sql_to_plan
from .storage import Database
from .workloads import (
    BSMA_QUERIES,
    BsmaConfig,
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_bsma_database,
    build_devices_database,
    log_user_updates,
)


def _id_engine_factory(shards: int, backend: str = "thread"):
    """The idIVM engine constructor honouring ``--shards N --backend B``."""
    if shards > 1:
        return lambda db: ShardedEngine(db, shards=shards, backend=backend)
    return IdIvmEngine


def demo_database() -> Database:
    """The Figure 1 instance, used by ``demo`` and ``explain``."""
    db = Database()
    db.create_table(
        "devices",
        ("did", "category"),
        ("did",),
        nullable=(),
        types={"did": "str", "category": "str"},
    )
    db.create_table(
        "parts",
        ("pid", "price"),
        ("pid",),
        nullable=(),
        types={"pid": "str", "price": "int"},
    )
    db.create_table(
        "devices_parts",
        ("did", "pid"),
        ("did", "pid"),
        nullable=(),
        types={"did": "str", "pid": "str"},
    )
    db.table("devices").load([("D1", "phone"), ("D2", "phone"), ("D3", "tablet")])
    db.table("parts").load([("P1", 10), ("P2", 20)])
    db.table("devices_parts").load([("D1", "P1"), ("D2", "P1"), ("D1", "P2")])
    return db


def cmd_demo(args: argparse.Namespace) -> int:
    """``repro demo``: the running example end to end."""
    db = demo_database()
    engine = _id_engine_factory(args.shards, getattr(args, "backend", "thread"))(db)
    try:
        view = engine.define_view(
            "V_prime",
            sql_to_plan(
                db,
                "SELECT did, SUM(price) AS cost FROM parts NATURAL JOIN "
                "devices_parts NATURAL JOIN devices WHERE category = 'phone' "
                "GROUP BY did",
            ),
        )
        print("Initial view:", sorted(view.table.as_set()))
        print()
        print(explain_plan(view.plan))
        print()
        print(view.describe_script())
        print()
        engine.log.update("parts", ("P1",), {"price": 11})
        report = engine.maintain()["V_prime"]
        print("After the Figure 2 update (P1: 10 -> 11):", sorted(view.table.as_set()))
        print(f"maintenance cost: {report.total_cost} accesses")
        if getattr(report, "parallel", False):
            print(
                f"route: parallel across {args.shards} shards "
                f"(anchor {report.anchor})"
            )
        elif getattr(report, "broadcast_reason", None):
            print(f"route: broadcast ({report.broadcast_reason})")
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain``: annotated plan + ∆-script for a SQL view."""
    db = demo_database()
    engine = IdIvmEngine(db, optimize=not args.no_minimize)
    view = engine.define_view("V", sql_to_plan(db, args.sql))
    print("-- annotated plan (Pass 1) " + "-" * 34)
    print(explain_plan(view.plan))
    print()
    print("-- generated ∆-script " + "-" * 39)
    print(view.describe_script())
    if args.analyze:
        print()
        print("-- EXPLAIN ANALYZE (actual rows / accesses) " + "-" * 17)
        print(explain_analyze(view.plan, db))
    if args.cost:
        print()
        print("-- symbolic cost model (repro.analysis.cost) " + "-" * 16)
        if view.cost_model is None:
            print("no cost model could be inferred for this script")
        else:
            print(view.cost_model.render())
            from .algebra.plan import Scan

            reads_parts = any(
                isinstance(n, Scan) and n.table == "parts"
                for n in view.plan.walk()
            )
            if args.analyze and reads_parts:
                engine.log.update("parts", ("P1",), {"price": 11})
                report = engine.maintain()["V"]
                print()
                print("-- predicted vs measured (demo price update) " + "-" * 15)
                _print_reconciliation(report)
    return 0


def _print_reconciliation(report) -> None:
    """Per-phase predicted-vs-measured table + COST503 deviations."""
    from .analysis.cost import SCRIPT_PHASES, reconcile_report

    predicted = report.predicted_counts or {}
    for phase in SCRIPT_PHASES:
        measured = report.phase_counts.get(phase)
        phase_pred = predicted.get(phase)
        if measured is None and phase_pred is None:
            continue
        md = measured.as_dict() if measured is not None else {}
        pd = phase_pred or {}
        print(
            f"  {phase}: measured "
            f"L={md.get('index_lookups', 0)} "
            f"R={md.get('tuple_reads', 0)} "
            f"W={md.get('tuple_writes', 0)} | predicted "
            f"L={pd.get('index_lookups', 0.0):.1f} "
            f"R={pd.get('tuple_reads', 0.0):.1f} "
            f"W={pd.get('tuple_writes', 0.0):.1f}"
        )
    deviations = reconcile_report(report)
    for dev in deviations:
        print(f"  COST503 {dev.render()}")
    if not deviations:
        print("  reconciliation: all phases within tolerance")


_SWEEP_PARAMS = {
    "d": ("diff_size", int),
    "s": ("selectivity", float),
    "f": ("fanout", int),
    "j": ("joins", int),
}


def cmd_sweep(args: argparse.Namespace) -> int:
    """``repro sweep``: a Figure 12 style parameter sweep."""
    field, caster = _SWEEP_PARAMS[args.param]
    values = [caster(v) for v in args.values.split(",")]
    points: list[SweepPoint] = []
    for value in values:
        kwargs = {
            "n_parts": args.parts,
            "n_devices": args.parts,
            "diff_size": min(200, max(1, args.parts // 5)),
        }
        if args.param == "j":
            kwargs["with_selection"] = False
        kwargs[field] = value  # the swept parameter wins (e.g. --param d)
        config = DevicesConfig(**kwargs)
        results: dict[str, SystemResult] = {}
        for label, factory in (
            ("idIVM", _id_engine_factory(args.shards, getattr(args, "backend", "thread"))),
            ("tuple", TupleIvmEngine),
        ):
            results[label] = run_system(
                label,
                db_factory=lambda: build_devices_database(config),
                make_engine=factory,
                build_view=lambda db: build_aggregate_view(db, config),
                log_modifications=lambda engine, db: apply_price_updates(
                    engine, db, config
                ),
            )
        points.append(SweepPoint(parameter=value, results=results))
    print(
        format_sweep(
            f"devices sweep over {args.param}",
            args.param,
            points,
            systems=("idIVM", "tuple"),
            phases=("cache_update", "view_diff", "view_update"),
        )
    )
    return 0


def cmd_bsma(args: argparse.Namespace) -> int:
    """``repro bsma``: the Figure 10 comparison."""
    config = BsmaConfig(n_users=args.users)
    rows = []
    for name, build in BSMA_QUERIES.items():
        costs = {}
        for label, factory in (
            ("id", _id_engine_factory(args.shards, getattr(args, "backend", "thread"))),
            ("tuple", TupleIvmEngine),
        ):
            db = build_bsma_database(config)
            engine = factory(db)
            try:
                engine.define_view(name, build(db, config))
                log_user_updates(engine, db, config, args.updates)
                costs[label] = engine.maintain()[name].total_cost
            finally:
                close = getattr(engine, "close", None)
                if close is not None:
                    close()
        rows.append(
            (name, costs["id"], costs["tuple"], costs["tuple"] / max(costs["id"], 1))
        )
    print(format_figure10(rows))
    return 0


def cmd_crosscheck(args: argparse.Namespace) -> int:
    """``repro crosscheck``: the differential fuzzer as a gate."""
    import time

    from .crosscheck import (
        ALL_STRATEGIES,
        STRATEGY_FACTORIES,
        case_label,
        generate_case,
        run_case,
        save_corpus_case,
        shrink_case,
    )

    if args.strategies:
        strategies = tuple(s.strip() for s in args.strategies.split(","))
        unknown = [s for s in strategies if s not in STRATEGY_FACTORIES]
        if unknown:
            print(
                f"repro crosscheck: unknown strategies {unknown}; "
                f"choose from {', '.join(STRATEGY_FACTORIES)}",
                file=sys.stderr,
            )
            return 2
    else:
        strategies = ALL_STRATEGIES

    start = time.perf_counter()
    divergent = 0
    for index in range(args.cases):
        case = generate_case(args.seed, index)
        with obs.span(
            f"case[{args.seed}:{index}]",
            kind="crosscheck_case",
            seed=args.seed,
            index=index,
        ):
            result = run_case(case, strategies)
        metrics.counter("crosscheck.cases").inc()
        if result.ok:
            continue
        divergent += 1
        metrics.counter("crosscheck.divergences").inc(len(result.divergences))
        print(f"case {index} ({case_label(case)}) DIVERGED:")
        for d in result.divergences:
            print(f"  {d}")
        if args.no_shrink:
            continue
        small = shrink_case(case, result)
        print(f"  shrunk to: {case_label(small)}")
        if not args.no_save:
            path = save_corpus_case(
                small,
                f"fuzz_s{args.seed}_c{index}",
                label=f"fuzzer seed {args.seed} case {index}",
                divergence=str(result.divergences[0]),
            )
            print(f"  reproducer saved: {path}")
    elapsed = time.perf_counter() - start
    rate = args.cases / elapsed if elapsed > 0 else float("inf")
    metrics.gauge("crosscheck.cases_per_sec").set(round(rate, 2))
    print(
        f"crosscheck: {args.cases} cases x {len(strategies)} strategies "
        f"(seed {args.seed}) in {elapsed:.1f}s ({rate:.1f} cases/s): "
        + (f"{divergent} DIVERGENT" if divergent else "all clean")
    )
    return 1 if divergent else 0


def lint_targets():
    """(label, plan, db) for every shipped workload view.

    Small config sizes: the analyzer is static, the data only feeds key
    and foreign-key metadata to the passes.
    """
    from .workloads.devices import build_flat_view

    dev_config = DevicesConfig(n_parts=20, n_devices=20, diff_size=4, fanout=2)
    dev_db = build_devices_database(dev_config)
    yield "devices/flat", build_flat_view(dev_db, dev_config), dev_db
    yield "devices/aggregate", build_aggregate_view(dev_db, dev_config), dev_db
    bsma_config = BsmaConfig(n_users=30, friends_per_user=3, n_tweets=60)
    bsma_db = build_bsma_database(bsma_config)
    for name in sorted(BSMA_QUERIES):
        yield f"bsma/{name}", BSMA_QUERIES[name](bsma_db, bsma_config), bsma_db


def cost_targets():
    """(label, make_db, make_plan, log_updates) per shipped view, for the
    ``lint --cost`` demo rounds — fresh state per target (maintenance
    mutates the database, unlike the purely static passes)."""
    from .workloads.devices import build_flat_view

    dev_config = DevicesConfig(n_parts=50, n_devices=50, diff_size=8, fanout=3)
    bsma_config = BsmaConfig(n_users=40, friends_per_user=4, n_tweets=80)

    def dev_updates(engine, db, round_seed=0):
        apply_price_updates(engine, db, dev_config)

    def bsma_updates(engine, db, round_seed=0):
        log_user_updates(
            engine, db, bsma_config, n_updates=12, round_seed=round_seed
        )

    yield (
        "devices/flat",
        lambda: build_devices_database(dev_config),
        lambda db: build_flat_view(db, dev_config),
        dev_updates,
    )
    yield (
        "devices/aggregate",
        lambda: build_devices_database(dev_config),
        lambda db: build_aggregate_view(db, dev_config),
        dev_updates,
    )
    for name in sorted(BSMA_QUERIES):
        yield (
            f"bsma/{name}",
            lambda: build_bsma_database(bsma_config),
            lambda db, n=name: BSMA_QUERIES[n](db, bsma_config),
            bsma_updates,
        )


def _severity_rank(severity: str) -> int:
    from .analysis import ERROR, WARNING

    return {ERROR: 0, WARNING: 1}.get(severity, 2)


def _filter_report(report, rules, min_severity):
    """A copy of *report* keeping only the selected diagnostics."""
    from .analysis import AnalysisReport

    kept = AnalysisReport()
    threshold = _severity_rank(min_severity) if min_severity else 2
    for diag in report.diagnostics:
        if rules and diag.rule_id not in rules:
            continue
        if _severity_rank(diag.severity) > threshold:
            continue
        kept.diagnostics.append(diag)
    return kept


#: Seeded rounds per view in ``lint --cost``: enough evidence for the
#: drift monitor (min_rounds=3) plus one round of smoothing.
_LINT_DRIFT_ROUNDS = 4


def _cmd_lint_cost(args: argparse.Namespace, rules, json_out: dict) -> int:
    """The ``lint --cost`` mode: live seeded demo rounds per shipped view
    with predicted-vs-measured reconciliation (COST503) and sustained
    drift reporting (COST504).

    COST503 deviations gate the exit code (they are warnings); COST504
    is informational — a drifting-but-within-tolerance model never
    breaks the lint gate.
    """
    from .analysis import AnalysisReport
    from .analysis.cost import cost_diagnostics, drift_diagnostics

    n_gating = 0
    for label, make_db, make_plan, log_updates in cost_targets():
        db = make_db()
        engine = IdIvmEngine(db)
        engine.define_view(label, make_plan(db))
        report = None
        for round_seed in range(_LINT_DRIFT_ROUNDS):
            log_updates(engine, db, round_seed=round_seed)
            report = engine.maintain()[label]
        analysis = AnalysisReport()
        deviations = cost_diagnostics(report, analysis)
        drift_alerts = drift_diagnostics(engine.drift, analysis)
        filtered = _filter_report(analysis, rules, args.min_severity)
        # only error/warning diagnostics gate: COST504 is info severity.
        n_gating += len(filtered.errors) + len(filtered.warnings)
        if args.json:
            json_out.setdefault("cost", []).append(
                {
                    "view": label,
                    "rounds": _LINT_DRIFT_ROUNDS,
                    "predicted": report.predicted_counts,
                    "measured": {
                        phase: counts.as_dict()
                        for phase, counts in report.phase_counts.items()
                        if phase != "__total__"
                    },
                    "drift": engine.drift.snapshot(),
                    "diagnostics": filtered.to_json(),
                }
            )
        else:
            status = (
                "reconciled" if not deviations else f"{len(deviations)} deviation(s)"
            )
            if drift_alerts:
                status += f", {len(drift_alerts)} drift alert(s)"
            print(f"== {label}: {status}")
            _print_reconciliation(report)
            for diag in filtered.diagnostics:
                if diag.rule_id == "COST504":
                    print(f"  COST504 {diag.message}")
    return 1 if n_gating else 0


#: generator knobs folded into lint cache keys — anything that changes
#: which ∆-script a plan compiles to must appear here.
_LINT_KNOBS = ("policy=equi", "optimize", "cost-select")


def _script_level_subset(report):
    """The diagnostics a script+interference re-run would reproduce."""
    from .analysis import AnalysisReport

    subset = AnalysisReport()
    subset.diagnostics.extend(
        d
        for d in report.diagnostics
        if d.rule_id.startswith(("SC3", "RACE6"))
    )
    return subset


def _lint_view_entry(label, plan, db, cache, with_compiled):
    """Analyze one lint target through the incremental analysis cache.

    Returns ``(report, compiled_report, facts)`` — *compiled_report* is
    None unless *with_compiled*.  On a cache hit the frozen diagnostics
    and sharing facts replay without generating or analyzing anything.
    """
    from .analysis import (
        analyze_generated,
        entry_from_report,
        plan_cache_key,
        report_from_entry,
        script_fingerprint,
        view_facts,
    )
    from .analysis.sharing import facts_from_json, facts_to_json
    from .core.compile import compile_script
    from .core.generator import ScriptGenerator
    from .core.schema_gen import generate_base_schemas

    knobs = _LINT_KNOBS + (label,) + (("compiled",) if with_compiled else ())
    key = ""
    if cache is not None:
        key = plan_cache_key(plan, db, knobs=knobs)
        entry = cache.get(key)
        if entry is not None:
            report = report_from_entry(entry)
            facts = facts_from_json(entry["facts"])
            compiled_report = (
                report_from_entry(
                    {"diagnostics": entry["compiled_diagnostics"]}
                )
                if with_compiled
                else None
            )
            return report, compiled_report, facts

    # cost_db: lint analyzes the scripts the engine would actually
    # ship, i.e. after cost-based candidate selection (COST501/502
    # findings on the default pipeline are fixed, not just reported).
    generator = ScriptGenerator(label, plan, cost_db=db)
    generated = generator.generate(generate_base_schemas(generator.plan, db))
    report = analyze_generated(generated, db=db)
    facts = view_facts(label, generated, db)
    compiled_report = None
    if with_compiled:
        # The compiled execution backend runs a different ∆-script
        # object (CompiledComputeDiffStep subclasses ComputeDiffStep),
        # so the step-level passes apply to it as well.  Compilation
        # shares every name, schema and IR tree, which an exact script
        # fingerprint match certifies — in that case the interpreted
        # run's script/interference diagnostics are reused instead of
        # re-running both passes over an identical script.
        compiled = compile_script(generated)
        interpreted_fp = script_fingerprint(
            generated.script, generated.plan, db, alpha=False
        )
        compiled_fp = script_fingerprint(
            compiled, generated.plan, db, alpha=False
        )
        if compiled_fp == interpreted_fp:
            compiled_report = _script_level_subset(report)
        else:
            compiled_report = analyze_generated(
                generated, db=db, script=compiled,
                names=("script", "interference"),
            )
    if cache is not None:
        extra = {"facts": facts_to_json(facts)}
        if compiled_report is not None:
            extra["compiled_diagnostics"] = entry_from_report(
                compiled_report
            )["diagnostics"]
        cache.put(key, entry_from_report(report, extra))
    return report, compiled_report, facts


def _cmd_lint_catalog(args: argparse.Namespace, rules, cache) -> int:
    """``repro lint --catalog``: the generated thousand-view catalog.

    Per-view passes run (or replay from the cache) for every catalog
    view; the catalog-scope sharing pass then runs over the collected
    facts.  JSON output is byte-identical between cold and warm runs —
    cache statistics are printed only in human mode.
    """
    import json

    from .analysis import analyze_catalog
    from .catalog import CatalogConfig, build_catalog_database, catalog_views

    config = CatalogConfig(n_views=args.catalog_views)
    db = build_catalog_database(config)
    reports = []
    facts_list = []
    for label, plan in catalog_views(db, config):
        report, _, facts = _lint_view_entry(
            label, plan, db, cache, with_compiled=False
        )
        facts_list.append(facts)
        reports.append((label, _filter_report(report, rules, args.min_severity)))
    if cache is not None:
        cache.flush()
    sharing = _filter_report(
        analyze_catalog(facts_list), rules, args.min_severity
    )

    n_errors = sum(len(r.errors) for _, r in reports) + len(sharing.errors)
    n_warnings = sum(len(r.warnings) for _, r in reports) + len(
        sharing.warnings
    )
    if args.json:
        findings = [
            {"view": label, "diagnostics": report.to_json()}
            for label, report in reports
            if report.errors or report.warnings or (rules and report.diagnostics)
        ]
        payload = {
            "catalog": {
                "views": len(reports),
                "errors": n_errors,
                "warnings": n_warnings,
                "findings": findings,
                "sharing": sharing.to_json(),
            }
        }
        print(json.dumps(payload, indent=2))
    else:
        for label, report in reports:
            interesting = report.errors + report.warnings
            if interesting:
                print(f"== {label}: {len(report.errors)} error(s), "
                      f"{len(report.warnings)} warning(s)")
                for diag in interesting:
                    print(diag.render())
        if sharing.diagnostics:
            print(sharing.render())
        print(
            f"lint --catalog: {len(reports)} views, {n_errors} error(s), "
            f"{n_warnings} warning(s), "
            f"{len(sharing.diagnostics)} sharing finding(s)"
        )
        if cache is not None:
            print(f"cache: {cache.hits} hit(s), {cache.misses} miss(es)")
    return 1 if n_errors else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint``: static analysis over every shipped view."""
    import json

    from .analysis import RULES, AnalysisCache, analyze_catalog

    rules: set[str] = set()
    if args.rule:
        rules = {r.strip() for r in args.rule.split(",") if r.strip()}
        unknown = rules - set(RULES)
        if unknown:
            print(f"lint: unknown rule id(s): {', '.join(sorted(unknown))}")
            return 2

    cache = None if args.no_cache else AnalysisCache(args.cache_dir)
    if args.catalog:
        return _cmd_lint_catalog(args, rules, cache)

    json_out: dict = {}
    cost_status = 0
    if args.cost:
        cost_status = _cmd_lint_cost(args, rules, json_out)

    reports = []
    facts_list = []
    for label, plan, db in lint_targets():
        report, compiled_report, facts = _lint_view_entry(
            label, plan, db, cache, with_compiled=True
        )
        facts_list.append(facts)
        reports.append((label, _filter_report(report, rules, args.min_severity)))
        reports.append(
            (
                f"{label} [compiled]",
                _filter_report(compiled_report, rules, args.min_severity),
            )
        )
    if cache is not None:
        cache.flush()
    # Catalog-scope pass 7 over the shipped views (cross-view sharing).
    sharing = _filter_report(
        analyze_catalog(facts_list), rules, args.min_severity
    )

    n_errors = sum(len(r.errors) for _, r in reports) + len(sharing.errors)
    n_warnings = sum(len(r.warnings) for _, r in reports) + len(
        sharing.warnings
    )
    if args.json:
        payload = {
            "views": [
                {"view": label, "diagnostics": report.to_json()}
                for label, report in reports
            ],
            "sharing": sharing.to_json(),
            "errors": n_errors,
            "warnings": n_warnings,
        }
        payload.update(json_out)
        print(json.dumps(payload, indent=2))
    else:
        for label, report in reports:
            interesting = report.errors + report.warnings
            status = "clean" if not interesting else (
                f"{len(report.errors)} error(s), "
                f"{len(report.warnings)} warning(s)"
            )
            print(f"== {label}: {status}")
            if args.verbose:
                print(report.render())
            else:
                for diag in interesting:
                    print(diag.render())
        if sharing.diagnostics and (args.verbose or sharing.errors or sharing.warnings):
            print(sharing.render())
        print(
            f"lint: {len(reports)} views, {n_errors} error(s), "
            f"{n_warnings} warning(s)"
        )
    return 1 if n_errors else cost_status


def cmd_top(args: argparse.Namespace) -> int:
    """``repro top``: the live telemetry dashboard."""
    from .obs import top as obs_top

    return obs_top.run(args)


def build_parser() -> argparse.ArgumentParser:
    """The repro command-line argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="idIVM: ID-based incremental view maintenance "
        "(SIGMOD 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="run the paper's running example")
    demo.set_defaults(handler=cmd_demo)

    explain = sub.add_parser("explain", help="show the plan and ∆-script of a view")
    explain.add_argument("--sql", required=True, help="view definition over the demo schema")
    explain.add_argument(
        "--no-minimize", action="store_true", help="skip Pass 4 (Figure 8 rewrites)"
    )
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="execute the plan and print per-operator actual rows and accesses",
    )
    explain.add_argument(
        "--cost",
        action="store_true",
        help="print the symbolic per-phase cost model; with --analyze, "
        "also reconcile it against a measured demo round",
    )
    explain.set_defaults(handler=cmd_explain)

    sweep = sub.add_parser("sweep", help="Figure 12 style parameter sweep")
    sweep.add_argument("--param", choices=sorted(_SWEEP_PARAMS), required=True)
    sweep.add_argument("--values", required=True, help="comma-separated values")
    sweep.add_argument("--parts", type=int, default=500, help="parts/devices table size")
    sweep.set_defaults(handler=cmd_sweep)

    bsma = sub.add_parser("bsma", help="Figure 10 social-analytics comparison")
    bsma.add_argument("--users", type=int, default=400)
    bsma.add_argument("--updates", type=int, default=100)
    bsma.set_defaults(handler=cmd_bsma)

    crosscheck = sub.add_parser(
        "crosscheck", help="differential fuzzer: all strategies vs recompute"
    )
    crosscheck.add_argument("--seed", type=int, default=0, help="stream seed")
    crosscheck.add_argument(
        "--cases", type=int, default=100, help="number of generated cases"
    )
    crosscheck.add_argument(
        "--strategies",
        default=None,
        help="comma-separated subset of strategies (default: all)",
    )
    crosscheck.add_argument(
        "--no-shrink",
        action="store_true",
        help="report divergences without minimizing them",
    )
    crosscheck.add_argument(
        "--no-save",
        action="store_true",
        help="do not write shrunken reproducers into tests/regressions/",
    )
    crosscheck.set_defaults(handler=cmd_crosscheck)

    lint = sub.add_parser(
        "lint", help="static analysis of every shipped workload view"
    )
    lint.add_argument(
        "--json", action="store_true", help="machine-readable diagnostics"
    )
    lint.add_argument(
        "--verbose",
        action="store_true",
        help="include info-severity diagnostics (routability reports)",
    )
    lint.add_argument(
        "--rule",
        help="comma-separated rule ids to report (e.g. SC307,COST503); "
        "others are suppressed",
    )
    lint.add_argument(
        "--min-severity",
        choices=("error", "warning", "info"),
        help="drop diagnostics below this severity",
    )
    lint.add_argument(
        "--cost",
        action="store_true",
        help="run a live demo round per view and reconcile measured "
        "access counts against the symbolic cost prediction (COST503)",
    )
    lint.add_argument(
        "--catalog",
        action="store_true",
        help="lint the generated thousand-view catalog (repro.catalog) "
        "instead of the shipped workload views, including the "
        "catalog-scope sharing pass (SHARE7xx)",
    )
    lint.add_argument(
        "--catalog-views",
        type=int,
        default=1000,
        metavar="N",
        help="catalog size for --catalog (default: 1000)",
    )
    lint.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the incremental analysis cache (full re-analysis)",
    )
    lint.add_argument(
        "--cache-dir",
        default=".repro-cache",
        metavar="DIR",
        help="incremental analysis cache location (default: .repro-cache)",
    )
    lint.set_defaults(handler=cmd_lint)

    top = sub.add_parser(
        "top",
        help="live dashboard: staleness, latency percentiles, drift, "
        "shard balance",
    )
    from .obs.top import add_arguments as _top_arguments

    _top_arguments(top)
    top.set_defaults(handler=cmd_top)

    for traced in (demo, sweep, bsma, crosscheck):
        traced.add_argument(
            "--trace",
            metavar="FILE.jsonl",
            default=None,
            help="record a JSONL span trace of every maintenance round",
        )
    for sharded in (demo, sweep, bsma):
        sharded.add_argument(
            "--shards",
            type=int,
            default=1,
            help="run the idIVM engine shard-parallel across N workers",
        )
        sharded.add_argument(
            "--backend",
            choices=("thread", "process"),
            default="thread",
            help="shard execution backend: worker threads over the shared "
            "database, or long-lived worker processes fed i-diffs over a "
            "compact wire format (default thread)",
        )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Usage errors (no command, unknown command, bad flags) print the
    argparse message and return a non-zero code instead of raising
    ``SystemExit``, so embedding callers get a consistent contract.
    """
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse error (code 2) or --help (code 0)
        code = exc.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 2
    if getattr(args, "command", None) is None:
        parser.print_usage(sys.stderr)
        print(f"{parser.prog}: error: a command is required", file=sys.stderr)
        return 2
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return args.handler(args)
    with recording() as rec:
        code = args.handler(args)
    try:
        n_spans = write_trace(rec, trace_path)
    except OSError as exc:
        print(f"{parser.prog}: error: cannot write trace: {exc}", file=sys.stderr)
        return 1
    print(f"[trace] wrote {n_spans} spans to {trace_path}", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
