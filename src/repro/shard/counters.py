"""Thread-routing counter fan-out for shard-parallel maintenance.

Every :class:`~repro.storage.Table` holds a reference to its database's
:class:`~repro.storage.CounterSet`, captured at construction.  To give
each shard worker its own counters *without* rebuilding the table graph
per round, the sharded engine swaps the database's counter set for a
:class:`ShardRoutingCounters`: a ``CounterSet`` whose state (total,
phase buckets, phase stack) is a set of properties delegating to a
thread-local *target* — the shard's private ``CounterSet`` inside a
worker, the original base ``CounterSet`` everywhere else.

Because the delegation happens at the attribute level, every inherited
``CounterSet`` method (``count_*``, ``phase``, ``snapshot``, ``reset``)
works unchanged against the active target; single-threaded code paths
(including the plain :class:`~repro.core.IdIvmEngine` run over the same
database) behave exactly as before.

The process backend reuses the same facade on both sides of the wire:
each worker process installs its own ``ShardRoutingCounters`` over its
replica database and activates a fresh per-round ``CounterSet`` while
executing a ∆-script, and the coordinator :meth:`fold`\\ s the returned
snapshot into its base counters — so database grand totals agree with
the thread backend increment for increment.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from ..storage import AccessCounts, CounterSet


class ShardRoutingCounters(CounterSet):
    """A :class:`CounterSet` facade routing to a per-thread target."""

    def __init__(self, base: CounterSet):
        # Deliberately does NOT call CounterSet.__init__: total / phases /
        # _stack are properties over the routed target instead of own state.
        self._base = base
        self._local = threading.local()

    # ------------------------------------------------------------------
    @property
    def base(self) -> CounterSet:
        """The fallback target (the database's original counter set)."""
        return self._base

    def _target(self) -> CounterSet:
        target = getattr(self._local, "target", None)
        return target if target is not None else self._base

    @contextmanager
    def activate(self, target: CounterSet) -> Iterator[None]:
        """Route this thread's counts into *target* for the block."""
        previous = getattr(self._local, "target", None)
        self._local.target = target
        try:
            yield
        finally:
            self._local.target = previous

    # ------------------------------------------------------------------
    # routed state: everything CounterSet methods touch
    # ------------------------------------------------------------------
    @property
    def total(self) -> AccessCounts:
        return self._target().total

    @total.setter
    def total(self, value: AccessCounts) -> None:  # reset() assigns
        self._target().total = value

    @property
    def phases(self) -> dict[str, AccessCounts]:
        return self._target().phases

    @phases.setter
    def phases(self, value: dict[str, AccessCounts]) -> None:  # reset()
        self._target().phases = value

    @property
    def _stack(self) -> list[str]:
        return self._target()._stack

    # ------------------------------------------------------------------
    @classmethod
    def install(cls, db) -> "ShardRoutingCounters":
        """Swap *db*'s counters (and every table's reference) for a router.

        Idempotent: a database that already routes keeps its router, so
        several engines can share one database.
        """
        if isinstance(db.counters, cls):
            router = db.counters
        else:
            router = cls(db.counters)
            db.counters = router
        for table in db.tables.values():
            table.counters = router
        return router

    @staticmethod
    def fold(base: CounterSet, shard: CounterSet) -> None:
        """Add a shard's counts into *base*, phase by phase.

        Called after a parallel round so database-wide totals stay
        truthful (the grand total equals what a single-shard run would
        have accumulated).
        """
        base.merge(shard)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        routed = getattr(self._local, "target", None) is not None
        return f"ShardRoutingCounters(routed={routed})"
