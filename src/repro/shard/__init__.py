"""Shard-parallel i-diff maintenance: routing, splitting, counter fan-out.

The shared-database sharding model: one live :class:`~repro.storage.Database`
serves every shard; what gets partitioned per maintenance round is the set
of *i-diff instance rows*.  :func:`plan_route` statically analyses a
∆-script against the round's instances and either proves that splitting
the rows by an *anchor key* keeps every counted operation shard-local
(``parallel``) or falls back to a single global execution (``broadcast``
— always correct, never slower).  :func:`split_instances` performs the
row split; :class:`ShardRoutingCounters` routes each worker thread's
access counts into its own :class:`~repro.storage.CounterSet` so per-shard
costs merge back deterministically.

See ``docs/SHARDING.md`` for the locality argument.
"""

from .counters import ShardRoutingCounters
from .router import (
    ProvenanceTracker,
    RoutePlan,
    force_route,
    plan_route,
    split_instances,
)
from .workers import ProcessShardPool, WorkerError, build_blueprint
from ..storage.partition import shard_of

__all__ = [
    "ProcessShardPool",
    "ProvenanceTracker",
    "RoutePlan",
    "ShardRoutingCounters",
    "WorkerError",
    "build_blueprint",
    "force_route",
    "plan_route",
    "shard_of",
    "split_instances",
]
