"""Long-lived shard worker processes for :class:`ShardedEngine`.

The thread backend in :mod:`repro.core.sharded` proves the paper's
cost-scaling claim but cannot show *wall-clock* scaling under the GIL:
its workers interpret Python concurrently on one core.  This module
supplies the process backend: each shard owns a long-lived worker
process (spawned once per engine, reused across rounds) holding a full
**replica** of the database and every view's cache tables.

Round protocol (all per-round payloads use :mod:`repro.core.wire` —
columnar, interned, primitive-only; the one-time bootstrap blueprint
travels as a pickle over the pipe, which is fine for a single message):

1. ``("boot", blueprint)`` — build the replica: base tables, foreign
   keys, each view's :class:`GeneratedPlan` plus cache/op-cache tables,
   with :class:`~repro.shard.counters.ShardRoutingCounters` installed so
   counted accesses route per activation exactly like the thread
   backend.
2. ``("round", log_batch, sync)`` — receive the round's modification
   log.  When *sync* is true the entries are applied (uncounted) to the
   replica's base tables first — a worker that was just booted already
   has them baked into its blueprint, so its first round passes
   ``sync=False``.  The worker then rebuilds its pre-state database,
   mirroring the coordinator's ``_reconstruct_pre``.
3. ``("exec", view, instances)`` — run the view's full ∆-script over
   this shard's i-diff rows in a private ``IrContext``, counting into a
   fresh :class:`CounterSet` under router activation, with write-set
   capture armed on the view's tables.  Replies with the exact counter
   snapshot, the captured write-set, per-instance diff sizes and the
   wall-clock duration (a ``perf_counter`` *delta* — never a raw
   monotonic reading, which would not be comparable across processes).
4. ``("apply", view, writeset)`` — replay a (merged) write-set onto the
   replica's view tables, uncounted and idempotently; this is how every
   worker learns the other shards' writes and how broadcast rounds
   executed on the coordinator reach the replicas.
5. ``("close",)`` — exit the loop.

Exactness: the router only parallelizes rounds whose counted reads and
writes are anchor-local, so during ``exec`` each replica's visible state
restricted to this shard's rows is identical to the shared database of
the thread backend — every counted access (including auto-index builds,
whose creations are captured and replayed so index sets never drift)
costs the same, and the per-shard counter sets merge exactly to the
single-shard counts.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Any, Iterator, Mapping, Optional, Sequence

from ..core import wire
from ..storage import CounterSet, Database, Table
from .counters import ShardRoutingCounters

#: Join grace before terminating a worker at close().
_CLOSE_TIMEOUT = 5.0


# ----------------------------------------------------------------------
# table tags: a stable name for every writable table of a view, shared
# by coordinator and workers (write-sets are keyed by tag)
# ----------------------------------------------------------------------
def tagged_tables(
    caches: Mapping[int, Table], operator_caches: Mapping[int, Table]
) -> Iterator[tuple[str, Table]]:
    """(tag, table) for every table a view's ∆-script may write: the
    caches (including the view table at the plan root) and the hidden
    aggregate book-keeping tables."""
    for node_id in sorted(caches):
        yield f"c{node_id}", caches[node_id]
    for node_id in sorted(operator_caches):
        yield f"o{node_id}", operator_caches[node_id]


# ----------------------------------------------------------------------
# bootstrap blueprint (coordinator side)
# ----------------------------------------------------------------------
def _table_payload(table: Table) -> tuple:
    """(schema, rows, index column tuples) — enough to rebuild exactly."""
    return (
        table.schema,
        table.rows_uncounted(),
        table.index_columns(),
    )


def _restore_table(payload: tuple, counters, auto_index: bool) -> Table:
    schema, rows, indexes = payload
    table = Table(schema, counters=counters, auto_index=auto_index)
    table.load(rows)
    for columns in indexes:
        table.create_index(columns)
    return table


def build_blueprint(
    db: Database, views: Mapping[str, Any], exec_backend: str = "interp"
) -> dict:
    """Snapshot the engine's state for worker bootstrap.

    Taken lazily at first parallel round, so it reflects the current
    post-state base tables and the views' current (stale-for-this-round)
    cache contents — exactly what the coordinator itself sees.

    Compiled closures are not picklable, so only ``exec_backend`` ships;
    each worker recompiles its views' scripts locally at boot.
    """
    return {
        "exec_backend": exec_backend,
        "auto_index": db.auto_index,
        "tables": [_table_payload(t) for _, t in sorted(db.tables.items())],
        "foreign_keys": [
            (fk.child_table, tuple(fk.child_columns), fk.parent_table)
            for fk in db.foreign_keys
        ],
        "views": [
            {
                "name": name,
                "generated": view.generated,
                "caches": [
                    (node_id, _table_payload(table))
                    for node_id, table in sorted(view.caches.items())
                ],
                "opcaches": [
                    (node_id, _table_payload(table))
                    for node_id, table in sorted(view.operator_caches.items())
                ],
            }
            for name, view in sorted(views.items())
        ],
    }


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _WorkerView:
    """A view replica: the generated plan plus its writable tables."""

    __slots__ = ("generated", "caches", "operator_caches", "script")

    def __init__(self, generated, caches, operator_caches, exec_backend="interp"):
        self.generated = generated
        self.caches = caches
        self.operator_caches = operator_caches
        #: the ∆-script this worker executes each round — compiled once
        #: at boot under exec_backend="compiled" (closures cannot cross
        #: the pipe), the stored interpretable script otherwise.
        if exec_backend == "compiled":
            from ..core.compile import compile_script

            self.script = compile_script(generated)
        else:
            self.script = generated.script

    def table_by_tag(self, tag: str) -> Table:
        node_id = int(tag[1:])
        if tag.startswith("c"):
            return self.caches[node_id]
        return self.operator_caches[node_id]


class _WorkerState:
    """Everything one worker process holds between messages."""

    def __init__(self, blueprint: dict):
        db = Database(auto_index=blueprint["auto_index"])
        for payload in blueprint["tables"]:
            table = _restore_table(payload, db.counters, db.auto_index)
            db.tables[table.schema.name] = table
        for child_table, child_columns, parent_table in blueprint["foreign_keys"]:
            db.add_foreign_key(child_table, child_columns, parent_table)
        self.router = ShardRoutingCounters.install(db)
        self.db = db
        exec_backend = blueprint.get("exec_backend", "interp")
        self.views: dict[str, _WorkerView] = {}
        for entry in blueprint["views"]:
            caches = {
                node_id: _restore_table(payload, db.counters, db.auto_index)
                for node_id, payload in entry["caches"]
            }
            opcaches = {
                node_id: _restore_table(payload, db.counters, db.auto_index)
                for node_id, payload in entry["opcaches"]
            }
            self.views[entry["name"]] = _WorkerView(
                entry["generated"], caches, opcaches, exec_backend=exec_backend
            )
        self.db_pre: Optional[Database] = None
        self.modified_tables: set[str] = set()

    # ------------------------------------------------------------------
    def begin_round(self, log_doc: Mapping, sync: bool) -> None:
        from ..core.diffs import DELETE, INSERT
        from ..core.engine import _reconstruct_pre

        entries = wire.decode_log_batch(log_doc)
        if sync:
            for entry in entries:
                table = self.db.table(entry.table)
                if entry.kind == INSERT:
                    table.insert_uncounted(entry.row)
                elif entry.kind == DELETE:
                    table.delete_uncounted(entry.key)
                else:  # update: forward-apply the changed attributes
                    table.update_uncounted(entry.key, entry.changes)
        self.db_pre = _reconstruct_pre(self.db, entries)
        self.modified_tables = {entry.table for entry in entries}

    def execute(self, view_name: str, instances_doc: Mapping) -> dict:
        from ..core.ir_exec import IrContext
        from ..core.script import execute_script

        view = self.views[view_name]
        # Columnar adoption: the shipped per-attribute lists become
        # ColumnarDiff batches directly — no dict/tuple re-materialization
        # on the hot path (row views build lazily where a step needs them).
        instances = wire.decode_instances(instances_doc, columnar=True)
        ctx = IrContext(self.db_pre, self.db, diffs=instances, caches=view.caches)
        ctx.operator_caches = view.operator_caches
        ctx.unchanged_tables = set(self.db.table_names()) - self.modified_tables
        counters = CounterSet()
        tables = list(tagged_tables(view.caches, view.operator_caches))
        sinks = {tag: table.begin_capture() for tag, table in tables}
        started = time.perf_counter()
        try:
            with self.router.activate(counters):
                execute_script(view.script, ctx, counters)
        finally:
            for _, table in tables:
                table.end_capture()
        seconds = time.perf_counter() - started
        return {
            "counters": wire.encode_counters(counters),
            "writes": wire.encode_writeset(
                {tag: ops for tag, ops in sinks.items() if ops}
            ),
            "diff_sizes": {k: len(v) for k, v in ctx.diffs.items()},
            "seconds": seconds,
        }

    def apply_writes(self, view_name: str, writeset_doc: Mapping) -> None:
        view = self.views[view_name]
        for tag, ops in wire.decode_writeset(writeset_doc).items():
            view.table_by_tag(tag).replay_writes(ops)


def worker_main(conn) -> None:
    """Entry point of a shard worker process (module-level: the spawn
    start method imports this module fresh in the child)."""
    state: Optional[_WorkerState] = None
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            try:
                kind = msg[0]
                if kind == "boot":
                    state = _WorkerState(msg[1])
                    conn.send(("ok", None))
                elif kind in ("round", "exec", "apply") and state is None:
                    conn.send(("err", f"{kind!r} before boot"))
                elif kind == "round":
                    assert state is not None
                    state.begin_round(msg[1], msg[2])
                    conn.send(("ok", None))
                elif kind == "exec":
                    assert state is not None
                    conn.send(("ok", state.execute(msg[1], msg[2])))
                elif kind == "apply":
                    assert state is not None
                    state.apply_writes(msg[1], msg[2])
                    conn.send(("ok", None))
                elif kind == "close":
                    conn.send(("ok", None))
                    break
                else:
                    conn.send(("err", f"unknown message kind {kind!r}"))
            except BaseException:
                conn.send(("err", traceback.format_exc()))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------
class WorkerError(RuntimeError):
    """A shard worker process failed; carries its traceback text."""


class ProcessShardPool:
    """Handles to the long-lived shard worker processes.

    Uses the ``spawn`` start method: forking a process that also runs a
    ``DemoLoop`` daemon thread or HTTP handler threads could inherit a
    lock in a held state.  Workers are daemonic, so an unclosed pool can
    never keep the interpreter alive; :meth:`close` shuts them down
    deterministically.
    """

    def __init__(self, n_shards: int):
        ctx = multiprocessing.get_context("spawn")
        self.n_shards = n_shards
        self._workers: list[tuple] = []
        for i in range(n_shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(child_conn,),
                daemon=True,
                name=f"repro-shard-{i}",
            )
            proc.start()
            child_conn.close()
            self._workers.append((proc, parent_conn))
        self._closed = False

    # ------------------------------------------------------------------
    def _recv(self, i: int):
        proc, conn = self._workers[i]
        try:
            status, payload = conn.recv()
        except (EOFError, OSError) as exc:
            raise WorkerError(
                f"shard worker {i} (pid {proc.pid}) died mid-request"
            ) from exc
        if status != "ok":
            raise WorkerError(f"shard worker {i} failed:\n{payload}")
        return payload

    def _broadcast(self, msg: tuple) -> list:
        for _, conn in self._workers:
            conn.send(msg)
        return [self._recv(i) for i in range(self.n_shards)]

    # ------------------------------------------------------------------
    def boot(self, blueprint: dict) -> None:
        self._broadcast(("boot", blueprint))

    def begin_round(self, log_doc: Mapping, sync: bool) -> None:
        """Ship the round's log to every worker (sync=False right after
        boot: the blueprint already contains those modifications)."""
        self._broadcast(("round", log_doc, sync))

    def exec_view(self, view_name: str, instance_docs: Sequence[Mapping]) -> list[dict]:
        """Run one view's ∆-script on all shards concurrently.

        All requests are sent before any reply is awaited — the workers
        genuinely run in parallel; replies come back in shard order.
        """
        for i, (_, conn) in enumerate(self._workers):
            conn.send(("exec", view_name, instance_docs[i]))
        return [self._recv(i) for i in range(self.n_shards)]

    def apply_writes(self, view_name: str, writeset_doc: Mapping) -> None:
        self._broadcast(("apply", view_name, writeset_doc))

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _, conn in self._workers:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for i, (proc, conn) in enumerate(self._workers):
            try:
                if conn.poll(_CLOSE_TIMEOUT):
                    conn.recv()
            except (EOFError, OSError):
                pass
            proc.join(timeout=_CLOSE_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=_CLOSE_TIMEOUT)
            conn.close()
