"""Static shard-locality analysis and i-diff instance splitting.

A maintenance round is *shard-parallel* when splitting the base i-diff
instance rows across N workers (all operating on the one shared
database) provably

1. leaves the view and every cache byte-identical to a single-shard run,
2. makes the per-shard access counts sum exactly to the single-shard
   counts (no duplicated and no lost work).

The proof obligation is discharged statically, per round, from three
ingredients:

**Anchor.**  Pick an anchor table A.  Every table with a non-empty
instance must either *be* A or carry a foreign key into A whose child
columns are part of the instance's ID attributes.  Then every instance
row exposes A's key values in known columns, and rows are routed by
``shard_of(anchor key values)``.

**Provenance.**  The anchor key columns are tracked through the IR of
every ``ComputeDiffStep``: filters, bare-column projections, distinct,
unions (all parts must agree), group-bys (keys must retain them), and
probes (which preserve the left input's columns) carry them forward;
anything else loses them.  A row's anchor values never change along the
way, so two rows on different shards always differ in their provenance
columns.

**Locality checks.**  Every statement that could be *active* (feed on a
statically non-empty diff) must be provably shard-local:

* a subview **probe**'s ``on`` columns must cover the left input's
  anchor provenance — then the probe bindings of different shards are
  disjoint, so per-binding index costs add up exactly and the per-shard
  fetches partition the global fetch;
* an **APPLY**'s diff must carry the anchor in its ID attributes — then
  the located target rows are disjoint across shards;
* an **associative aggregate** must keep the anchor in its group keys
  (for every active input) — then per-group read-modify-writes and the
  operator-cache bookkeeping are disjoint;
* a standalone **subview scan** anywhere in the script, or an active
  **general (min/max) aggregate**, forces broadcast.

Statements whose every input is statically empty are *inert*: they cost
nothing on any shard (probes and applies short-circuit on empty input),
so running them N times is free and exact.

When any obligation fails the round falls back to **broadcast**: the
script runs once, globally — bit-for-bit the single-shard behaviour.

The proof is backend-agnostic: the thread backend exploits it by running
N workers against the one shared database, and the process backend
(:mod:`repro.shard.workers`) by executing each shard's instance subset
against a replica database in a long-lived worker process.  Disjointness
of the touched rows is exactly what makes the workers' write-sets safe
to merge.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.diffs import Diff, DiffSchema
from ..core.ir import (
    AppliedSource,
    Compute,
    DiffSource,
    Distinct,
    Empty,
    Filter,
    GroupAgg,
    IrNode,
    ProbeJoin,
    ProbeSemi,
    SubviewSource,
    UnionRows,
)
from ..core.rules.aggregate import AssociativeAggregateStep, GeneralAggregateStep
from ..core.script import (
    ApplyDiffStep,
    ComputeDiffStep,
    DeltaScript,
    MarkCacheUpdatedStep,
)
from ..expr import Col
from ..storage import Database
from ..storage.partition import shard_of

#: Provenance value of a statically-empty branch: vacuously anchored.
_WILD = "*"


class RoutePlan:
    """The routing verdict for one maintenance round."""

    __slots__ = ("parallel", "reason", "anchor", "anchor_key", "instance_positions")

    def __init__(
        self,
        parallel: bool,
        reason: str,
        anchor: Optional[str] = None,
        anchor_key: tuple[str, ...] = (),
        instance_positions: Optional[dict[str, tuple[int, ...]]] = None,
    ):
        self.parallel = parallel
        #: why the round broadcasts (or "" when parallel)
        self.reason = reason
        self.anchor = anchor
        self.anchor_key = anchor_key
        #: instance name -> row positions of the anchor key values
        self.instance_positions = instance_positions or {}

    def __repr__(self) -> str:  # pragma: no cover - display helper
        if self.parallel:
            return f"RoutePlan(parallel, anchor={self.anchor!r})"
        return f"RoutePlan(broadcast: {self.reason})"


class _Broadcast(Exception):
    """Raised by the analysis when a locality obligation fails."""


class _Result:
    """Outcome of analysing one IR (sub)tree."""

    __slots__ = ("empty", "prov")

    def __init__(self, empty: bool, prov):
        self.empty = empty
        #: dict anchor_key_col -> carrying column | None (lost) | _WILD
        self.prov = prov


class _Analysis:
    """Mutable per-candidate state while walking the ∆-script."""

    def __init__(self, anchor: str, anchor_key: tuple[str, ...]):
        self.anchor = anchor
        self.anchor_key = anchor_key
        self.empty: dict[str, bool] = {}
        self.prov: dict[str, object] = {}
        self.ids: dict[str, tuple[str, ...]] = {}
        #: returning_name -> (empty, prov of the applied diff)
        self.expansions: dict[str, tuple[bool, object]] = {}


def plan_route(
    script: DeltaScript,
    instances: dict[str, Diff],
    db: Database,
    n_shards: int,
) -> RoutePlan:
    """Decide how this round's instances run across *n_shards* workers."""
    if n_shards <= 1:
        return RoutePlan(False, "single shard requested")
    active = {name for name, diff in instances.items() if diff.rows}
    if not active:
        return RoutePlan(False, "empty modification batch")
    reasons: list[str] = []
    for anchor in _anchor_candidates(instances, active, db):
        try:
            positions = _try_anchor(script, instances, active, db, anchor)
        except _Broadcast as exc:
            reasons.append(f"{anchor}: {exc}")
            continue
        return RoutePlan(
            True,
            "",
            anchor=anchor,
            anchor_key=db.table(anchor).schema.key,
            instance_positions=positions,
        )
    reason = "; ".join(reasons) if reasons else "no anchor table candidate"
    return RoutePlan(False, reason)


def force_route(
    script: DeltaScript,
    instances: dict[str, Diff],
    db: Database,
    anchor: str,
) -> RoutePlan:
    """Build a *parallel* :class:`RoutePlan` for *anchor* without the proof.

    Instance row positions come from the anchor key mappings alone; the
    per-statement locality obligations of :func:`plan_route` are NOT
    checked.  This exists for ablation studies and for the race-detector
    fixtures (a deliberately mis-routed round): executing the result can
    genuinely race, which is exactly what the interference analyzer
    (``repro.analysis.interference``) and the ``race_check`` mode of
    :class:`~repro.core.sharded.ShardedEngine` are meant to catch.
    Active instances with no key path to *anchor* get no positions and
    are replicated to every shard by :func:`split_instances`.
    """
    anchor_key = db.table(anchor).schema.key
    positions: dict[str, tuple[int, ...]] = {}
    for name, diff in instances.items():
        mapping = _anchor_mapping(diff.schema, anchor, anchor_key, db)
        if mapping is not None:
            positions[name] = tuple(
                diff.schema.position(mapping[k]) for k in anchor_key
            )
    return RoutePlan(
        True,
        "",
        anchor=anchor,
        anchor_key=anchor_key,
        instance_positions=positions,
    )


def split_instances(
    plan: RoutePlan, instances: dict[str, Diff], n_shards: int
) -> list[dict[str, Diff]]:
    """Partition instance rows by anchor key into per-shard environments.

    Every shard sees every instance name (empty instances are shared —
    diffs are read-only), so the ∆-script resolves identically per shard.
    """
    shards: list[dict[str, Diff]] = [{} for _ in range(n_shards)]
    for name, diff in instances.items():
        positions = plan.instance_positions.get(name)
        if not diff.rows or positions is None:
            for env in shards:
                env[name] = diff
            continue
        buckets: list[list[tuple]] = [[] for _ in range(n_shards)]
        for row in diff.rows:
            values = tuple(row[p] for p in positions)
            buckets[shard_of(values, n_shards)].append(row)
        for env, rows in zip(shards, buckets):
            env[name] = Diff(diff.schema, rows)
    return shards


# ----------------------------------------------------------------------
# anchor selection
# ----------------------------------------------------------------------
def _anchor_candidates(
    instances: dict[str, Diff], active: set[str], db: Database
) -> list[str]:
    """Tables that could anchor every active instance, deterministic order."""
    options: Optional[set[str]] = None
    for name in sorted(active):
        schema = instances[name].schema
        ids = set(schema.id_attrs)
        mine = {schema.target}
        for fk in db.foreign_keys_of(schema.target):
            if set(fk.child_columns) <= ids:
                mine.add(fk.parent_table)
        options = mine if options is None else options & mine
    return sorted(options or ())


def _anchor_mapping(
    schema: DiffSchema, anchor: str, anchor_key: tuple[str, ...], db: Database
) -> Optional[dict[str, str]]:
    """anchor key column -> instance column carrying it, or None."""
    ids = set(schema.id_attrs)
    if schema.target == anchor:
        if set(anchor_key) <= ids:
            return {k: k for k in anchor_key}
        return None
    for fk in db.foreign_keys_of(schema.target):
        if fk.parent_table != anchor:
            continue
        child = tuple(fk.child_columns)
        if len(child) == len(anchor_key) and set(child) <= ids:
            return dict(zip(anchor_key, child))
    return None


def _try_anchor(
    script: DeltaScript,
    instances: dict[str, Diff],
    active: set[str],
    db: Database,
    anchor: str,
) -> dict[str, tuple[int, ...]]:
    """Full locality check for one anchor candidate.

    Returns the instance row positions of the anchor key values; raises
    :class:`_Broadcast` on the first failed obligation.
    """
    anchor_key = db.table(anchor).schema.key
    st = _Analysis(anchor, anchor_key)
    positions: dict[str, tuple[int, ...]] = {}
    for name, diff in instances.items():
        schema = diff.schema
        st.ids[name] = schema.id_attrs
        st.empty[name] = not diff.rows
        mapping = _anchor_mapping(schema, anchor, anchor_key, db)
        if mapping is None:
            if name in active:
                raise _Broadcast(f"instance {name} has no key path to the anchor")
            st.prov[name] = _WILD  # empty: vacuous
            continue
        st.prov[name] = mapping
        positions[name] = tuple(schema.position(mapping[k]) for k in anchor_key)
    for step in script.steps:
        _analyze_step(step, st)
    return positions


# ----------------------------------------------------------------------
# statement analysis
# ----------------------------------------------------------------------
def _analyze_step(step, st: _Analysis) -> None:
    if isinstance(step, ComputeDiffStep):
        result = _analyze_ir(step.ir, st)
        st.ids[step.name] = step.schema.id_attrs
        st.empty[step.name] = result.empty
        if result.empty:
            st.prov[step.name] = _WILD
        elif isinstance(result.prov, dict):
            # Diff.from_relation reorders/projects by column NAME; a
            # provenance column survives iff the schema keeps it.
            kept = set(step.schema.columns)
            if all(c in kept for c in result.prov.values()):
                st.prov[step.name] = dict(result.prov)
            else:
                st.prov[step.name] = None
        else:
            st.prov[step.name] = None
        return
    if isinstance(step, ApplyDiffStep):
        _analyze_apply(step, st)
        return
    if isinstance(step, AssociativeAggregateStep):
        _analyze_associative(step, st)
        return
    if isinstance(step, GeneralAggregateStep):
        _analyze_general(step, st)
        return
    if isinstance(step, MarkCacheUpdatedStep):
        return
    raise _Broadcast(f"unknown step type {type(step).__name__}")


def _analyze_apply(step: ApplyDiffStep, st: _Analysis) -> None:
    name = step.diff_name
    if name not in st.empty:
        raise _Broadcast(f"apply reads undefined diff {name!r}")
    if st.empty[name]:
        if step.returning_name is not None:
            st.expansions[step.returning_name] = (True, _WILD)
        return
    prov = st.prov.get(name)
    ids = set(st.ids.get(name, ()))
    if not isinstance(prov, dict) or not set(prov.values()) <= ids:
        raise _Broadcast(
            f"apply of {name} locates target rows by non-anchored IDs"
        )
    if step.returning_name is not None:
        st.expansions[step.returning_name] = (False, prov)


def _analyze_associative(step: AssociativeAggregateStep, st: _Analysis) -> None:
    group_keys = set(step.gnode.keys)
    any_active = False
    mapping: Optional[dict[str, str]] = None
    agree = True
    for kind, name in step.inputs:
        if kind == "expansion":
            record = st.expansions.get(name)
            if record is None:
                raise _Broadcast(f"aggregate reads unknown expansion {name!r}")
            empty, prov = record
            ids = None
        else:
            if name not in st.empty:
                raise _Broadcast(f"aggregate reads undefined diff {name!r}")
            empty, prov = st.empty[name], st.prov.get(name)
            ids = set(st.ids.get(name, ()))
        if empty:
            continue
        any_active = True
        if not isinstance(prov, dict):
            raise _Broadcast(f"aggregate input {name} lost anchor provenance")
        if ids is not None and not set(prov.values()) <= ids:
            raise _Broadcast(
                f"aggregate input {name} probes Input_pre by non-anchored IDs"
            )
        if not set(prov.values()) <= group_keys:
            raise _Broadcast(
                f"aggregate n{step.gnode.node_id} drops the anchor from its "
                f"group keys {sorted(group_keys)}"
            )
        if mapping is None:
            mapping = prov
        elif prov != mapping:
            agree = False
    emitted_ids = tuple(step.gnode.keys)
    for name in step.emitted.values():
        st.ids[name] = emitted_ids
        st.empty[name] = not any_active
        if not any_active:
            st.prov[name] = _WILD
        elif agree and mapping is not None:
            st.prov[name] = dict(mapping)
        else:
            st.prov[name] = None


def _analyze_general(step: GeneralAggregateStep, st: _Analysis) -> None:
    for _, name in step.inputs:
        if name not in st.empty:
            raise _Broadcast(f"aggregate reads undefined diff {name!r}")
        if not st.empty[name]:
            raise _Broadcast(
                f"general aggregate n{step.gnode.node_id} (recompute rule) is "
                f"active; affected groups are not shard-local"
            )
    for name in step.emitted.values():
        st.ids[name] = tuple(step.gnode.keys)
        st.empty[name] = True
        st.prov[name] = _WILD


# ----------------------------------------------------------------------
# IR analysis
# ----------------------------------------------------------------------
def _analyze_ir(node: IrNode, st: _Analysis) -> _Result:
    if isinstance(node, DiffSource):
        if node.name not in st.empty:
            raise _Broadcast(f"IR reads undefined diff {node.name!r}")
        return _Result(st.empty[node.name], st.prov.get(node.name))
    if isinstance(node, Empty):
        return _Result(True, _WILD)
    if isinstance(node, SubviewSource):
        # A standalone scan costs a full fetch on EVERY shard: never local.
        raise _Broadcast(
            f"standalone subview scan of n{node.node.node_id}"
        )
    if isinstance(node, AppliedSource):
        record = st.expansions.get(node.apply_name)
        if record is None:
            raise _Broadcast(f"IR reads unknown expansion {node.apply_name!r}")
        empty, prov = record
        if empty:
            return _Result(True, _WILD)
        if not isinstance(prov, dict):
            return _Result(False, None)
        # Expansion columns are the target's key + pre/post values; an
        # anchored ID column survives iff it is part of that key (the
        # located rows matched it, so the value is the diff's).
        if all(c in node.key for c in prov.values()):
            return _Result(False, dict(prov))
        return _Result(False, None)
    if isinstance(node, (Filter, Distinct)):
        return _analyze_ir(node.child, st)
    if isinstance(node, Compute):
        child = _analyze_ir(node.child, st)
        if child.empty:
            return _Result(True, _WILD)
        if not isinstance(child.prov, dict):
            return _Result(False, None)
        passthrough: dict[str, str] = {}
        for out_name, expr in node.items:
            if isinstance(expr, Col):
                passthrough.setdefault(expr.name, out_name)
        mapped = {}
        for k, c in child.prov.items():
            if c not in passthrough:
                return _Result(False, None)
            mapped[k] = passthrough[c]
        return _Result(False, mapped)
    if isinstance(node, UnionRows):
        parts = [_analyze_ir(p, st) for p in node.parts]
        live = [p for p in parts if not p.empty]
        if not live:
            return _Result(True, _WILD)
        provs = [p.prov for p in live]
        first = provs[0]
        if isinstance(first, dict) and all(p == first for p in provs[1:]):
            return _Result(False, dict(first))
        return _Result(False, None)
    if isinstance(node, GroupAgg):
        child = _analyze_ir(node.child, st)
        if child.empty:
            return _Result(True, _WILD)
        if not isinstance(child.prov, dict):
            return _Result(False, None)
        if all(c in node.keys for c in child.prov.values()):
            return _Result(False, dict(child.prov))
        return _Result(False, None)
    if isinstance(node, (ProbeJoin, ProbeSemi)):
        left = _analyze_ir(node.left, st)
        if left.empty:
            # Probes short-circuit on an empty left input: zero cost on
            # every shard, empty output.
            return _Result(True, _WILD)
        if not isinstance(left.prov, dict):
            raise _Broadcast(
                f"probe of n{node.node.node_id} feeds on rows without "
                f"anchor provenance"
            )
        on_left = {lcol for lcol, _ in node.on}
        if not set(left.prov.values()) <= on_left:
            raise _Broadcast(
                f"probe of n{node.node.node_id} binds on {sorted(on_left)}, "
                f"which does not cover the anchor columns "
                f"{sorted(left.prov.values())}"
            )
        # Output keeps every left column (ProbeJoin appends, ProbeSemi
        # filters), so provenance carries through unchanged.
        return _Result(False, dict(left.prov))
    raise _Broadcast(f"unknown IR node {type(node).__name__}")


# ----------------------------------------------------------------------
# provenance exposure (for external checkers)
# ----------------------------------------------------------------------
class ProvenanceTracker:
    """The router's anchor-key provenance walk, without the right to veto.

    :func:`plan_route` aborts a candidate anchor on the first failed
    locality obligation.  External checkers — the interference analysis
    pass (``repro.analysis.interference``) re-proving shard disjointness
    of write footprints, and mis-route fixtures that *force* an anchor
    the router would reject — need the opposite: walk the whole ∆-script
    under a given anchor claim, record every failure, and keep going
    with conservatively degraded state (a failing statement's outputs
    are marked provenance-free and statically non-empty).

    Use :meth:`advance` step by step; inspect :meth:`prov` / :meth:`empty`
    / :meth:`ids` *before* advancing past a step to see the state that
    step executes under.  ``failures`` collects ``(step_index, reason)``
    pairs (index 0 = instance seeding).
    """

    def __init__(
        self,
        script: DeltaScript,
        instances: dict[str, Diff],
        db: Database,
        anchor: str,
    ):
        self.anchor = anchor
        self.anchor_key = db.table(anchor).schema.key
        self.failures: list[tuple[int, str]] = []
        self._st = _Analysis(anchor, self.anchor_key)
        self._step_index = 0
        active = {name for name, diff in instances.items() if diff.rows}
        st = self._st
        for name in sorted(instances):
            diff = instances[name]
            schema = diff.schema
            st.ids[name] = schema.id_attrs
            st.empty[name] = not diff.rows
            mapping = _anchor_mapping(schema, anchor, self.anchor_key, db)
            if mapping is None:
                if name in active:
                    self.failures.append(
                        (0, f"instance {name} has no key path to the anchor")
                    )
                    st.prov[name] = None
                else:
                    st.prov[name] = _WILD
                continue
            st.prov[name] = mapping

    # ------------------------------------------------------------------
    def advance(self, step) -> Optional[str]:
        """Fold one ∆-script step into the state.

        Returns the failure reason when a locality obligation broke (the
        step's outputs are then degraded to provenance-free), else None.
        """
        self._step_index += 1
        try:
            _analyze_step(step, self._st)
        except _Broadcast as exc:
            self.failures.append((self._step_index, str(exc)))
            self._degrade(step)
            return str(exc)
        return None

    def _degrade(self, step) -> None:
        """Post-failure state: outputs defined, non-empty, provenance-free."""
        st = self._st
        if isinstance(step, ComputeDiffStep):
            st.ids[step.name] = step.schema.id_attrs
            st.empty[step.name] = False
            st.prov[step.name] = None
            return
        if isinstance(step, ApplyDiffStep):
            if step.returning_name is not None:
                st.expansions[step.returning_name] = (False, None)
            return
        if isinstance(step, (AssociativeAggregateStep, GeneralAggregateStep)):
            for name in step.emitted.values():
                st.ids[name] = tuple(step.gnode.keys)
                st.empty[name] = False
                st.prov[name] = None

    # ------------------------------------------------------------------
    # read-only views of the walk state
    # ------------------------------------------------------------------
    def prov(self, name: str):
        """Provenance of diff *name*: a mapping anchor key column ->
        carrying column, ``"*"`` (statically empty: vacuously anchored),
        or None (lost)."""
        return self._st.prov.get(name)

    def empty(self, name: str) -> bool:
        return bool(self._st.empty.get(name, True))

    def ids(self, name: str) -> tuple[str, ...]:
        return self._st.ids.get(name, ())

    def expansion(self, name: str) -> Optional[tuple[bool, object]]:
        """(statically-empty, provenance) of a RETURNING expansion."""
        return self._st.expansions.get(name)

    def anchored(self, prov, within) -> bool:
        """True when *prov* proves per-shard disjointness through the
        column set *within* (e.g. a diff's ID attributes or a γ's group
        keys): every anchor key column is carried by a column of
        *within*, so rows on different shards differ inside *within*."""
        if prov == _WILD:
            return True
        if not isinstance(prov, dict):
            return False
        return set(prov.values()) <= set(within)


def describe_plan(plan: RoutePlan) -> str:
    """One-line human rendering for CLI/trace surfaces."""
    if plan.parallel:
        key = ",".join(plan.anchor_key)
        return f"parallel(anchor={plan.anchor}[{key}])"
    return f"broadcast({plan.reason})"
