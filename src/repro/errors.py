"""Exception hierarchy for the idIVM reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relation schema is malformed or used inconsistently.

    Examples: duplicate column names, a key column that is not part of the
    schema, or a row whose arity does not match its schema.
    """


class IntegrityError(ReproError):
    """A data-integrity constraint was violated.

    Examples: inserting a duplicate primary key, or an insert i-diff whose
    key already exists in the target with different attribute values.
    """


class UnknownTableError(ReproError):
    """A table name was not found in the database catalog."""


class UnknownColumnError(ReproError):
    """An expression or plan referenced a column that does not exist."""


class PlanError(ReproError):
    """An algebraic plan is malformed.

    Examples: a join whose children share column names, or a union whose
    branches have different schemas.
    """


class ExpressionError(ReproError):
    """An expression could not be evaluated or analyzed."""


class DiffError(ReproError):
    """An i-diff or t-diff schema/instance is malformed or ineffective."""


class RuleError(ReproError):
    """No propagation rule applies, or a rule was instantiated incorrectly."""


class ScriptError(ReproError):
    """A delta script is malformed or was executed out of order."""


class SqlError(ReproError):
    """The SQL front-end could not lex, parse, or translate a statement."""


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""


class StaticAnalysisError(ReproError):
    """The static analyzer found error-severity diagnostics in strict mode.

    Raised by :class:`~repro.core.generator.ScriptGenerator` (and hence
    :class:`~repro.core.engine.IdIvmEngine`) when constructed with
    ``strict=True`` and the generated ∆-script fails verification.
    """


class ShardRaceError(ReproError):
    """The dynamic race detector found overlapping per-shard write-sets.

    Raised by :class:`~repro.core.sharded.ShardedEngine` under
    ``race_check="strict"`` when two shard workers of one parallel
    maintenance round wrote the same key of the same table — the
    condition the shard router's static proof is supposed to exclude.
    Carries the offending triples in :attr:`overlaps`.
    """

    def __init__(
        self,
        message: str,
        overlaps: "list[tuple[str, tuple, tuple[int, ...]]] | None" = None,
    ):
        super().__init__(message)
        #: list of (table name, key, shard indices) triples
        self.overlaps = overlaps or []


class WireError(ReproError):
    """A value could not be encoded for (or decoded from) the compact
    cross-process wire format of :mod:`repro.core.wire`.

    Raised when a batch contains a non-primitive value (anything other
    than ``None``/``bool``/``int``/``float``/``str``) or a malformed
    wire document.
    """
