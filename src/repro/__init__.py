"""idIVM — ID-based Incremental View Maintenance.

Reproduction of "Utilizing IDs to Accelerate Incremental View Maintenance"
(Katsis, Ong, Papakonstantinou, Zhao — SIGMOD 2015).

Typical usage::

    from repro import Database, IdIvmEngine, sql_to_plan

    db = Database()
    db.create_table("parts", ("pid", "price"), key=("pid",))
    ...
    engine = IdIvmEngine(db)
    view = engine.define_view("V", sql_to_plan(db, "SELECT ..."))
    engine.log.update("parts", ("P1",), {"price": 11})
    engine.maintain()

Subpackage map:

* :mod:`repro.storage` — instrumented storage substrate.
* :mod:`repro.algebra` — QSPJADU view-definition plans.
* :mod:`repro.sql` — SQL subset front-end.
* :mod:`repro.core` — the ID-based IVM engine (the paper's contribution).
* :mod:`repro.baselines` — tuple-based IVM, recomputation, SDBT.
* :mod:`repro.costmodel` — the Section 6 analytical speedup model.
* :mod:`repro.workloads` — devices and BSMA-like benchmark workloads.
* :mod:`repro.bench` — benchmark harness and reporting.
"""

from .baselines import RecomputeEngine, SdbtEngine, TupleIvmEngine
from .core import EagerIvmEngine, IdIvmEngine
from .query import query
from .sql import sql_to_plan
from .storage import Database

__version__ = "1.0.0"

__all__ = [
    "Database",
    "EagerIvmEngine",
    "IdIvmEngine",
    "RecomputeEngine",
    "SdbtEngine",
    "TupleIvmEngine",
    "query",
    "sql_to_plan",
    "__version__",
]
