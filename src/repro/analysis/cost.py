"""Pass 5: symbolic cost inference over ∆-scripts (COST5xx).

Walks a generated ∆-script step by step — replaying the same cache
apply→mark state machine the executor runs — and derives, per maintenance
phase, a closed-form :class:`~repro.costmodel.symbolic.CostVector` over
workload parameters: base i-diff cardinalities ``card[...]``, probe
fanouts ``f[...]``, selectivities ``s[...]`` and grouping compressions
``g[...]``.  Cardinality symbols are derived from the plan structure
alone — materializing a node changes the *cost* of probing it, never
the estimated row counts — so cached and cache-free variants of the
same pipeline are priced over identical cardinalities.  This
generalizes the
two hand-derived closed forms in :mod:`repro.costmodel.model` (Table 2
SPJ, Table 3 aggregate) to every view the generator can produce.

The model is an *upper bound given observed cardinalities*: probe costs
are charged per left row (the executor dedupes probe values), filter and
semijoin retentions default to 1, and operator-cache bookkeeping is
charged whenever it *may* be touched.  Index lookups of pure
apply/locate phases (SPJ update rounds) carry no estimated symbols and
are exact.

Three consumers:

* the registered ``cost`` pass — minimality lints COST501 (the emitted
  script predicts costlier than an enumerated generator alternative) and
  COST502 (intermediate caches whose predicted amortized benefit is
  negative under the no-cache alternative);
* :func:`reconcile_counts` / :func:`cost_diagnostics` — COST503,
  flagging measured ``MaintenanceReport.phase_counts`` that *exceed* the
  prediction beyond the per-metric tolerance (the S2 counters report
  work the model cannot account for);
* :func:`estimate_chain_parameters` — derives the paper's (a, p, g)
  workload parameters from a plan + database, replacing hand-entered
  constants in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..algebra.evaluate import evaluate_plan
from ..algebra.plan import (
    AntiJoin,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Scan,
    Select,
    SemiJoin,
    UnionAll,
)
from ..algebra.relation import Relation
from ..core.diffs import DELETE, INSERT, UPDATE, DiffSchema
from ..core.ir import (
    AppliedSource,
    Compute,
    DiffSource,
    Distinct,
    Empty,
    Filter,
    GroupAgg,
    IrNode,
    ProbeJoin,
    ProbeSemi,
    SubviewSource,
    UnionRows,
)
from ..core.modlog import schema_instance_name
from ..core.rules.aggregate import AssociativeAggregateStep, GeneralAggregateStep
from ..core.script import (
    PHASE_CACHE_DIFF,
    PHASE_CACHE_UPDATE,
    PHASE_VIEW_DIFF,
    PHASE_VIEW_UPDATE,
    ApplyDiffStep,
    ComputeDiffStep,
    MarkCacheUpdatedStep,
)
from ..costmodel.symbolic import (
    CostExpr,
    CostVector,
    ScriptCostModel,
    card_symbol,
    lookups,
    reads,
    writes,
)
from ..expr import Col, columns_of, equi_join_pairs
from ..storage import Database
from .registry import AnalysisContext, register_pass

#: Nominal per-instance diff cardinality used when no observation binds
#: the base ``card[...]`` symbols (the minimality lint's working point).
NOMINAL_DIFF_CARD = 16.0

#: The four ∆-script phases the model predicts (measured phases outside
#: this set — instance population, setup — are not part of the script).
SCRIPT_PHASES = (
    PHASE_CACHE_DIFF,
    PHASE_CACHE_UPDATE,
    PHASE_VIEW_DIFF,
    PHASE_VIEW_UPDATE,
)

#: COST503 tolerance per metric: ``(relative, absolute)``.  A measured
#: count deviates when ``measured > predicted * (1 + rel) + abs``.  The
#: check is one-sided — the model is a documented upper bound, so only
#: *under*-prediction (counters reporting work the formulas cannot
#: explain) is a defect.  See docs/COST_MODEL.md for the policy.
RECONCILE_TOLERANCES: dict[str, tuple[float, float]] = {
    "index_lookups": (0.25, 4.0),
    "tuple_reads": (0.50, 12.0),
    "tuple_writes": (0.25, 6.0),
}

#: Margin for the minimality comparisons (COST501/COST502): predicted
#: totals within ``max(ABS, REL * baseline)`` are considered equal.
_MARGIN_ABS = 8.0
_MARGIN_REL = 0.05


# ----------------------------------------------------------------------
# node statistics
# ----------------------------------------------------------------------
class PlanStats:
    """Per-plan-node row statistics measured from a live database.

    Evaluation is counted (it goes through the ordinary evaluator); the
    callers that care — ``IdIvmEngine.define_view`` — run inference
    before their counter reset, so inference never pollutes maintenance
    phase counts.
    """

    def __init__(self, db: Database):
        self.db = db
        self._rows: dict[int, Relation] = {}

    def rows(self, node: PlanNode) -> Relation:
        cached = self._rows.get(node.node_id)
        if cached is not None:
            return cached
        if isinstance(node, Scan):
            table = self.db.table(node.table)
            rel = Relation(node.columns, list(table.rows_uncounted()))
        else:
            rel = evaluate_plan(node, self.db)
        self._rows[node.node_id] = rel
        return rel

    def n(self, node: PlanNode) -> int:
        return len(self.rows(node).rows)

    def distinct(self, node: PlanNode, cols: Sequence[str]) -> int:
        rel = self.rows(node)
        idx = [rel.position(c) for c in cols]
        return len({tuple(r[i] for i in idx) for r in rel.rows})

    def fanout(self, node: PlanNode, cols: Sequence[str]) -> float:
        """Average matching rows per distinct value of *cols*."""
        rel = self.rows(node)
        if not rel.rows:
            return 0.0
        return len(rel.rows) / max(self.distinct(node, cols), 1)

    def has_nulls(self, node: PlanNode, cols: Sequence[str]) -> bool:
        rel = self.rows(node)
        idx = [rel.position(c) for c in cols if c in rel.columns]
        return any(r[i] is None for r in rel.rows for i in idx)

    def grouping_compression(
        self, node: PlanNode, id_cols: Sequence[str], key_cols: Sequence[str]
    ) -> float:
        """Average ``distinct(key_cols) / rows`` within each *id_cols*
        group — the paper's g: groups touched per view row touched."""
        rel = self.rows(node)
        if not rel.rows:
            return 1.0
        id_idx = [rel.position(c) for c in id_cols]
        key_idx = [rel.position(c) for c in key_cols]
        groups: dict[tuple, list[tuple]] = {}
        for r in rel.rows:
            groups.setdefault(tuple(r[i] for i in id_idx), []).append(
                tuple(r[i] for i in key_idx)
            )
        ratios = [len(set(keys)) / len(keys) for keys in groups.values()]
        return sum(ratios) / len(ratios)


# ----------------------------------------------------------------------
# the script walker
# ----------------------------------------------------------------------
class CostInferenceError(Exception):
    """The walker met a construct it cannot cost."""


class _CostWalker:
    def __init__(self, generated: object, db: Database, nominal_card: float):
        self.gp = generated
        self.db = db
        self.plan: PlanNode = generated.plan  # type: ignore[attr-defined]
        self.script = generated.script  # type: ignore[attr-defined]
        self.model = ScriptCostModel(generated.view_name)  # type: ignore[attr-defined]
        self.stats = PlanStats(db)
        self.nodes: dict[int, PlanNode] = {n.node_id: n for n in self.plan.walk()}
        cache_specs = list(generated.cache_specs)  # type: ignore[attr-defined]
        self.cache_ids: set[int] = {s.node_id for s in cache_specs}
        self.cache_ids.add(self.script.view_node_id)
        self.cache_state: dict[int, str] = {nid: "pre" for nid in self.cache_ids}
        self.diff_schemas: dict[str, DiffSchema] = {}
        #: RETURNING expansion name -> the diff name whose APPLY produced it
        self.returning_source: dict[str, str] = {}
        for schema in generated.base_schemas:  # type: ignore[attr-defined]
            name = schema_instance_name(schema)
            self.diff_schemas[name] = schema
            self.model.estimate(card_symbol(name), nominal_card)

    # -- symbols -------------------------------------------------------
    def _sym(self, name: str, estimate: float) -> CostExpr:
        self.model.estimate(name, estimate)
        return CostExpr.var(name)

    def _fan(self, node: PlanNode, attrs: Sequence[str]) -> CostExpr:
        """Rows matched per probe value on *node* bound by *attrs*."""
        if set(attrs) >= set(node.ids):
            return CostExpr.const(1.0)
        label = ",".join(sorted(attrs))
        return self._sym(
            f"f[n{node.node_id}.{label}]", self.stats.fanout(node, attrs)
        )

    def _valid_caches(self, state: str) -> set[int]:
        return {nid for nid, st in self.cache_state.items() if st == state}

    # -- probe row estimates -------------------------------------------
    def probe_rows(self, node: PlanNode, attrs: Sequence[str]) -> CostExpr:
        """Expected rows of the subview at *node* matching one binding
        value on *attrs*.

        Cardinality is a property of the *plan*, not of which nodes
        happen to be materialized, so this never consults cache state —
        it always derives the estimate structurally.  (Reading the
        fanout off a cache's contents instead conditions the average on
        values present in the materialized output; a selection below
        the cache then inflates the estimate, and every downstream
        statement of the cached pipeline inherits the inflation.  That
        bias is what made cost selection drop measured-beneficial
        caches.)"""
        attrs = tuple(attrs)
        if isinstance(node, Select):
            rows = self.probe_rows(node.child, attrs)
            n_child = self.stats.n(node.child)
            sel_est = self.stats.n(node) / n_child if n_child else 1.0
            return rows * self._sym(f"s[n{node.node_id}]", sel_est)
        if isinstance(node, Project):
            passthrough = {
                name: expr.name
                for name, expr in node.items
                if isinstance(expr, Col)
            }
            if all(a in passthrough for a in attrs):
                return self.probe_rows(
                    node.child, tuple(passthrough[a] for a in attrs)
                )
            return self._fan(node, attrs)
        if isinstance(node, Join):
            left_cols = set(node.left.columns)
            attrs_left = tuple(a for a in attrs if a in left_cols)
            attrs_right = tuple(a for a in attrs if a not in left_cols)
            pairs, _res = (
                equi_join_pairs(
                    node.condition, node.left.columns, node.right.columns
                )
                if node.condition is not None
                else ([], None)
            )
            if attrs_left:
                rows = self.probe_rows(node.left, attrs_left)
                if pairs:
                    return rows * self.probe_rows(
                        node.right, tuple(b for _, b in pairs)
                    )
                return rows * self.stats.n(node.right)
            rows = self.probe_rows(node.right, attrs_right)
            if pairs:
                return rows * self.probe_rows(
                    node.left, tuple(a for a, _ in pairs)
                )
            return rows * self.stats.n(node.left)
        if isinstance(node, (SemiJoin, AntiJoin)):
            return self.probe_rows(node.left, attrs)  # retention ≤ 1
        if isinstance(node, UnionAll):
            branch = node.branch_column
            child_attrs = tuple(a for a in attrs if a != branch)
            return self.probe_rows(node.left, child_attrs) + self.probe_rows(
                node.right, child_attrs
            )
        # Scans and grouped outputs: the measured per-value fanout of the
        # node itself (1 when the binding covers the node's ids).
        return self._fan(node, attrs)

    # -- probe unit costs ----------------------------------------------
    def probe_unit(
        self, node: PlanNode, attrs: Sequence[str], state: str
    ) -> tuple[CostVector, CostExpr]:
        """(cost, matching rows) for probing *node* with one binding value
        on *attrs*, mirroring :func:`repro.algebra.delta_eval.fetch`."""
        attrs = tuple(attrs)
        if node.node_id in self._valid_caches(state):
            fan = self.probe_rows(node, attrs)
            return lookups(1) + reads(fan), fan
        if isinstance(node, Scan):
            fan = self._fan(node, attrs)
            return lookups(1) + reads(fan), fan
        if isinstance(node, Select):
            vec, rows = self.probe_unit(node.child, attrs, state)
            n_child = self.stats.n(node.child)
            sel_est = self.stats.n(node) / n_child if n_child else 1.0
            sel = self._sym(f"s[n{node.node_id}]", sel_est)
            return vec, rows * sel
        if isinstance(node, Project):
            passthrough = {
                name: expr.name
                for name, expr in node.items
                if isinstance(expr, Col)
            }
            if all(a in passthrough for a in attrs):
                return self.probe_unit(
                    node.child, tuple(passthrough[a] for a in attrs), state
                )
            # fetch-all and filter (counted) — charged once per value.
            return self.cost_full(node.child, state), self._fan(node, attrs)
        if isinstance(node, Join):
            return self._probe_join_node(node, attrs, state)
        if isinstance(node, (SemiJoin, AntiJoin)):
            vec, rows = self.probe_unit(node.left, attrs, state)
            pairs, _res = equi_join_pairs(
                node.condition, node.left.columns, node.right.columns
            )
            if pairs:
                rvec, _rrows = self.probe_unit(
                    node.right, tuple(b for _, b in pairs), state
                )
                vec = vec + rvec.scale(rows)
            else:
                vec = vec + self.cost_full(node.right, state)
            return vec, rows  # retention ≤ 1: upper bound
        if isinstance(node, UnionAll):
            branch = node.branch_column
            child_attrs = tuple(a for a in attrs if a != branch)
            lvec, lrows = self.probe_unit(node.left, child_attrs, state)
            rvec, rrows = self.probe_unit(node.right, child_attrs, state)
            return lvec + rvec, lrows + rrows
        if isinstance(node, GroupBy):
            if set(attrs) <= set(node.keys):
                vec, _crows = self.probe_unit(node.child, attrs, state)
                return vec, self._fan(node, attrs)
            return self.cost_full(node.child, state), self._fan(node, attrs)
        raise CostInferenceError(f"cannot cost probe into {node.label()!r}")

    def _probe_join_node(
        self, node: Join, attrs: tuple[str, ...], state: str
    ) -> tuple[CostVector, CostExpr]:
        left_cols = set(node.left.columns)
        right_cols = set(node.right.columns)
        attrs_left = tuple(a for a in attrs if a in left_cols)
        attrs_right = tuple(a for a in attrs if a in right_cols)
        pairs, _res = (
            equi_join_pairs(node.condition, node.left.columns, node.right.columns)
            if node.condition is not None
            else ([], None)
        )
        if attrs_left:
            vec, rows = self.probe_unit(node.left, attrs_left, state)
            if pairs:
                rvec, rrows = self.probe_unit(
                    node.right, tuple(b for _, b in pairs), state
                )
                return vec + rvec.scale(rows), rows * rrows
            return vec + self.cost_full(node.right, state), rows * self.stats.n(
                node.right
            )
        # Bindings only on the right side: drive from the right.
        vec, rows = self.probe_unit(node.right, attrs_right, state)
        if pairs:
            lvec, lrows = self.probe_unit(
                node.left, tuple(a for a, _ in pairs), state
            )
            return vec + lvec.scale(rows), rows * lrows
        return vec + self.cost_full(node.left, state), rows * self.stats.n(node.left)

    def cost_full(self, node: PlanNode, state: str) -> CostVector:
        """Cost of fetching *node* without bindings (full recompute or a
        cache scan); row counts come from the measured statistics."""
        if node.node_id in self._valid_caches(state) or isinstance(node, Scan):
            return reads(self.stats.n(node))
        if isinstance(node, (Select, Project, GroupBy)):
            child = node.children[0]
            return self.cost_full(child, state)
        if isinstance(node, Join):
            vec = self.cost_full(node.left, state)
            pairs, _res = (
                equi_join_pairs(node.condition, node.left.columns, node.right.columns)
                if node.condition is not None
                else ([], None)
            )
            if pairs:
                rvec, _rows = self.probe_unit(
                    node.right, tuple(b for _, b in pairs), state
                )
                return vec + rvec.scale(self.stats.n(node.left))
            return vec + self.cost_full(node.right, state)
        if isinstance(node, (SemiJoin, AntiJoin)):
            vec = self.cost_full(node.left, state)
            pairs, _res = equi_join_pairs(
                node.condition, node.left.columns, node.right.columns
            )
            if pairs:
                rvec, _rows = self.probe_unit(
                    node.right, tuple(b for _, b in pairs), state
                )
                return vec + rvec.scale(self.stats.n(node.left))
            return vec + self.cost_full(node.right, state)
        if isinstance(node, UnionAll):
            return self.cost_full(node.left, state) + self.cost_full(node.right, state)
        raise CostInferenceError(f"cannot cost full fetch of {node.label()!r}")

    # -- IR costing ----------------------------------------------------
    def ir_cost(self, node: IrNode) -> tuple[CostVector, CostExpr]:
        """(cost, output cardinality) of evaluating an IR tree once."""
        if isinstance(node, DiffSource):
            return CostVector(), CostExpr.var(card_symbol(node.name))
        if isinstance(node, AppliedSource):
            return CostVector(), CostExpr.var(card_symbol(node.apply_name))
        if isinstance(node, SubviewSource):
            pnode = node.node
            return self.cost_full(pnode, node.state), CostExpr.const(
                self.stats.n(pnode)
            )
        if isinstance(node, Empty):
            return CostVector(), CostExpr.zero()
        if isinstance(node, Filter):
            return self.ir_cost(node.child)  # retention ≤ 1: upper bound
        if isinstance(node, (Compute, Distinct)):
            return self.ir_cost(node.child)
        if isinstance(node, UnionRows):
            vec = CostVector()
            card = CostExpr.zero()
            for part in node.parts:
                pvec, pcard = self.ir_cost(part)
                vec = vec + pvec
                card = card + pcard
            return vec, card
        if isinstance(node, GroupAgg):
            return self.ir_cost(node.child)  # groups ≤ rows: upper bound
        if isinstance(node, ProbeJoin):
            lvec, lcard = self.ir_cost(node.left)
            if node.on:
                sub_attrs = tuple(b for _, b in node.on)
                uvec, urows = self.probe_unit(node.node, sub_attrs, node.state)
                return lvec + uvec.scale(lcard), lcard * urows
            vec = lvec + self.cost_full(node.node, node.state)
            return vec, lcard * self.stats.n(node.node)
        if isinstance(node, ProbeSemi):
            lvec, lcard = self.ir_cost(node.left)
            if node.on:
                sub_attrs = tuple(b for _, b in node.on)
                uvec, _urows = self.probe_unit(node.node, sub_attrs, node.state)
                return lvec + uvec.scale(lcard), lcard
            return lvec + self.cost_full(node.node, node.state), lcard
        raise CostInferenceError(f"cannot cost IR node {node!r}")

    # -- steps ---------------------------------------------------------
    def walk(self) -> ScriptCostModel:
        for step in self.script.steps:
            if isinstance(step, ComputeDiffStep):
                self._compute_step(step)
            elif isinstance(step, ApplyDiffStep):
                self._apply_step(step)
            elif isinstance(step, MarkCacheUpdatedStep):
                self.cache_state[step.node_id] = "post"
            elif isinstance(step, AssociativeAggregateStep):
                self._assoc_step(step)
            elif isinstance(step, GeneralAggregateStep):
                self._general_step(step)
            else:
                raise CostInferenceError(f"unknown step type {type(step).__name__}")
        return self.model

    def _compute_step(self, step: ComputeDiffStep) -> None:
        vec, card = self.ir_cost(step.ir)
        self.model.add(f"COMPUTE {step.name}", step.phase, vec)
        self.model.define_card(card_symbol(step.name), card)
        self.diff_schemas[step.name] = step.schema

    def _apply_locate_fan(self, schema: DiffSchema, target: PlanNode) -> CostExpr:
        key = tuple(target.ids)
        if set(schema.id_attrs) >= set(key):
            return CostExpr.const(1.0)
        # Rows located per diff row — the same structural estimate the
        # probe path derives for this subview, so the RETURNING
        # expansion's cardinality does not depend on the target being
        # materialized (see probe_rows).
        return self.probe_rows(target, schema.id_attrs)

    def _apply_step(self, step: ApplyDiffStep) -> None:
        schema = self.diff_schemas.get(step.diff_name)
        if schema is None:
            raise CostInferenceError(f"APPLY of unknown diff {step.diff_name!r}")
        target = self.nodes.get(step.target_node_id)
        if target is None:
            raise CostInferenceError(f"APPLY to unknown node n{step.target_node_id}")
        card = CostExpr.var(card_symbol(step.diff_name))
        if schema.kind == INSERT:
            vec = lookups(card) + writes(card)
            touched = card
        else:
            loc = self._apply_locate_fan(schema, target)
            touched = card * loc
            vec = lookups(card) + writes(touched)
        self.model.add(f"APPLY {step.diff_name} -> {step.target_label}", step.phase, vec)
        if step.returning_name is not None:
            self.model.define_card(card_symbol(step.returning_name), touched)
            self.returning_source[step.returning_name] = step.diff_name

    # -- aggregate steps -----------------------------------------------
    def _agg_input_schema(self, source_kind: str, name: str) -> Optional[DiffSchema]:
        if source_kind == "expansion":
            source = self.returning_source.get(name)
            return self.diff_schemas.get(source) if source else None
        return self.diff_schemas.get(name)

    def _assoc_step(self, step: AssociativeAggregateStep) -> None:
        gnode = step.gnode
        child = gnode.child
        vec = CostVector()
        changes: dict[str, CostExpr] = {
            INSERT: CostExpr.zero(),
            DELETE: CostExpr.zero(),
            UPDATE: CostExpr.zero(),
        }
        key_moving = False
        arg_cols: list[str] = []
        for agg in gnode.aggs:
            if agg.arg is not None:
                arg_cols.extend(columns_of(agg.arg))
        for source_kind, name in step.inputs:
            schema = self._agg_input_schema(source_kind, name)
            if schema is None:
                raise CostInferenceError(f"aggregate input {name!r} has no schema")
            card = CostExpr.var(card_symbol(name))
            if source_kind == "diff":
                # Counted Input_pre probes (Table 9's ∆ ⋈ Input_pre).
                uvec, urows = self.probe_unit(child, schema.id_attrs, "pre")
                vec = vec + uvec.scale(card)
                n_changes = card if schema.kind == INSERT else card * urows
            else:
                n_changes = card  # RETURNING expansions are free
            changes[schema.kind] = changes[schema.kind] + n_changes
            if schema.kind == UPDATE and set(schema.post_attrs) & set(gnode.keys):
                key_moving = True
        has_avg = any(a.func == "avg" for a in gnode.aggs)
        touch_updates = (
            has_avg or key_moving or self.stats.has_nulls(child, arg_cols)
        )
        g = self._sym(f"g[n{gnode.node_id}]", 1.0)
        emit_ins = changes[INSERT] * g
        emit_del = changes[DELETE] * g
        emit_upd = changes[UPDATE] * g
        if key_moving:
            # A group-key update bumps two groups; either may be created
            # or emptied by the move.
            emit_ins = emit_ins + changes[UPDATE] * g
            emit_del = emit_del + changes[UPDATE] * g
        for kind, expr in ((INSERT, emit_ins), (DELETE, emit_del), (UPDATE, emit_upd)):
            self.model.define_card(card_symbol(step.emitted[kind]), expr)
            self.diff_schemas[step.emitted[kind]] = _emitted_schema(gnode, kind)
        e_ins = CostExpr.var(card_symbol(step.emitted[INSERT]))
        e_del = CostExpr.var(card_symbol(step.emitted[DELETE]))
        e_upd = CostExpr.var(card_symbol(step.emitted[UPDATE]))
        t = 1.0 if touch_updates else 0.0
        # Per-group read-modify-write costs by emitted kind (see
        # apply_group_deltas): update = book(t) + locate + write(+book);
        # delete = book + locate + delete + book-delete; insert = book
        # miss + locate miss + out insert + book insert.
        vec = vec + lookups(e_upd * (1.0 + t)) + reads(e_upd * t) + writes(
            e_upd * (1.0 + t)
        )
        vec = vec + lookups(e_del * 2.0) + reads(e_del) + writes(e_del * 2.0)
        vec = vec + lookups(e_ins * 4.0) + writes(e_ins * 2.0)
        self.model.add(f"γ-delta n{gnode.node_id}", step.phase, vec)
        self.cache_state[gnode.node_id] = "post"

    def _general_step(self, step: GeneralAggregateStep) -> None:
        gnode = step.gnode
        child = gnode.child
        vec = CostVector()
        groups = CostExpr.zero()
        for source_kind, name in step.inputs:
            schema = self._agg_input_schema(source_kind, name)
            if schema is None:
                raise CostInferenceError(f"aggregate input {name!r} has no schema")
            card = CostExpr.var(card_symbol(name))
            if source_kind == "expansion":
                groups = groups + card * 2.0  # pre+post group keys per change
                continue
            # Counted pre- AND post-state probes of the child.
            for state in ("pre", "post"):
                uvec, urows = self.probe_unit(child, schema.id_attrs, state)
                vec = vec + uvec.scale(card)
                groups = groups + card * urows
            if schema.kind == INSERT:
                groups = groups + card
        g_sym = card_symbol(f"{step.emit_prefix}__groups")
        self.model.define_card(g_sym, groups)
        g_var = CostExpr.var(g_sym)
        # Recompute γ(∆ ⋉ Input_post) per affected group: the γ probe
        # pushes the group-key binding down to the child.
        uvec, _rows = self.probe_unit(gnode, gnode.keys, "post")
        vec = vec + uvec.scale(g_var)
        vec = vec + lookups(g_var)  # out_table.locate per group
        for kind in (INSERT, DELETE, UPDATE):
            self.diff_schemas[step.emitted[kind]] = _emitted_schema(gnode, kind)
        # A-priori: assume every affected group yields an update; inserts
        # and deletes are observed at reconciliation time.
        self.model.define_card(card_symbol(step.emitted[UPDATE]), g_var)
        self.model.define_card(card_symbol(step.emitted[INSERT]), CostExpr.zero())
        self.model.define_card(card_symbol(step.emitted[DELETE]), CostExpr.zero())
        e_ins = CostExpr.var(card_symbol(step.emitted[INSERT]))
        e_del = CostExpr.var(card_symbol(step.emitted[DELETE]))
        e_upd = CostExpr.var(card_symbol(step.emitted[UPDATE]))
        vec = vec + lookups(e_ins) + writes(e_ins + e_del + e_upd)
        self.model.add(f"γ-recompute n{gnode.node_id}", step.phase, vec)
        self.cache_state[gnode.node_id] = "post"


def _emitted_schema(gnode: GroupBy, kind: str) -> DiffSchema:
    non_ids = tuple(c for c in gnode.columns if c not in set(gnode.keys))
    target = f"n{gnode.node_id}"
    if kind == INSERT:
        return DiffSchema(INSERT, target, gnode.keys, post_attrs=non_ids)
    if kind == DELETE:
        return DiffSchema(DELETE, target, gnode.keys, pre_attrs=non_ids)
    return DiffSchema(
        UPDATE, target, gnode.keys, pre_attrs=non_ids, post_attrs=non_ids
    )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def infer_script_cost(
    generated: object, db: Database, nominal_card: float = NOMINAL_DIFF_CARD
) -> ScriptCostModel:
    """Symbolic per-phase cost model for a :class:`GeneratedPlan`.

    Raises :class:`CostInferenceError` on constructs the walker cannot
    cost; callers embedding this in engines or fuzzers should treat any
    exception as "no model available".
    """
    return _CostWalker(generated, db, nominal_card).walk()


@dataclass(frozen=True)
class CostDeviation:
    """One COST503 finding: a measured count the model cannot explain."""

    phase: str
    metric: str
    predicted: float
    measured: float

    def render(self) -> str:
        return (
            f"{self.phase}/{self.metric}: measured {self.measured:g} > "
            f"predicted {self.predicted:g}"
        )


def reconcile_counts(
    predicted: Mapping[str, Mapping[str, float]],
    measured: Mapping[str, Mapping[str, float]],
    tolerances: Optional[Mapping[str, tuple[float, float]]] = None,
) -> list[CostDeviation]:
    """Compare per-phase predicted vs measured counts (COST503 policy).

    One-sided: flags phases where the measured counters exceed the
    predicted upper bound beyond the per-metric tolerance.  Phases
    outside the four script phases are ignored (instance population and
    setup are not part of the ∆-script).
    """
    tol = dict(RECONCILE_TOLERANCES)
    if tolerances:
        tol.update(tolerances)
    deviations: list[CostDeviation] = []
    for phase in SCRIPT_PHASES:
        measured_phase = measured.get(phase, {})
        predicted_phase = predicted.get(phase, {})
        for metric, (rel, abs_slack) in tol.items():
            m = float(measured_phase.get(metric, 0.0))
            p = float(predicted_phase.get(metric, 0.0))
            if m > p * (1.0 + rel) + abs_slack:
                deviations.append(CostDeviation(phase, metric, p, m))
    return deviations


def reconcile_report(report: object) -> list[CostDeviation]:
    """COST503 deviations for a finished ``MaintenanceReport`` carrying a
    ``predicted_counts`` block (empty when no prediction is attached)."""
    predicted = getattr(report, "predicted_counts", None)
    if not predicted:
        return []
    measured = {
        phase: counts.as_dict()
        for phase, counts in report.phase_counts.items()  # type: ignore[attr-defined]
        if phase in SCRIPT_PHASES
    }
    return reconcile_counts(predicted, measured)


def cost_diagnostics(report: object, analysis_report: object) -> list[CostDeviation]:
    """Append COST503 diagnostics for *report* to *analysis_report*."""
    deviations = reconcile_report(report)
    for dev in deviations:
        analysis_report.add(  # type: ignore[attr-defined]
            "COST503",
            f"phase:{dev.phase}",
            f"measured {dev.metric} {dev.measured:g} exceeds predicted "
            f"{dev.predicted:g} beyond tolerance",
            hint="the symbolic model missed an access path; see docs/COST_MODEL.md",
        )
    return deviations


def drift_diagnostics(monitor: object, analysis_report: object) -> list:
    """Append COST504 informational diagnostics for every active alert
    of a :class:`repro.obs.drift.DriftMonitor`.

    COST504 is the *chronic* counterpart of the per-round COST503 check:
    an EWMA of observed/predicted sitting outside the monitor's band
    over several rounds.  Over-prediction is the live confirmation of a
    COST502 negative-benefit cache (the model keeps charging work the
    workload never performs); under-prediction is a COST503 that
    tolerances alone didn't catch.  Informational severity: drift asks
    for model re-calibration, not a broken script.
    """
    alerts = monitor.alerts()  # type: ignore[attr-defined]
    for alert in alerts:
        analysis_report.add(  # type: ignore[attr-defined]
            "COST504",
            f"view:{alert.view}",
            alert.render(),
            hint=(
                "re-derive the cost model against current statistics; "
                "sustained over-prediction often marks a COST502 "
                "negative-benefit cache (see docs/COST_MODEL.md)"
            ),
        )
    return alerts


# ----------------------------------------------------------------------
# the registered pass: minimality lints
# ----------------------------------------------------------------------
def _alternative_model(
    generated: object, db: Database, optimize: bool, cache_policy: str
) -> Optional[ScriptCostModel]:
    from ..core.generator import ScriptGenerator

    try:
        gen = ScriptGenerator(
            generated.view_name,  # type: ignore[attr-defined]
            generated.plan,  # type: ignore[attr-defined]
            optimize=optimize,
            cache_policy=cache_policy,
        )
        alt = gen.generate(list(generated.base_schemas))  # type: ignore[attr-defined]
        return infer_script_cost(alt, db)
    except Exception:
        return None


def _margin(baseline: float) -> float:
    return max(_MARGIN_ABS, _MARGIN_REL * baseline)


def family_totals(
    model: ScriptCostModel, families: Sequence[str]
) -> dict[str, float]:
    """Predicted accesses/round with one base diff family active at the
    nominal cardinality and every other family empty."""
    out: dict[str, float] = {}
    for fam in families:
        sizes = {f: (NOMINAL_DIFF_CARD if f == fam else 0.0) for f in families}
        pred = model.predict_from_diff_sizes(sizes)
        out[fam] = sum(p["total"] for p in pred.values())
    return out


def dominated_by(
    current: ScriptCostModel,
    alternative: ScriptCostModel,
    families: Sequence[str],
) -> bool:
    """True when *alternative* is an unambiguous improvement: cheaper at
    the uniform working point AND no costlier in any single diff family.

    Summed totals weigh every family equally, but real workloads don't —
    a variant that wins the sum by saving on families the workload never
    produces, while losing on the one family it does, is not an
    improvement.  Requiring per-family no-regression removes that
    workload dependence from the comparison."""
    cur_total = current.total()
    alt_total = alternative.total()
    if not cur_total > alt_total + _margin(alt_total):
        return False
    cur_f = family_totals(current, families)
    alt_f = family_totals(alternative, families)
    return all(alt_f[f] <= cur_f[f] + _margin(cur_f[f]) for f in families)


@register_pass("cost")
def cost_pass(ctx: AnalysisContext) -> None:
    """COST501/COST502: predicted-cost minimality of the emitted script.

    Needs the full ``GeneratedPlan`` and a live database (for node
    statistics); skips silently otherwise.  Never raises: the fuzzer
    treats analyzer crashes as divergences.
    """
    if ctx.generated is None or ctx.db is None:
        return
    try:
        model = infer_script_cost(ctx.generated, ctx.db)
    except Exception:
        return
    current = model.total()
    view = getattr(ctx.generated, "view_name", "?")
    families = [
        schema_instance_name(s)
        for s in ctx.generated.base_schemas  # type: ignore[attr-defined]
    ]
    # COST501: the minimizer must never make the script costlier than
    # the unminimized form it started from.  Fires only when the
    # unminimized form dominates per diff family — a summed-total loss
    # alone may just mean the workload weighting is undecidable at
    # define time (see dominated_by).
    unopt = _alternative_model(ctx.generated, ctx.db, optimize=False, cache_policy="equi")
    if unopt is not None and dominated_by(model, unopt, families):
        ctx.report.add(
            "COST501",
            f"view:{view}",
            f"emitted ∆-script predicts {current:.0f} accesses/round vs "
            f"{unopt.total():.0f} for the unminimized alternative, and the "
            f"alternative is no costlier in any diff family",
            hint="inspect minimize_ir: a rewrite is pessimizing this plan",
        )
    # COST502: intermediate caches must pay for their own maintenance —
    # flagged when dropping every intermediate cache dominates.
    has_intermediate = any(
        s.kind == "intermediate"
        for s in getattr(ctx.generated, "cache_specs", [])
    )
    if has_intermediate:
        nocache = _alternative_model(
            ctx.generated, ctx.db, optimize=True, cache_policy="never"
        )
        if nocache is not None and dominated_by(model, nocache, families):
            benefit = nocache.total() - current
            for spec in ctx.generated.cache_specs:  # type: ignore[attr-defined]
                if spec.kind != "intermediate":
                    continue
                ctx.report.add(
                    "COST502",
                    f"cache:n{spec.node_id}",
                    f"predicted amortized benefit of the intermediate "
                    f"cache set is {benefit:.0f} accesses/round "
                    f"(cache {current:.0f} vs no-cache {nocache.total():.0f}), "
                    f"with no diff family favoring the cache",
                    hint="consider cache_policy='never' or 'fk' for this view",
                )


# ----------------------------------------------------------------------
# chain parameters for the benchmarks (paper Tables 2 and 3)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChainProfile:
    """The paper's workload parameters derived from a plan + database."""

    table: str
    fanouts: tuple[float, ...]
    selectivity: float
    a: float  #: tuple-diff probe accesses per base diff row (App. A)
    p: float  #: view rows touched per base diff row
    g: float  #: grouping compression (1.0 for SPJ views)


def estimate_chain_parameters(
    plan: PlanNode, db: Database, table: str
) -> ChainProfile:
    """Derive (a, p, g) for updates on *table* from the plan's measured
    statistics, matching the closed forms of
    :func:`repro.costmodel.model.estimate_a_for_chain` /
    :func:`estimate_p_for_chain` when the workload is a uniform chain."""
    from ..core.idinfer import annotate_plan
    from ..costmodel.model import estimate_a_for_chain, estimate_p_for_chain

    if plan.node_id == -1:
        plan = annotate_plan(plan)
    stats = PlanStats(db)
    parents: dict[int, PlanNode] = {}
    for node in plan.walk():
        for child in node.children:
            parents[child.node_id] = node
    root: PlanNode = plan
    g = 1.0
    if isinstance(plan, GroupBy):
        root = plan.child
    scan = next(
        (n for n in root.walk() if isinstance(n, Scan) and n.table == table), None
    )
    if scan is None:
        raise CostInferenceError(f"no scan of {table!r} under the SPJ root")
    fanouts: list[float] = []
    selectivity = 1.0
    current: PlanNode = scan
    while current.node_id != root.node_id:
        parent = parents.get(current.node_id)
        if parent is None:
            break
        if isinstance(parent, Join):
            other = parent.right if parent.left.node_id == current.node_id else parent.left
            pairs, _res = equi_join_pairs(
                parent.condition, parent.left.columns, parent.right.columns
            )
            if parent.left.node_id == current.node_id:
                attrs = tuple(b for _, b in pairs)
            else:
                attrs = tuple(a for a, _ in pairs)
            fanouts.append(stats.fanout(other, attrs))
        elif isinstance(parent, Select):
            n_child = stats.n(current)
            selectivity *= stats.n(parent) / n_child if n_child else 1.0
        elif isinstance(parent, (Project, GroupBy)):
            pass
        else:
            raise CostInferenceError(
                f"chain climb through {parent.label()!r} unsupported"
            )
        current = parent
    if isinstance(plan, GroupBy):
        key = db.table(table).schema.key
        child_cols = set(plan.child.columns)
        id_cols = tuple(c for c in key if c in child_cols)
        if id_cols:
            g = stats.grouping_compression(plan.child, id_cols, plan.keys)
    a = estimate_a_for_chain(fanouts) if fanouts else 1.0
    p = estimate_p_for_chain(fanouts, selectivity) if fanouts else selectivity
    return ChainProfile(
        table=table,
        fanouts=tuple(fanouts),
        selectivity=selectivity,
        a=a,
        p=p,
        g=g,
    )
