"""Shared diagnostic model for the static analyzer.

Every pass reports through the same vocabulary: a *rule* (stable id from
the catalog below), a *severity* (fixed per rule), a *location* (a plan
node, a script step, or a free-form anchor), a message, and an optional
fix hint.  Severity policy:

* ``error`` — the generated program is wrong or will crash: maintenance
  results can diverge from recomputation.  ``repro lint`` exits nonzero;
  a strict generator refuses to emit the script.
* ``warning`` — legal but suspicious; a known hazard class that needs
  data to bite (e.g. a NULL-unsafe equi key over a column that happens
  never to hold NULL).
* ``info`` — neutral classification facts (e.g. shard routability per
  base table) surfaced for operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)


@dataclass(frozen=True)
class Rule:
    """One catalog entry; the severity is a property of the rule."""

    rule_id: str
    severity: str
    title: str


#: The rule catalog.  Ids are grouped by pass: TC1xx type/nullability,
#: KEY2xx key inference, SC3xx ∆-script IR, SH4xx shard safety,
#: COST5xx symbolic cost inference, RACE6xx shard interference.
RULES: dict[str, Rule] = {
    r.rule_id: r
    for r in (
        Rule("TC101", WARNING, "ordering comparison between incompatible types"),
        Rule("TC102", ERROR, "non-boolean expression at a filter position"),
        Rule("TC103", ERROR, "plain NOT over a nullable split predicate"),
        Rule("TC104", WARNING, "sum/avg over a non-numeric argument"),
        Rule("TC106", ERROR, "arithmetic over non-numeric operands"),
        Rule("KEY201", ERROR, "claimed ID attributes are not provably a key"),
        Rule("KEY202", ERROR, "claimed ID attributes missing from the output"),
        Rule("SC301", ERROR, "read of an undefined diff or expansion"),
        Rule("SC302", ERROR, "pre-state read of a cache while its update is in flight"),
        Rule("SC304", ERROR, "diff applied to a cache already marked post-state"),
        Rule("SC305", WARNING, "RETURNING expansion is never consumed"),
        Rule("SC306", ERROR, "operator cache over a non-associative aggregate"),
        Rule("SC307", WARNING, "NULL-unsafe equi-join key column"),
        Rule("SH401", WARNING, "maintenance rounds fall back to broadcast"),
        Rule("SH402", INFO, "per-table shard routability classification"),
        Rule("COST501", WARNING, "∆-script predicted costlier than an enumerated alternative"),
        Rule("COST502", WARNING, "cache whose predicted amortized benefit is negative"),
        Rule("COST503", WARNING, "measured access counts exceed the symbolic prediction"),
        Rule("COST504", INFO, "sustained drift between predicted and observed cost"),
        Rule("RACE601", ERROR, "overlapping per-shard write footprints"),
        Rule("RACE602", ERROR, "cross-shard read of state mutated in the same round"),
        Rule("RACE603", WARNING, "broadcast-window write under a routed reader"),
        Rule("RACE604", ERROR, "counted writer escapes write-set capture"),
        Rule("SHARE701", INFO, "identical sub-plan cached by multiple views"),
        Rule("SHARE702", INFO, "view semantically equivalent to an existing view"),
        Rule("SHARE703", INFO, "view subsumed by σ/π over another view's cache"),
    )
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: rule + location + message (+ optional fix hint)."""

    rule_id: str
    severity: str
    location: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.severity:7s} {self.rule_id} {self.location}: {self.message}"
        if self.hint:
            text += f"\n        hint: {self.hint}"
        return text

    def to_json(self) -> dict:
        out = {
            "rule": self.rule_id,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        return out


@dataclass
class AnalysisReport:
    """Accumulated diagnostics across all passes of one analysis run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, rule_id: str, location: str, message: str, hint: str = "") -> None:
        rule = RULES[rule_id]
        self.diagnostics.append(
            Diagnostic(rule_id, rule.severity, location, message, hint)
        )

    def extend(self, other: "AnalysisReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    # ------------------------------------------------------------------
    def by_severity(self, severity: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(WARNING)

    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def rule_ids(self) -> set[str]:
        return {d.rule_id for d in self.diagnostics}

    # ------------------------------------------------------------------
    def sorted_diagnostics(self) -> list[Diagnostic]:
        """Diagnostics in a canonical order: rule id, severity, location.

        Every rendered or serialized view of the report goes through this
        sort, so ``repro lint --json`` output is byte-stable regardless
        of pass-internal iteration order (and of ``PYTHONHASHSEED``).
        """
        severity_rank = {ERROR: 0, WARNING: 1, INFO: 2}
        return sorted(
            self.diagnostics,
            key=lambda d: (
                d.rule_id,
                severity_rank[d.severity],
                d.location,
                d.message,
                d.hint,
            ),
        )

    def render(self) -> str:
        if not self.diagnostics:
            return "no diagnostics"
        order = {ERROR: 0, WARNING: 1, INFO: 2}
        ranked = sorted(
            self.sorted_diagnostics(), key=lambda d: order[d.severity]
        )
        lines = [d.render() for d in ranked]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.by_severity(INFO))} info"
        )
        return "\n".join(lines)

    def to_json(self) -> list[dict]:
        return [d.to_json() for d in self.sorted_diagnostics()]
