"""Pass 3: ∆-script IR checker (rules SC3xx).

Walks the script in execution order computing per-step read/write sets
(diff names, RETURNING expansions, cache states) and checks the
hazards the executor cannot or does not police:

* SC301 — a step reads a diff or expansion no earlier step defines
  (base-table instances count as defined at round start).
* SC302 — write-before-read on a cache: a ``pre``-state subview read of
  cache X placed *after* X's first APPLY but *before* X's
  MarkCacheUpdated.  The cache still answers pre-state reads in that
  window, but its content is mid-update — neither pre nor post.
  (Post-state reads before the mark recompute from the post database
  and are safe.)
* SC304 — an APPLY to a cache already marked post-state: the diff was
  computed against the pre-state and re-applying it double-counts.
* SC305 — a RETURNING expansion no later step consumes (dead expansion:
  the APPLY pays for capture nobody reads).
* SC306 — cache placement over a non-associative aggregate: an
  :class:`AssociativeAggregateStep` or an operator cache on a γ with
  min/max, whose deltas are not invertible from the cache bookkeeping.
* SC307 — a NULL-unsafe equi key: a probe ``on`` column that may be
  NULL.  The executor's index probe matches NULL to NULL (Python dict
  semantics) while 3VL join semantics never match NULL — silent
  divergence on exactly the rows carrying NULL keys.
"""

from __future__ import annotations

from ..algebra.plan import ASSOCIATIVE_AGGS
from ..core.ir import (
    AppliedSource,
    DiffSource,
    ProbeJoin,
    ProbeSemi,
    SubviewSource,
)
from ..core.rules.aggregate import (
    AssociativeAggregateStep,
    GeneralAggregateStep,
)
from ..core.script import ApplyDiffStep, ComputeDiffStep, MarkCacheUpdatedStep
from ..core.ir import PRE
from ..core.modlog import schema_instance_name
from .registry import AnalysisContext, register_pass
from .typecheck import ir_column_facts


@register_pass("script")
def script_pass(ctx: AnalysisContext) -> None:
    if ctx.script is None:
        return
    report = ctx.report
    script = ctx.script
    view_node_id = script.view_node_id

    # SC306 on the placement itself (specs exist even before any step).
    generated = ctx.generated
    if generated is not None:
        for spec in getattr(generated, "opcache_specs", ()):
            bad = [a.func for a in spec.gnode.aggs if a.func not in ASSOCIATIVE_AGGS]
            if bad:
                report.add(
                    "SC306",
                    f"opcache {spec.name} (n{spec.gnode.node_id})",
                    f"operator cache placed over non-associative "
                    f"aggregate(s) {bad}: deltas cannot be applied "
                    f"incrementally from the bookkeeping",
                    hint="min/max require the general recompute rule",
                )

    defined = {schema_instance_name(s) for s in ctx.base_schemas}
    expansions_defined: dict[str, int] = {}  # name -> defining step index
    expansions_consumed: set[str] = set()
    applies_started: set[int] = set()
    marked: set[int] = set()
    expansion_targets: dict[str, int] = {}

    for i, step in enumerate(script.steps, start=1):
        where = f"step {i}"
        if isinstance(step, ComputeDiffStep):
            where = f"step {i} ({step.name})"
            for node in step.ir.walk():
                if isinstance(node, DiffSource) and node.name not in defined:
                    report.add(
                        "SC301",
                        where,
                        f"reads diff {node.name!r} before any step defines it",
                    )
                elif isinstance(node, AppliedSource):
                    if node.apply_name not in expansions_defined:
                        report.add(
                            "SC301",
                            where,
                            f"reads expansion {node.apply_name!r} before the "
                            f"APPLY that captures it",
                        )
                    else:
                        expansions_consumed.add(node.apply_name)
                elif isinstance(node, (SubviewSource, ProbeJoin, ProbeSemi)):
                    target = node.node.node_id
                    if (
                        node.state == PRE
                        and target in applies_started
                        and target not in marked
                    ):
                        report.add(
                            "SC302",
                            where,
                            f"pre-state read of cache n{target} while its "
                            f"update is in flight (applied but not yet "
                            f"marked): the read sees mid-update content",
                            hint="move the read before the first APPLY or "
                            "after the MarkCacheUpdated",
                        )
                if isinstance(node, (ProbeJoin, ProbeSemi)):
                    _check_probe_keys(node, ctx, expansion_targets, where, report)
            defined.add(step.name)
        elif isinstance(step, ApplyDiffStep):
            where = f"step {i} (APPLY {step.diff_name})"
            if step.diff_name not in defined:
                report.add(
                    "SC301",
                    where,
                    f"applies diff {step.diff_name!r} before any step "
                    f"defines it",
                )
            target = step.target_node_id
            if target in marked and target != view_node_id:
                report.add(
                    "SC304",
                    where,
                    f"applies to cache n{target} after it was marked "
                    f"post-state: the diff was computed against the "
                    f"pre-state and double-counts",
                )
            applies_started.add(target)
            if step.returning_name is not None:
                expansions_defined[step.returning_name] = i
                expansion_targets[step.returning_name] = target
        elif isinstance(step, MarkCacheUpdatedStep):
            marked.add(step.node_id)
        elif isinstance(step, (AssociativeAggregateStep, GeneralAggregateStep)):
            where = f"step {i} (γ n{step.gnode.node_id})"
            if isinstance(step, AssociativeAggregateStep):
                bad = [
                    a.func
                    for a in step.gnode.aggs
                    if a.func not in ASSOCIATIVE_AGGS
                ]
                if bad:
                    report.add(
                        "SC306",
                        where,
                        f"associative delta step compiled for "
                        f"non-associative aggregate(s) {bad}",
                        hint="route min/max through GeneralAggregateStep",
                    )
            for kind, name in step.inputs:
                if kind == "expansion":
                    if name not in expansions_defined:
                        report.add(
                            "SC301",
                            where,
                            f"consumes expansion {name!r} before the APPLY "
                            f"that captures it",
                        )
                    else:
                        expansions_consumed.add(name)
                elif name not in defined:
                    report.add(
                        "SC301",
                        where,
                        f"consumes diff {name!r} before any step defines it",
                    )
            # The step applies to and marks its own output materialization.
            applies_started.add(step.gnode.node_id)
            marked.add(step.gnode.node_id)
            defined.update(step.emitted.values())

    for name, step_index in expansions_defined.items():
        if name not in expansions_consumed:
            report.add(
                "SC305",
                f"step {step_index}",
                f"RETURNING expansion {name!r} is captured but never "
                f"consumed",
                hint="drop the RETURNING clause or the whole capture",
            )


def _check_probe_keys(node, ctx, expansion_targets, where, report) -> None:
    """SC307 over a probe's ``on`` pairs, using the inferred facts."""
    from .typecheck import plan_column_facts

    left_facts = ir_column_facts(node.left, ctx.plan, expansion_targets)
    sub_facts = plan_column_facts(node.node)
    for lcol, sub_col in node.on:
        nullable_sides = []
        if left_facts.get(lcol) is not None and left_facts[lcol].nullable:
            nullable_sides.append(lcol)
        if sub_facts.get(sub_col) is not None and sub_facts[sub_col].nullable:
            nullable_sides.append(f"n{node.node.node_id}.{sub_col}")
        if nullable_sides:
            report.add(
                "SC307",
                where,
                f"probe of n{node.node.node_id} binds on nullable "
                f"column(s) {nullable_sides}: the index probe matches "
                f"NULL=NULL where 3VL join semantics never do",
                hint="declare the column NOT NULL or join on a key column",
            )
