"""Incremental, content-addressed analysis cache (``.repro-cache/``).

Re-linting a thousand-view catalog should re-analyze only what changed.
This module persists frozen :class:`AnalysisReport` diagnostics — plus
the sharing-pass facts needed by catalog lint — keyed by an **exact**
fingerprint of everything the per-view passes can observe:

* the plan in exact (syntactic) mode, base schemas and FKs folded in,
* a digest of the database's per-table row counts (the cost pass reads
  cardinality statistics),
* the shard count and generator knobs,
* :data:`~repro.analysis.fingerprint.FINGERPRINT_VERSION`.

Pass versions are *not* part of the key; they live in the file header,
so bumping any pass's ``version=`` in ``@register_pass`` gracefully
invalidates the whole persisted cache at load time.  A truncated or
garbage cache file is treated as empty — corruption can cost a cold
re-analysis, never a wrong report.

The strict engine gate (:func:`repro.analysis.check_generated`) consults
a cache only when ``REPRO_ANALYSIS_CACHE`` names a directory — an
explicit opt-in, so test runs stay hermetic by default.  ``repro lint``
defaults to ``.repro-cache/`` with ``--no-cache`` as the escape hatch.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from ..storage.database import Database
from .diagnostics import AnalysisReport, Diagnostic
from .fingerprint import (
    FINGERPRINT_VERSION,
    digest,
    generated_fingerprint,
    plan_fingerprint,
)
from .registry import pass_versions

CACHE_SCHEMA_VERSION = 1
CACHE_ENV_VAR = "REPRO_ANALYSIS_CACHE"
DEFAULT_CACHE_DIR = ".repro-cache"
_CACHE_FILE = "analysis.json"


def db_stats_digest(db: Optional[Database]) -> str:
    """Digest of the statistics the cost pass can observe."""
    if db is None:
        return "nodb"
    rows = sorted([name, len(table)] for name, table in db.tables.items())
    return digest(["stats", rows])


def plan_cache_key(
    plan: object,
    db: Optional[Database],
    n_shards: int = 2,
    knobs: tuple = (),
) -> str:
    """Cache key for the full per-view analysis of a plan.

    *knobs* captures generator configuration (cache policy, optimize,
    cost-based selection, …) — anything that changes which ∆-script the
    plan compiles to must be in the key.
    """
    return digest(
        [
            "plan-key",
            FINGERPRINT_VERSION,
            plan_fingerprint(plan, db, alpha=False),  # type: ignore[arg-type]
            db_stats_digest(db),
            n_shards,
            list(knobs),
        ]
    )


def generated_cache_key(
    generated: object, db: Optional[Database], n_shards: int = 2
) -> str:
    """Cache key for the analysis of an already-generated plan (the
    strict engine gate's entry point)."""
    return digest(
        [
            "generated-key",
            FINGERPRINT_VERSION,
            generated_fingerprint(generated, db, alpha=False),
            db_stats_digest(db),
            n_shards,
        ]
    )


def entry_from_report(report: AnalysisReport, extra: Optional[dict] = None) -> dict:
    entry: dict = {
        "diagnostics": [
            [d.rule_id, d.severity, d.location, d.message, d.hint]
            for d in report.diagnostics
        ]
    }
    if extra:
        entry.update(extra)
    return entry


def report_from_entry(entry: dict) -> AnalysisReport:
    report = AnalysisReport()
    for rule_id, severity, location, message, hint in entry["diagnostics"]:
        report.diagnostics.append(
            Diagnostic(rule_id, severity, location, message, hint)
        )
    return report


class AnalysisCache:
    """One JSON file of ``key -> frozen analysis entry`` with a versioned
    header.  Load is lazy; writes are atomic (temp file + rename)."""

    def __init__(self, root: "str | Path" = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.path = self.root / _CACHE_FILE
        self._entries: Optional[dict[str, dict]] = None
        self._dirty = False
        self.hits = 0
        self.misses = 0

    def _header(self) -> dict:
        return {
            "schema": "repro.analysis-cache",
            "version": CACHE_SCHEMA_VERSION,
            "fingerprint_version": FINGERPRINT_VERSION,
            "pass_versions": pass_versions(),
        }

    def _load(self) -> dict[str, dict]:
        if self._entries is not None:
            return self._entries
        entries: dict[str, dict] = {}
        try:
            with open(self.path, encoding="utf-8") as fh:
                payload = json.load(fh)
            header = {k: payload.get(k) for k in self._header()}
            if header == self._header() and isinstance(
                payload.get("entries"), dict
            ):
                entries = payload["entries"]
        except (OSError, ValueError):
            # Missing, truncated or garbage file: start cold.  Any
            # stale content is overwritten on the next flush().
            entries = {}
        self._entries = entries
        return entries

    def get(self, key: str) -> Optional[dict]:
        entry = self._load().get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: str, entry: dict) -> None:
        self._load()[key] = entry
        self._dirty = True

    def flush(self) -> None:
        if not self._dirty or self._entries is None:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        payload = dict(self._header())
        payload["entries"] = self._entries
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._dirty = False


def gate_cache() -> Optional[AnalysisCache]:
    """The strict engine gate's cache, or None when not opted in via
    ``REPRO_ANALYSIS_CACHE=<dir>``."""
    root = os.environ.get(CACHE_ENV_VAR)
    return AnalysisCache(root) if root else None
