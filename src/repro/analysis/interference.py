"""Pass 6: shard interference analysis (rules RACE6xx).

The shard router (:mod:`repro.shard.router`) *claims* that a parallel
round's per-shard reads and writes are pairwise disjoint; the engine and
the process-backend write-set merge rely on that claim without checking
it.  This pass re-proves it as an independent footprint analysis: per
maintenance round shape (each base i-diff family alone, plus the mixed
all-families round), it derives the symbolic read/write footprint of
every ∆-script statement from the router's anchor-key provenance
(:class:`~repro.shard.router.ProvenanceTracker`) and checks pairwise
shard-disjointness of the write footprints.

A *footprint* here is "which keys of which materialized table can this
statement touch, as a function of the shard's instance rows".  A write
is **anchored** when the written keys provably carry the anchor key
values (APPLY: provenance ⊆ the diff's ID attributes; associative γ:
provenance ⊆ the group keys for every active input) — rows on different
shards then differ in those key components, so the per-shard write sets
are disjoint.  Broadcast rounds execute serially and are skipped.

Rules:

* RACE601 (error) — a write footprint is not anchored: two shards can
  write the same (table, key).
* RACE602 (error) — a statement reads a table that is also written in
  the same round, through bindings that do not carry the anchor: the
  read can observe another shard's uncommitted write.
* RACE603 (warning) — broadcast-window hazard: a non-anchored writer
  targets state that some other statement of the round reads; even when
  the replicated writes are value-identical, a routed reader can observe
  the window between another shard's write and its own.
* RACE604 (error) — a counted writer targets a table that is not
  registered as a cache/op-cache of the view, so its writes bypass
  ``Table.begin_capture`` and a process-backend replica replay would
  silently diverge.

On router-approved routes the pass is expected to stay silent — any
RACE6xx finding means either a router regression or a *forced* route
(``GeneratedPlan.route_override``, the mis-route fixture knob); both
detectors — this pass and the engine's dynamic ``race_check`` — must
agree on such fixtures.  The pass works unchanged on compiled scripts:
``CompiledComputeDiffStep`` subclasses ``ComputeDiffStep`` and keeps the
``ir`` tree the footprint walk consumes.

Needs a database (for foreign keys / anchor keys); RACE604 only needs
the :class:`GeneratedPlan`.
"""

from __future__ import annotations

from typing import Optional

from ..core.ir import (
    AppliedSource,
    Compute,
    DiffSource,
    Distinct,
    Empty,
    Filter,
    GroupAgg,
    IrNode,
    ProbeJoin,
    ProbeSemi,
    SubviewSource,
    UnionRows,
)
from ..core.modlog import schema_instance_name
from ..core.rules.aggregate import AssociativeAggregateStep, GeneralAggregateStep
from ..core.script import ApplyDiffStep, ComputeDiffStep, DeltaScript
from ..expr import Col
from ..shard.router import (
    ProvenanceTracker,
    RoutePlan,
    _WILD,
    force_route,
    plan_route,
)
from .diagnostics import AnalysisReport
from .registry import AnalysisContext, register_pass
from .shard_check import _dummy_instances


class _Access:
    """One symbolic footprint entry: a statement touching a table."""

    __slots__ = ("step", "anchored", "detail")

    def __init__(self, step: int, anchored: bool, detail: str):
        self.step = step
        self.anchored = anchored
        self.detail = detail


class _TableNames:
    """Display names for the write targets (tags match the capture tags
    of :func:`repro.shard.workers.tagged_tables`)."""

    def __init__(self, generated, script: DeltaScript):
        self.view_node_id = script.view_node_id
        self.cache_names: dict[int, str] = {}
        self.opcache_names: dict[int, str] = {}
        if generated is not None:
            view_name = getattr(generated, "view_name", "view")
            self.cache_names[script.view_node_id] = view_name
            for spec in getattr(generated, "cache_specs", ()):
                self.cache_names[spec.node_id] = spec.name
            for spec in getattr(generated, "opcache_specs", ()):
                self.opcache_names[spec.gnode.node_id] = spec.name

    def cache(self, node_id: int) -> str:
        name = self.cache_names.get(node_id)
        return f"c{node_id}" + (f" ({name})" if name else "")

    def opcache(self, node_id: int) -> str:
        name = self.opcache_names.get(node_id)
        return f"o{node_id}" + (f" ({name})" if name else "")

    def cached(self, node_id: int) -> bool:
        return node_id in self.cache_names


# ----------------------------------------------------------------------
# IR footprint walk (mirrors router._analyze_ir, but collects reads and
# never vetoes)
# ----------------------------------------------------------------------
def _scan_ir(
    node: IrNode,
    tracker: ProvenanceTracker,
    reads: list[tuple[int, bool, str]],
) -> tuple[bool, object]:
    """(statically-empty, provenance) of *node*; appends subview reads
    as (plan node id, anchored, detail)."""
    if isinstance(node, DiffSource):
        return tracker.empty(node.name), tracker.prov(node.name)
    if isinstance(node, Empty):
        return True, _WILD
    if isinstance(node, SubviewSource):
        reads.append((node.node.node_id, False, "standalone subview scan"))
        return False, None
    if isinstance(node, AppliedSource):
        record = tracker.expansion(node.apply_name)
        if record is None:
            return False, None
        empty, prov = record
        if empty:
            return True, _WILD
        if isinstance(prov, dict) and all(c in node.key for c in prov.values()):
            return False, dict(prov)
        return False, None
    if isinstance(node, (Filter, Distinct)):
        return _scan_ir(node.child, tracker, reads)
    if isinstance(node, Compute):
        empty, prov = _scan_ir(node.child, tracker, reads)
        if empty:
            return True, _WILD
        if not isinstance(prov, dict):
            return False, None
        passthrough: dict[str, str] = {}
        for out_name, expr in node.items:
            if isinstance(expr, Col):
                passthrough.setdefault(expr.name, out_name)
        mapped = {}
        for k, c in prov.items():
            if c not in passthrough:
                return False, None
            mapped[k] = passthrough[c]
        return False, mapped
    if isinstance(node, UnionRows):
        parts = [_scan_ir(p, tracker, reads) for p in node.parts]
        live = [p for p in parts if not p[0]]
        if not live:
            return True, _WILD
        first = live[0][1]
        if isinstance(first, dict) and all(p[1] == first for p in live[1:]):
            return False, dict(first)
        return False, None
    if isinstance(node, GroupAgg):
        empty, prov = _scan_ir(node.child, tracker, reads)
        if empty:
            return True, _WILD
        if isinstance(prov, dict) and all(c in node.keys for c in prov.values()):
            return False, dict(prov)
        return False, None
    if isinstance(node, (ProbeJoin, ProbeSemi)):
        empty, prov = _scan_ir(node.left, tracker, reads)
        if empty:
            # Probes short-circuit on an empty left input: no read at all.
            return True, _WILD
        on_left = {lcol for lcol, _ in node.on}
        anchored = isinstance(prov, dict) and set(prov.values()) <= on_left
        reads.append(
            (
                node.node.node_id,
                anchored,
                f"probe bound on {sorted(on_left)}",
            )
        )
        if isinstance(prov, dict):
            return False, dict(prov)
        return False, None
    return False, None


# ----------------------------------------------------------------------
# per-round-shape footprint check
# ----------------------------------------------------------------------
def check_round(
    script: DeltaScript,
    instances: dict,
    db,
    route: RoutePlan,
    generated,
    report: AnalysisReport,
    shape: str,
    _seen: Optional[set] = None,
) -> None:
    """Verify one parallel route claim: derive every statement's
    read/write footprint under *route*'s anchor and report RACE601/602/603
    violations.  Broadcast routes are trivially safe and return early."""
    if not route.parallel or route.anchor is None:
        return
    seen = _seen if _seen is not None else set()
    names = _TableNames(generated, script)
    tracker = ProvenanceTracker(script, instances, db, route.anchor)
    #: table label -> list of write/read accesses
    writes: dict[str, list[_Access]] = {}
    reads: dict[str, list[_Access]] = {}

    for index, step in enumerate(script.steps, start=1):
        if isinstance(step, ComputeDiffStep):
            ir_reads: list[tuple[int, bool, str]] = []
            _scan_ir(step.ir, tracker, ir_reads)
            for node_id, anchored, detail in ir_reads:
                if names.cached(node_id):
                    reads.setdefault(names.cache(node_id), []).append(
                        _Access(index, anchored, f"{step.name}: {detail}")
                    )
        elif isinstance(step, ApplyDiffStep):
            name = step.diff_name
            if not tracker.empty(name):
                prov = tracker.prov(name)
                anchored = tracker.anchored(prov, tracker.ids(name))
                writes.setdefault(names.cache(step.target_node_id), []).append(
                    _Access(
                        index,
                        anchored,
                        f"APPLY {name} locates by {list(tracker.ids(name))}",
                    )
                )
        elif isinstance(step, AssociativeAggregateStep):
            group_keys = tuple(step.gnode.keys)
            any_active = False
            all_anchored = True
            for kind, name in step.inputs:
                if kind == "expansion":
                    record = tracker.expansion(name)
                    empty, prov = record if record is not None else (False, None)
                    input_ids: Optional[tuple] = None
                else:
                    empty, prov = tracker.empty(name), tracker.prov(name)
                    input_ids = tracker.ids(name)
                if empty:
                    continue
                any_active = True
                if not tracker.anchored(prov, group_keys):
                    all_anchored = False
                if input_ids is not None:
                    # Input_pre probe of the γ child, bound on the diff IDs.
                    child_id = step.gnode.child.node_id
                    if names.cached(child_id):
                        reads.setdefault(names.cache(child_id), []).append(
                            _Access(
                                index,
                                tracker.anchored(prov, input_ids),
                                f"Input_pre probe for {name}",
                            )
                        )
            if any_active:
                detail = f"γ n{step.gnode.node_id} RMW by group keys {list(group_keys)}"
                gid = step.gnode.node_id
                writes.setdefault(names.cache(gid), []).append(
                    _Access(index, all_anchored, detail)
                )
                writes.setdefault(names.opcache(gid), []).append(
                    _Access(index, all_anchored, detail + " (bookkeeping)")
                )
        elif isinstance(step, GeneralAggregateStep):
            active = any(not tracker.empty(name) for _, name in step.inputs)
            if active:
                gid = step.gnode.node_id
                writes.setdefault(names.cache(gid), []).append(
                    _Access(
                        index,
                        False,
                        f"general γ n{gid} recomputes affected groups",
                    )
                )
                child_id = step.gnode.child.node_id
                if names.cached(child_id):
                    reads.setdefault(names.cache(child_id), []).append(
                        _Access(index, False, "Input_post group recomputation")
                    )
        tracker.advance(step)

    def emit(rule: str, location: str, message: str, hint: str = "") -> None:
        key = (rule, location, message)
        if key in seen:
            return
        seen.add(key)
        report.add(rule, location, message, hint=hint)

    anchor_desc = f"anchor {route.anchor}[{','.join(route.anchor_key)}]"
    for table in sorted(writes):
        for w in writes[table]:
            if w.anchored:
                continue
            emit(
                "RACE601",
                f"step {w.step} [round {shape}]",
                f"write footprint of {w.detail} on {table} is not "
                f"anchor-disjoint under {anchor_desc}: two shards can "
                f"write the same key",
                hint="carry the anchor key through the statement's IDs / "
                "group keys, or let the router broadcast this round",
            )
    for table in sorted(reads):
        table_written = table in writes
        for r in reads[table]:
            if table_written and not r.anchored:
                emit(
                    "RACE602",
                    f"step {r.step} [round {shape}]",
                    f"read of {table} ({r.detail}) does not carry the "
                    f"anchor while the same round writes {table}: the "
                    f"read can observe another shard's uncommitted write",
                    hint="bind the probe on the anchor-carrying columns "
                    "or let the router broadcast this round",
                )
    for table in sorted(writes):
        if table not in reads:
            continue
        hazards = [w for w in writes[table] if not w.anchored]
        for w in hazards:
            emit(
                "RACE603",
                f"step {w.step} [round {shape}]",
                f"broadcast-window hazard: non-anchored write of {table} "
                f"({w.detail}) while step(s) "
                f"{sorted(r.step for r in reads[table])} read it — a "
                f"routed reader can observe the window between another "
                f"shard's write and its own",
            )


# ----------------------------------------------------------------------
# RACE604: capture coverage (route-independent)
# ----------------------------------------------------------------------
def _check_capture_coverage(ctx: AnalysisContext, script: DeltaScript) -> None:
    generated = ctx.generated
    registered = {script.view_node_id} | {
        spec.node_id for spec in getattr(generated, "cache_specs", ())
    }
    opcaches = {
        spec.gnode.node_id for spec in getattr(generated, "opcache_specs", ())
    }
    hint = (
        "register the materialization in the GeneratedPlan's cache/"
        "op-cache specs so tagged_tables() captures it"
    )
    for index, step in enumerate(script.steps, start=1):
        if isinstance(step, ApplyDiffStep):
            if step.target_node_id not in registered:
                ctx.report.add(
                    "RACE604",
                    f"step {index} (APPLY {step.diff_name})",
                    f"APPLY targets node n{step.target_node_id}, which no "
                    f"cache spec registers: its counted writes bypass "
                    f"Table.begin_capture and replica replay would "
                    f"silently diverge",
                    hint=hint,
                )
        elif isinstance(step, AssociativeAggregateStep):
            gid = step.gnode.node_id
            if gid not in registered:
                ctx.report.add(
                    "RACE604",
                    f"step {index} (γ n{gid})",
                    f"associative aggregate writes output n{gid}, which no "
                    f"cache spec registers: its counted writes escape "
                    f"write-set capture",
                    hint=hint,
                )
            if gid not in opcaches:
                ctx.report.add(
                    "RACE604",
                    f"step {index} (γ n{gid})",
                    f"associative aggregate writes operator cache "
                    f"{step.opcache_name!r} (n{gid}), which no op-cache "
                    f"spec registers: its counted writes escape write-set "
                    f"capture",
                    hint=hint,
                )
        elif isinstance(step, GeneralAggregateStep):
            gid = step.gnode.node_id
            if gid not in registered:
                ctx.report.add(
                    "RACE604",
                    f"step {index} (γ n{gid})",
                    f"general aggregate writes output n{gid}, which no "
                    f"cache spec registers: its counted writes escape "
                    f"write-set capture",
                    hint=hint,
                )


# ----------------------------------------------------------------------
# the pass
# ----------------------------------------------------------------------
@register_pass("interference")
def interference_pass(ctx: AnalysisContext) -> None:
    script = ctx.script
    if script is None or not ctx.base_schemas:
        return
    if ctx.generated is not None:
        _check_capture_coverage(ctx, script)
    if ctx.db is None:
        return

    schemas = ctx.base_schemas
    override = getattr(ctx.generated, "route_override", None)
    shapes: list[tuple[str, set[str]]] = [
        (schema_instance_name(s), {schema_instance_name(s)}) for s in schemas
    ]
    all_active = {schema_instance_name(s) for s in schemas}
    if len(all_active) > 1:
        shapes.append(("mixed", all_active))

    seen: set = set()
    for shape, active in shapes:
        instances = _dummy_instances(schemas, active)
        route = plan_route(script, instances, ctx.db, ctx.n_shards)
        if not route.parallel and override is not None:
            # The engine would honor the forced route — verify THAT claim.
            route = force_route(script, instances, ctx.db, override)
        check_round(
            script,
            instances,
            ctx.db,
            route,
            ctx.generated,
            ctx.report,
            shape,
            _seen=seen,
        )
