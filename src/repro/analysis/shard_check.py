"""Pass 4: shard-safety classification (rules SH4xx).

The shard router (:mod:`repro.shard.router`) proves per *round* that
splitting the base i-diff instances across workers is exact, falling
back to broadcast when any obligation fails.  That decision depends
only on which instances are non-empty — never on row values — so it can
be taken statically at view-definition time by probing the router with
one-row dummy instances, once per base diff schema (table × kind):

* SH401 — *no* single-schema round routes in parallel: the view always
  falls back to broadcast, silently, no matter what is modified.  The
  router's reason for the mixed (all-schemas-active) case is surfaced
  so the plan can be fixed or the fallback accepted knowingly.
* SH402 — the full classification: which modification kinds route in
  parallel (and through which anchor), which broadcast and why.
  Neutral information for capacity planning.

Needs a database (for foreign keys and anchor keys); skipped without.
"""

from __future__ import annotations

from ..core.diffs import Diff, DiffSchema
from ..core.modlog import schema_instance_name
from ..shard.router import plan_route
from .registry import AnalysisContext, register_pass


def _dummy_instances(base_schemas: list[DiffSchema], active: set[str]) -> dict:
    """One placeholder row per active instance (the router only inspects
    row *presence*, schemas and FK metadata — never values)."""
    out = {}
    for schema in base_schemas:
        name = schema_instance_name(schema)
        rows = [tuple(range(len(schema.columns)))] if name in active else []
        out[name] = Diff(schema, rows)
    return out


@register_pass("shard")
def shard_pass(ctx: AnalysisContext) -> None:
    if ctx.script is None or ctx.db is None or not ctx.base_schemas:
        return
    report = ctx.report
    schemas = ctx.base_schemas

    routable = []
    broadcast = []
    for schema in schemas:
        name = schema_instance_name(schema)
        route = plan_route(
            ctx.script, _dummy_instances(schemas, {name}), ctx.db, ctx.n_shards
        )
        if route.parallel:
            routable.append(f"{name} via anchor {route.anchor}")
        else:
            broadcast.append(f"{name} ({route.reason})")

    if not routable:
        all_active = {schema_instance_name(s) for s in schemas}
        route = plan_route(
            ctx.script, _dummy_instances(schemas, all_active), ctx.db, ctx.n_shards
        )
        report.add(
            "SH401",
            "script",
            f"no modification round routes in parallel — every batch "
            f"silently broadcasts to all shards: {route.reason}",
            hint="broadcast is exact but serial; add the missing foreign "
            "key or keep the anchor key in group keys / probe bindings",
        )

    parts = []
    if routable:
        parts.append("parallel: " + ", ".join(routable))
    if broadcast:
        parts.append("broadcast: " + "; ".join(broadcast))
    report.add("SH402", "script", "routability per base diff: " + " | ".join(parts))
