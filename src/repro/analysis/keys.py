"""Pass 2: key/FD inference audit (rules KEY2xx).

:mod:`repro.core.idinfer` implements the paper's Table 1 by structural
recursion; this pass re-derives each subview's key obligations through
an *independent* mechanism — functional-dependency closure — and
cross-checks the claims:

* KEY202 — a node's claimed ``ids`` must be output columns (Pass 1's
  projection extension guarantees this; a violation means the extension
  or a rule is broken).
* KEY201 — the claimed ``ids`` must be a provable superkey of the
  subview: FD closure over base-table keys, equi-join equivalences, and
  projection computations must cover every output column.  Bag union is
  checked structurally (each branch must be keyed by the non-branch
  ids, with the branch column separating branches).

A flagged node is *assumed* correct afterwards (its claim becomes an FD)
so one wrong claim does not cascade into noise above it.
"""

from __future__ import annotations

from typing import Iterable

from ..algebra.plan import (
    AntiJoin,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Scan,
    SemiJoin,
    Select,
    UnionAll,
)
from ..expr import Col, columns_of, equi_join_pairs
from .diagnostics import AnalysisReport
from .registry import AnalysisContext, register_pass

FD = tuple[frozenset, frozenset]  # lhs -> rhs


def closure(attrs: Iterable[str], fds: list[FD]) -> frozenset:
    """Attribute closure of *attrs* under *fds* (textbook fixpoint)."""
    out = set(attrs)
    changed = True
    while changed:
        changed = False
        for lhs, rhs in fds:
            if lhs <= out and not rhs <= out:
                out |= rhs
                changed = True
    return frozenset(out)


def _fd(lhs: Iterable[str], rhs: Iterable[str]) -> FD:
    return (frozenset(lhs), frozenset(rhs))


def _audit_node(node: PlanNode, report: AnalysisReport) -> list[FD]:
    """Verify *node*'s claimed ids; return FDs valid over its output."""
    where = f"plan n{node.node_id} [{node.label()}]"
    columns = set(node.columns)
    ids = set(node.ids)
    missing = ids - columns
    if missing:
        report.add(
            "KEY202",
            where,
            f"claimed ID attributes {sorted(missing)} are not output "
            f"columns {sorted(columns)}",
            hint="Pass 1 must extend projections with every inferred ID",
        )
        ids &= columns

    fds, ok = _derive(node, ids, report, where)
    if not ok:
        pass  # _derive reported; fall through to the assumed claim
    elif not columns <= closure(ids, fds):
        uncovered = sorted(columns - closure(ids, fds))
        report.add(
            "KEY201",
            where,
            f"claimed IDs {sorted(ids)} do not functionally determine "
            f"{uncovered}: the i-diffs addressed through them can hit "
            f"multiple distinct view rows",
            hint="re-check the Table 1 rule for this operator",
        )
    # Assume the claim upward (verified, or flagged once already).
    fds.append(_fd(ids, columns))
    return fds


def _derive(
    node: PlanNode, ids: set, report: AnalysisReport, where: str
) -> tuple[list[FD], bool]:
    """FDs over *node*'s output columns, derived independently of
    ``node.ids``.  The bool is False when a structural obligation already
    failed (reported here; skip the generic closure check)."""
    if isinstance(node, Scan):
        return [_fd(node.schema.key, node.schema.columns)], True
    if isinstance(node, Select):
        return _audit_node(node.child, report), True
    if isinstance(node, Project):
        return _project_fds(node, report), True
    if isinstance(node, Join):
        fds = _audit_node(node.left, report) + _audit_node(node.right, report)
        if node.condition is not None:
            pairs, _ = equi_join_pairs(
                node.condition, node.left.columns, node.right.columns
            )
            for lcol, rcol in pairs:
                fds.append(_fd((lcol,), (rcol,)))
                fds.append(_fd((rcol,), (lcol,)))
        return fds, True
    if isinstance(node, (AntiJoin, SemiJoin)):
        # Right side never reaches the output; audit it for its own sake.
        _audit_node(node.right, report)
        return _audit_node(node.left, report), True
    if isinstance(node, UnionAll):
        return _union_fds(node, ids, report, where)
    if isinstance(node, GroupBy):
        child_fds = _audit_node(node.child, report)
        # One output row per group: the keys are a key by construction.
        fds = [_fd(node.keys, node.columns)]
        keys = set(node.keys)
        fds.extend(fd for fd in child_fds if fd[0] <= keys and fd[1] <= keys)
        return fds, True
    return [], True


def _project_fds(node: Project, report: AnalysisReport) -> list[FD]:
    """FDs of a projection, computed in an extended attribute space.

    The space holds the child's columns plus the output names; renames
    contribute equivalences, computed items contribute ``refs -> name``.
    The caller's closure then runs over child-space FDs transparently,
    so an FD whose attributes were projected away still participates.
    """
    fds = list(_audit_node(node.child, report))
    child_columns = set(node.child.columns)
    for name, expr in node.items:
        if isinstance(expr, Col):
            if name != expr.name:
                fds.append(_fd((expr.name,), (name,)))
                fds.append(_fd((name,), (expr.name,)))
            continue
        refs = columns_of(expr) & child_columns
        fds.append(_fd(refs, (name,)))
    return fds


def _union_fds(
    node: UnionAll, ids: set, report: AnalysisReport, where: str
) -> tuple[list[FD], bool]:
    """Structural key check for bag union (FDs do not survive ∪ in
    general): each branch must be keyed by the claimed ids minus the
    branch column, which separates the branches."""
    ok = True
    branch_ids = ids - {node.branch_column}
    if node.branch_column not in ids:
        report.add(
            "KEY201",
            where,
            f"union IDs {sorted(ids)} omit the branch column "
            f"{node.branch_column!r}: left- and right-branch rows with "
            f"equal ids collide",
            hint="Table 1: ID(R ∪ S) = ID(R) ∪ ID(S) ∪ {b}",
        )
        ok = False
    for side, child in (("left", node.left), ("right", node.right)):
        child_fds = _audit_node(child, report)
        child_cols = set(child.columns)
        if not child_cols <= closure(branch_ids & child_cols, child_fds):
            report.add(
                "KEY201",
                where,
                f"union ids {sorted(branch_ids)} are not a key of the "
                f"{side} branch",
            )
            ok = False
    return [_fd(ids, node.columns)], ok


@register_pass("keys")
def keys_pass(ctx: AnalysisContext) -> None:
    """Audit the whole plan from the root (children audited recursively)."""
    audit_plan_keys(ctx.plan, ctx.report)


def audit_plan_keys(plan: PlanNode, report: AnalysisReport) -> list[FD]:
    """Entry point shared with tests; returns the root's output FDs."""
    return _audit_node(plan, report)
