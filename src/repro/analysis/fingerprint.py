"""Semantic fingerprints for plans and ∆-scripts.

A fingerprint is a SHA-256 digest of a *canonical document*: a tree of
JSON primitives (lists, strings, ints, bools, None, tagged floats)
serialized exactly like :mod:`repro.core.wire` serializes payloads —
``sort_keys``, tight separators, ``allow_nan=False`` and floats spelled
as ``["~f", repr(v)]``.  Documents never contain dicts or iteration
over sets, so digests are byte-stable across processes and
PYTHONHASHSEED values.

Two canonicalization modes exist:

* **alpha mode** (``alpha=True``, the default) — the *semantic* hash.
  Derived attribute names are erased: every column is represented by a
  *provenance descriptor*, a digest describing where its value comes
  from (base table + position, projection expression, aggregate, …).
  Operands of commutative operators (join pairs, union branches,
  conjunctions/disjunctions, ``=``/``<>`` comparisons, ``+``/``*``)
  are sorted by their canonical bytes, and ``>``/``>=`` comparisons
  are rewritten to ``<``/``<=``.  Two plans share an alpha fingerprint
  iff they are the same plan up to attribute renaming and commutative
  operand order (output-column *permutations* between such twins are
  accepted and documented).

* **exact mode** (``alpha=False``) — the *syntactic* hash: attribute
  names, aliases and operand order are kept verbatim.  Exact
  fingerprints key the incremental analysis cache, where cached
  diagnostics embed real attribute names and must replay byte-for-byte.

Base-table context (column names, types, nullability, keys and the
foreign keys incident to the scanned table when a database is given) is
folded into every ``Scan`` leaf, so the same view shape over different
schemas hashes differently.

Script fingerprints build on plan fingerprints: IR nodes reference plan
sub-DAGs by their node fingerprint, columns positionally, and
generator-invented diff/returning names through a first-seen interner —
so a compiled script that merely renames intermediates keeps the
interpreted script's alpha fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Union

from ..algebra.plan import (
    AggSpec,
    AntiJoin,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Scan,
    Select,
    SemiJoin,
    UnionAll,
)
from ..core.diffs import DiffSchema
from ..core.ir import (
    AppliedSource,
    Compute,
    DiffSource,
    Distinct,
    Empty,
    Filter,
    GroupAgg,
    IrNode,
    ProbeJoin,
    ProbeSemi,
    SubviewSource,
    UnionRows,
)
from ..core.rules.aggregate import AssociativeAggregateStep, GeneralAggregateStep
from ..core.script import (
    ApplyDiffStep,
    ComputeDiffStep,
    DeltaScript,
    MarkCacheUpdatedStep,
    Step,
)
from ..errors import ReproError
from ..expr.ast import And, Arith, Call, Cmp, Col, Expr, InList, Lit, Not, Or
from ..storage.database import Database

#: Bump when the canonical-document layout changes; folded into every
#: top-level fingerprint so persisted caches invalidate gracefully.
FINGERPRINT_VERSION = 1

Doc = Union[None, bool, int, float, str, list]


class FingerprintError(ReproError):
    """An object cannot be canonicalized (unknown node/expression)."""


def _canon(doc: Doc) -> Doc:
    """Tag floats wire-style; reject NaN/Inf via json's allow_nan."""
    if isinstance(doc, float) and not isinstance(doc, bool):
        return ["~f", repr(doc)]
    if isinstance(doc, list):
        return [_canon(item) for item in doc]
    if doc is None or isinstance(doc, (bool, int, str)):
        return doc
    raise FingerprintError(f"non-canonical value in fingerprint doc: {doc!r}")


def canonical_fingerprint_bytes(doc: Doc) -> bytes:
    """Deterministic serialization of a canonical document."""
    return json.dumps(
        _canon(doc), sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")


def digest(doc: Doc) -> str:
    """SHA-256 over the canonical bytes, truncated to 128 bits of hex."""
    return hashlib.sha256(canonical_fingerprint_bytes(doc)).hexdigest()[:32]


def _sorted_docs(docs: list) -> list:
    return sorted(docs, key=canonical_fingerprint_bytes)


def _lit_doc(value: object) -> Doc:
    if value is None or isinstance(value, (bool, int, str)):
        return ["v", value]
    if isinstance(value, float):
        return ["v", value]  # _canon applies the ~f tag
    raise FingerprintError(f"unsupported literal type {type(value).__name__}")


#: direction-normalization for commutated comparisons (alpha mode).
_FLIP = {">": "<", ">=": "<="}
_SYMMETRIC_CMP = ("=", "<>")
_COMMUTATIVE_ARITH = ("+", "*")


def expr_doc(expr: Expr, env: dict[str, Doc], alpha: bool) -> Doc:
    """Canonical document of *expr* with column refs resolved via *env*."""
    if isinstance(expr, Col):
        try:
            return ["c", env[expr.name]]
        except KeyError:
            raise FingerprintError(f"unbound column {expr.name!r}") from None
    if isinstance(expr, Lit):
        return _lit_doc(expr.value)
    if isinstance(expr, Arith):
        left = expr_doc(expr.left, env, alpha)
        right = expr_doc(expr.right, env, alpha)
        if alpha and expr.op in _COMMUTATIVE_ARITH:
            left, right = _sorted_docs([left, right])
        return ["ar", expr.op, left, right]
    if isinstance(expr, Cmp):
        op, lhs, rhs = expr.op, expr.left, expr.right
        if alpha and op in _FLIP:
            op = _FLIP[op]
            lhs, rhs = rhs, lhs
        left = expr_doc(lhs, env, alpha)
        right = expr_doc(rhs, env, alpha)
        if alpha and op in _SYMMETRIC_CMP:
            left, right = _sorted_docs([left, right])
        return ["cmp", op, left, right]
    if isinstance(expr, And):
        items = [expr_doc(i, env, alpha) for i in expr.items]
        return ["and", _sorted_docs(items) if alpha else items]
    if isinstance(expr, Or):
        items = [expr_doc(i, env, alpha) for i in expr.items]
        return ["or", _sorted_docs(items) if alpha else items]
    if isinstance(expr, Not):
        return ["not", expr_doc(expr.item, env, alpha)]
    if isinstance(expr, InList):
        values = [_lit_doc(v) for v in expr.values]
        if alpha:
            values = _sorted_docs(values)
        return ["in", expr_doc(expr.item, env, alpha), values]
    if isinstance(expr, Call):
        return ["call", expr.func, [expr_doc(a, env, alpha) for a in expr.args]]
    raise FingerprintError(f"unknown expression node {type(expr).__name__}")


def _predicate_doc(pred: Optional[Expr], env: dict[str, Doc], alpha: bool) -> Doc:
    return expr_doc(pred, env, alpha) if pred is not None else "x"


class _PlanWalker:
    """Bottom-up fingerprint + per-column provenance descriptors.

    For each node the walker yields ``(hash, descs)`` where *descs* maps
    the node's output column names to descriptor strings.  Descriptors,
    not names, appear in parent documents, which is what makes alpha
    fingerprints rename-invariant: a projection item that merely renames
    a child column re-exports the child's descriptor unchanged.

    At binary nodes each side's descriptors are re-tagged with the
    child's hash, so ``σ(T).a`` and ``T.a`` stay distinguishable inside
    one condition while remaining invariant under operand swaps (the tag
    travels with the child).  When both children hash identically (a
    true self-twin) the right side gets a distinct twin tag — the only
    case where side order is semantically irrelevant anyway.
    """

    def __init__(self, db: Optional[Database], alpha: bool):
        self.db = db
        self.alpha = alpha
        self._memo: dict[int, tuple[str, dict[str, str]]] = {}
        #: node_id -> fingerprint for annotated plans (node_id >= 0)
        self.by_node_id: dict[int, str] = {}

    def visit(self, node: PlanNode) -> tuple[str, dict[str, str]]:
        key = id(node)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        h, descs = self._compute(node)
        self._memo[key] = (h, descs)
        if node.node_id >= 0:
            self.by_node_id[node.node_id] = h
        return h, descs

    def _tag(self, side_hash: str, twin: int, descs: dict[str, str]) -> dict[str, str]:
        return {
            name: digest(["@", side_hash, twin, d]) for name, d in descs.items()
        }

    def _sides(
        self, node_l: PlanNode, node_r: PlanNode
    ) -> tuple[str, str, dict[str, str], dict[str, str]]:
        lh, ld = self.visit(node_l)
        rh, rd = self.visit(node_r)
        if self.alpha:
            ld = self._tag(lh, 0, ld)
            rd = self._tag(rh, 1 if lh == rh else 0, rd)
        return lh, rh, ld, rd

    def _compute(self, node: PlanNode) -> tuple[str, dict[str, str]]:
        alpha = self.alpha
        if isinstance(node, Scan):
            doc = self._scan_doc(node)
            h = digest(doc)
            if alpha:
                descs = {
                    c: digest(["col", h, i]) for i, c in enumerate(node.columns)
                }
            else:
                descs = {c: c for c in node.columns}
            return h, descs

        if isinstance(node, Select):
            ch, cd = self.visit(node.child)
            env: dict[str, Doc] = dict(cd)
            doc = ["select", _predicate_doc(node.predicate, env, alpha), ch]
            return digest(doc), cd

        if isinstance(node, Project):
            ch, cd = self.visit(node.child)
            env = dict(cd)
            item_docs: list = []
            descs = {}
            for name, expr in node.items:
                if isinstance(expr, Col):
                    d = cd[expr.name]
                    item_doc: Doc = ["ref", d]
                else:
                    e_doc = expr_doc(expr, env, alpha)
                    item_doc = ["e", e_doc]
                    d = digest(["pe", ch, e_doc]) if alpha else name
                if not alpha:
                    item_doc = ["item", name, item_doc]
                item_docs.append(item_doc)
                descs[name] = d
            return digest(["project", item_docs, ch]), descs

        if isinstance(node, Join):
            lh, rh, ld, rd = self._sides(node.left, node.right)
            env = {**ld, **rd}
            cond = _predicate_doc(node.condition, env, alpha)
            pair = sorted([lh, rh]) if alpha else [lh, rh]
            return digest(["join", pair, cond]), {**ld, **rd}

        if isinstance(node, (AntiJoin, SemiJoin)):
            tag = "antijoin" if isinstance(node, AntiJoin) else "semijoin"
            lh, rh, ld, rd = self._sides(node.left, node.right)
            env = {**ld, **rd}
            cond = _predicate_doc(node.condition, env, alpha)
            return digest([tag, lh, rh, cond]), ld

        if isinstance(node, UnionAll):
            lh, rh, ld, rd = self._sides(node.left, node.right)
            descs = {}
            for c in node.left.columns:
                if alpha:
                    descs[c] = digest(["u", _sorted_docs([ld[c], rd[c]])])
                else:
                    descs[c] = c
            branch_descs = digest(["ub", sorted([lh, rh])]) if alpha else (
                node.branch_column
            )
            descs[node.branch_column] = branch_descs
            if alpha:
                doc: Doc = ["union", sorted([lh, rh])]
            else:
                doc = ["union", lh, rh, node.branch_column]
            return digest(doc), descs

        if isinstance(node, GroupBy):
            ch, cd = self.visit(node.child)
            env = dict(cd)
            key_docs: list = [cd[k] for k in node.keys]
            if alpha:
                key_docs = _sorted_docs(key_docs)
            agg_docs: list = []
            descs = {k: cd[k] for k in node.keys}
            for agg in node.aggs:
                arg_doc = (
                    expr_doc(agg.arg, env, alpha) if agg.arg is not None else None
                )
                a_doc: Doc = ["agg", agg.func, arg_doc]
                if not alpha:
                    a_doc = ["agg", agg.func, arg_doc, agg.name]
                agg_docs.append(a_doc)
                descs[agg.name] = (
                    digest(["ga", ch, agg.func, arg_doc]) if alpha else agg.name
                )
            return digest(["groupby", ch, key_docs, agg_docs]), descs

        raise FingerprintError(f"unknown plan node {type(node).__name__}")

    def _scan_doc(self, node: Scan) -> Doc:
        schema = node.schema
        key_idx = sorted(schema.columns.index(k) for k in schema.key)
        col_ctx = [
            [c, schema.column_type(c), bool(schema.is_nullable(c))]
            for c in schema.columns
        ]
        fk_docs: list = []
        if self.db is not None:
            for fk in self.db.foreign_keys_of(schema.name):
                fk_docs.append(
                    [list(fk.child_columns), fk.parent_table]
                )
            fk_docs = _sorted_docs(fk_docs)
        doc: Doc = ["scan", schema.name, col_ctx, key_idx, fk_docs]
        if not self.alpha:
            doc = doc + [node.alias]
        return doc


def plan_fingerprints(
    plan: PlanNode, db: Optional[Database] = None, alpha: bool = True
) -> dict[int, str]:
    """Fingerprint of every *annotated* sub-plan, keyed by ``node_id``.

    Nodes still carrying the pre-annotation ``node_id == -1`` are
    fingerprinted (their parents need them) but omitted from the map.
    """
    walker = _PlanWalker(db, alpha)
    walker.visit(plan)
    return dict(walker.by_node_id)


def plan_fingerprint(
    plan: PlanNode, db: Optional[Database] = None, alpha: bool = True
) -> str:
    """Top-level fingerprint of a plan (with the format version folded in)."""
    walker = _PlanWalker(db, alpha)
    root, _ = walker.visit(plan)
    return digest(["plan", FINGERPRINT_VERSION, root])


class _ScriptWalker:
    """Canonical documents for ∆-script steps.

    Columns are referenced positionally (index into the child IR node's
    ``columns``), plan nodes by their plan fingerprint, and
    generator-invented diff / returning / expansion names through a
    first-seen interner, mirroring ``wire``'s string table.  A script
    that differs from another only in invented names and attribute
    names therefore shares its alpha fingerprint.
    """

    def __init__(
        self,
        plan_walker: _PlanWalker,
        node_by_id: dict[int, PlanNode],
        alpha: bool,
    ):
        self._plans = plan_walker
        self._nodes = node_by_id
        self.alpha = alpha
        self._names: dict[str, int] = {}

    def _intern(self, name: str) -> Doc:
        if not self.alpha:
            return name
        idx = self._names.setdefault(name, len(self._names))
        return idx

    def _node_fp(self, node: PlanNode) -> str:
        h, _ = self._plans.visit(node)
        return h

    def _target_columns(self, target: str) -> Optional[tuple[str, ...]]:
        """Columns of a diff-schema target ("n<id>" or a base table)."""
        if target.startswith("n"):
            suffix = target[1:]
            if suffix.isdigit() and int(suffix) in self._nodes:
                return self._nodes[int(suffix)].columns
        return None

    def _attr_ref(self, attr: str, columns: Optional[tuple[str, ...]]) -> Doc:
        if not self.alpha or columns is None:
            return attr  # base-table attrs are schema identity
        return columns.index(attr)

    def schema_doc(self, schema: DiffSchema) -> Doc:
        target_doc: Doc
        cols = self._target_columns(schema.target)
        if cols is not None and self.alpha:
            suffix = schema.target[1:]
            target_doc = ["node", self._node_fp(self._nodes[int(suffix)])]
        else:
            target_doc = ["t", schema.target]
        return [
            "dschema",
            schema.kind,
            target_doc,
            [self._attr_ref(a, cols) for a in schema.id_attrs],
            [self._attr_ref(a, cols) for a in schema.pre_attrs],
            [self._attr_ref(a, cols) for a in schema.post_attrs],
        ]

    def _env(self, columns: tuple[str, ...], prefix: str = "") -> dict[str, Doc]:
        if self.alpha:
            return {prefix + c: [prefix or "p", i] for i, c in enumerate(columns)}
        return {prefix + c: prefix + c for c in columns}

    def ir_doc(self, node: IrNode) -> Doc:
        alpha = self.alpha
        if isinstance(node, DiffSource):
            return ["dsrc", self._intern(node.name), self.schema_doc(node.schema)]
        if isinstance(node, SubviewSource):
            return ["sub", self._node_fp(node.node), node.state]
        if isinstance(node, AppliedSource):
            return [
                "applied",
                self._intern(node.apply_name),
                len(node.key),
                len(node.attrs),
            ]
        if isinstance(node, Empty):
            return ["empty", len(node.columns) if alpha else list(node.columns)]
        if isinstance(node, Filter):
            env = self._env(node.child.columns)
            return [
                "filter",
                expr_doc(node.predicate, env, alpha),
                self.ir_doc(node.child),
            ]
        if isinstance(node, Compute):
            env = self._env(node.child.columns)
            child_pos = {c: i for i, c in enumerate(node.child.columns)}
            items: list = []
            for name, expr in node.items:
                if alpha and isinstance(expr, Col):
                    item: Doc = ["p", child_pos[expr.name]]
                else:
                    item = ["e", expr_doc(expr, env, alpha)]
                if not alpha:
                    item = ["item", name, item]
                items.append(item)
            return ["pi", items, self.ir_doc(node.child)]
        if isinstance(node, Distinct):
            return ["distinct", self.ir_doc(node.child)]
        if isinstance(node, UnionRows):
            parts = [self.ir_doc(p) for p in node.parts]
            return ["urows", _sorted_docs(parts) if alpha else parts]
        if isinstance(node, GroupAgg):
            env = self._env(node.child.columns)
            child_pos = {c: i for i, c in enumerate(node.child.columns)}
            keys: list = [child_pos[k] if alpha else k for k in node.keys]
            if alpha:
                keys = sorted(keys)
            return [
                "gamma",
                keys,
                [self._agg_doc(a, env) for a in node.aggs],
                self.ir_doc(node.child),
            ]
        if isinstance(node, ProbeJoin):
            left_pos = {c: i for i, c in enumerate(node.left.columns)}
            sub_pos = {c: i for i, c in enumerate(node.node.columns)}
            on = [
                [left_pos[a] if alpha else a, sub_pos[b] if alpha else b]
                for a, b in node.on
            ]
            if alpha:
                on = sorted(on)
            keep: list = []
            for out, sub in node.keep:
                keep.append([sub_pos[sub]] if alpha else [out, sub])
            env = self._env(node.columns)
            residual = (
                expr_doc(node.residual, env, alpha)
                if node.residual is not None
                else "x"
            )
            return [
                "probej",
                self.ir_doc(node.left),
                self._node_fp(node.node),
                node.state,
                on,
                keep,
                residual,
            ]
        if isinstance(node, ProbeSemi):
            left_pos = {c: i for i, c in enumerate(node.left.columns)}
            sub_pos = {c: i for i, c in enumerate(node.node.columns)}
            on = [
                [left_pos[a] if alpha else a, sub_pos[b] if alpha else b]
                for a, b in node.on
            ]
            if alpha:
                on = sorted(on)
            env = self._env(node.left.columns)
            if self.alpha:
                env.update(
                    {"sub__" + c: ["s", i] for i, c in enumerate(node.node.columns)}
                )
            else:
                env.update({"sub__" + c: "sub__" + c for c in node.node.columns})
            residual = (
                expr_doc(node.residual, env, alpha)
                if node.residual is not None
                else "x"
            )
            return [
                "probes",
                self.ir_doc(node.left),
                self._node_fp(node.node),
                node.state,
                on,
                residual,
                bool(node.negated),
            ]
        raise FingerprintError(f"unknown IR node {type(node).__name__}")

    def _agg_doc(self, agg: AggSpec, env: dict[str, Doc]) -> Doc:
        arg = expr_doc(agg.arg, env, self.alpha) if agg.arg is not None else None
        if self.alpha:
            return ["agg", agg.func, arg]
        return ["agg", agg.func, arg, agg.name]

    def step_doc(self, step: Step) -> Doc:
        if isinstance(step, ComputeDiffStep):
            # CompiledComputeDiffStep subclasses keep name/schema/ir, so
            # compiled and interpreted scripts canonicalize identically.
            return [
                "compute",
                self._intern(step.name),
                self.schema_doc(step.schema),
                self.ir_doc(step.ir),
                step.phase,
            ]
        if isinstance(step, ApplyDiffStep):
            target: Doc
            node = self._nodes.get(step.target_node_id)
            if node is not None and self.alpha:
                target = ["node", self._node_fp(node)]
            else:
                target = ["t", step.target_node_id, step.target_label]
            returning = (
                self._intern(step.returning_name)
                if step.returning_name is not None
                else None
            )
            return [
                "apply",
                self._intern(step.diff_name),
                target,
                step.phase,
                returning,
            ]
        if isinstance(step, MarkCacheUpdatedStep):
            node = self._nodes.get(step.node_id)
            if node is not None and self.alpha:
                return ["mark", ["node", self._node_fp(node)]]
            return ["mark", ["t", step.node_id, step.label]]
        if isinstance(step, (AssociativeAggregateStep, GeneralAggregateStep)):
            kind = (
                "agg-assoc"
                if isinstance(step, AssociativeAggregateStep)
                else "agg-general"
            )
            gnode_fp = self._node_fp(step.gnode)
            inputs = [[k, self._intern(n)] for k, n in step.inputs]
            # Emitted diff names are defined here; intern them in a
            # fixed kind order so downstream references resolve.
            emitted = [
                self._intern(step.emitted[k]) for k in sorted(step.emitted)
            ]
            opcache = (
                self._intern(step.opcache_name)
                if isinstance(step, AssociativeAggregateStep)
                else None
            )
            return [kind, gnode_fp, inputs, opcache, emitted, step.phase]
        raise FingerprintError(f"unknown script step {type(step).__name__}")


def script_fingerprint(
    script: DeltaScript,
    plan: PlanNode,
    db: Optional[Database] = None,
    alpha: bool = True,
) -> str:
    """Fingerprint of a ∆-script against its (annotated) view plan."""
    plan_walker = _PlanWalker(db, alpha)
    plan_walker.visit(plan)
    node_by_id = {n.node_id: n for n in plan.walk() if n.node_id >= 0}
    walker = _ScriptWalker(plan_walker, node_by_id, alpha)
    view_node = node_by_id.get(script.view_node_id)
    view_doc: Doc
    if view_node is not None and alpha:
        view_doc = ["node", walker._node_fp(view_node)]
    else:
        view_doc = ["t", script.view_node_id]
    steps = [walker.step_doc(s) for s in script.steps]
    return digest(["script", FINGERPRINT_VERSION, view_doc, steps])


def generated_fingerprint(
    generated: object, db: Optional[Database] = None, alpha: bool = True
) -> str:
    """Combined plan+script fingerprint of a ``GeneratedPlan``.

    Folds in the cache placement (node fingerprints of cached
    sub-plans), so two generations differing only in cache/route choice
    hash differently even when plan and script agree.
    """
    plan = generated.plan  # type: ignore[attr-defined]
    script = generated.script  # type: ignore[attr-defined]
    walker = _PlanWalker(db, alpha)
    walker.visit(plan)
    node_fps = dict(walker.by_node_id)
    cache_docs: list = []
    for spec in generated.cache_specs:  # type: ignore[attr-defined]
        fp = node_fps.get(spec.node_id, f"n{spec.node_id}")
        cache_docs.append([spec.kind, fp] if alpha else [spec.kind, fp, spec.name])
    cache_docs = _sorted_docs(cache_docs)
    return digest(
        [
            "generated",
            FINGERPRINT_VERSION,
            plan_fingerprint(plan, db, alpha),
            script_fingerprint(script, plan, db, alpha),
            cache_docs,
        ]
    )
