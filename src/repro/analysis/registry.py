"""Pluggable pass registry for the static analyzer.

A pass is a callable ``(AnalysisContext) -> None`` that appends to
``ctx.report``.  Registration order is execution order; passes declare
what they need (a script, a database) by returning early when the
context lacks it, so one registry serves plan-only, post-generation and
full-workload analyses alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..algebra.plan import PlanNode
from ..core.diffs import DiffSchema
from ..core.script import DeltaScript
from ..storage import Database
from .diagnostics import AnalysisReport


@dataclass
class AnalysisContext:
    """Everything a pass may consult.  Only *plan* is mandatory."""

    plan: PlanNode
    script: Optional[DeltaScript] = None
    base_schemas: list[DiffSchema] = field(default_factory=list)
    #: the full GeneratedPlan when analyzing compiler output (duck-typed
    #: to avoid importing the generator from the analyzer)
    generated: object = None
    db: Optional[Database] = None
    n_shards: int = 2
    report: AnalysisReport = field(default_factory=AnalysisReport)


PassFn = Callable[[AnalysisContext], None]

_PASSES: dict[str, PassFn] = {}


def register_pass(name: str) -> Callable[[PassFn], PassFn]:
    """Decorator: register a pass under *name* (registration order runs)."""

    def deco(fn: PassFn) -> PassFn:
        if name in _PASSES:
            raise ValueError(f"analysis pass {name!r} already registered")
        _PASSES[name] = fn
        return fn

    return deco


def pass_names() -> tuple[str, ...]:
    return tuple(_PASSES)


def run_passes(
    ctx: AnalysisContext, names: Optional[Sequence[str]] = None
) -> AnalysisReport:
    """Run the selected passes (all, by default) over *ctx*."""
    for name in names if names is not None else _PASSES:
        try:
            fn = _PASSES[name]
        except KeyError:
            raise ValueError(
                f"unknown analysis pass {name!r}; have {sorted(_PASSES)}"
            ) from None
        fn(ctx)
    return ctx.report
