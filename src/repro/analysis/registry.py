"""Pluggable pass registry for the static analyzer.

A pass is a callable ``(AnalysisContext) -> None`` that appends to
``ctx.report``.  Registration order is execution order; passes declare
what they need (a script, a database) by returning early when the
context lacks it, so one registry serves plan-only, post-generation and
full-workload analyses alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..algebra.plan import PlanNode
from ..core.diffs import DiffSchema
from ..core.script import DeltaScript
from ..storage import Database
from .diagnostics import AnalysisReport


@dataclass
class AnalysisContext:
    """Everything a pass may consult.  Only *plan* is mandatory."""

    plan: PlanNode
    script: Optional[DeltaScript] = None
    base_schemas: list[DiffSchema] = field(default_factory=list)
    #: the full GeneratedPlan when analyzing compiler output (duck-typed
    #: to avoid importing the generator from the analyzer)
    generated: object = None
    db: Optional[Database] = None
    n_shards: int = 2
    report: AnalysisReport = field(default_factory=AnalysisReport)


PassFn = Callable[[AnalysisContext], None]

_PASSES: dict[str, PassFn] = {}
_PASS_VERSIONS: dict[str, int] = {}


def register_pass(name: str, version: int = 1) -> Callable[[PassFn], PassFn]:
    """Decorator: register a pass under *name* (registration order runs).

    *version* feeds the incremental analysis cache: bumping it when a
    pass's diagnostics change invalidates every persisted entry.
    """

    def deco(fn: PassFn) -> PassFn:
        if name in _PASSES:
            raise ValueError(f"analysis pass {name!r} already registered")
        _PASSES[name] = fn
        _PASS_VERSIONS[name] = version
        return fn

    return deco


def pass_names() -> tuple[str, ...]:
    return tuple(_PASSES)


@dataclass
class CatalogContext:
    """Input to catalog-scoped passes: facts about *all* defined views.

    ``views`` holds one :class:`~repro.analysis.sharing.CatalogViewFacts`
    per view (duck-typed here so the registry does not import the pass
    modules it hosts).
    """

    views: list = field(default_factory=list)
    report: AnalysisReport = field(default_factory=AnalysisReport)


CatalogPassFn = Callable[[CatalogContext], None]

_CATALOG_PASSES: dict[str, CatalogPassFn] = {}


def register_catalog_pass(
    name: str, version: int = 1
) -> Callable[[CatalogPassFn], CatalogPassFn]:
    """Decorator: register a catalog-scoped pass.

    Per-view passes see one view at a time; catalog passes run once over
    the facts of every defined view (cross-view sharing detection needs
    the whole catalog).  They live in a separate registry so
    :func:`pass_names` — and every caller that iterates it per view —
    is unaffected.
    """

    def deco(fn: CatalogPassFn) -> CatalogPassFn:
        if name in _CATALOG_PASSES:
            raise ValueError(f"catalog pass {name!r} already registered")
        _CATALOG_PASSES[name] = fn
        _PASS_VERSIONS[name] = version
        return fn

    return deco


def catalog_pass_names() -> tuple[str, ...]:
    return tuple(_CATALOG_PASSES)


def pass_versions() -> dict[str, int]:
    """Name -> version for every registered pass (both scopes), for the
    analysis cache header."""
    return dict(_PASS_VERSIONS)


def run_catalog_passes(
    ctx: CatalogContext, names: Optional[Sequence[str]] = None
) -> AnalysisReport:
    """Run the selected catalog passes (all, by default) over *ctx*."""
    for name in names if names is not None else _CATALOG_PASSES:
        try:
            fn = _CATALOG_PASSES[name]
        except KeyError:
            raise ValueError(
                f"unknown catalog pass {name!r}; have {sorted(_CATALOG_PASSES)}"
            ) from None
        fn(ctx)
    return ctx.report


def run_passes(
    ctx: AnalysisContext, names: Optional[Sequence[str]] = None
) -> AnalysisReport:
    """Run the selected passes (all, by default) over *ctx*."""
    for name in names if names is not None else _PASSES:
        try:
            fn = _PASSES[name]
        except KeyError:
            raise ValueError(
                f"unknown analysis pass {name!r}; have {sorted(_PASSES)}"
            ) from None
        fn(ctx)
    return ctx.report
