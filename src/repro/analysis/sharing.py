"""Pass 7 — cross-view sharing detection (catalog scope, SHARE7xx).

The first catalog-scoped pass: where passes 1–6 verify one view at a
time, this pass sees the *facts* of every defined view at once and
flags statically detectable overlap between them — the precondition for
actually sharing intermediate caches across views.

* **SHARE701** — an identical sub-plan (by alpha fingerprint) is
  materialized as an intermediate cache in two or more views.  Each
  extra copy repeats the cache's whole maintenance pipeline every
  round; the diagnostic prices that duplicated work with the PR 5
  symbolic cost model (the transitive compute/aggregate/apply steps
  feeding the cache, evaluated at nominal diff cardinalities).
* **SHARE702** — a view is semantically equivalent (same root alpha
  fingerprint) to an already-defined view.
* **SHARE703** — a view is a selection/projection over a sub-plan that
  another view materializes: its σ/π root chain bottoms out in a
  fingerprint another view caches.

All three are informational: they report sharing *opportunities*, not
defects.

Facts (:class:`CatalogViewFacts`) are deliberately tiny and
JSON-serializable so the incremental analysis cache can persist them —
a warm ``repro lint --catalog`` runs this pass from cached facts
without regenerating a single ∆-script.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..algebra.plan import PlanNode, Project, Select
from ..core.ir import AppliedSource, DiffSource, IrNode
from ..core.rules.aggregate import AssociativeAggregateStep, GeneralAggregateStep
from ..core.script import ApplyDiffStep, ComputeDiffStep
from ..costmodel.symbolic import CostVector, UnresolvedSymbolError
from ..storage.database import Database
from .fingerprint import plan_fingerprint, plan_fingerprints
from .registry import CatalogContext, register_catalog_pass

SHARING_PASS_VERSION = 1

#: how many view names a SHARE7xx message spells out before eliding
_MAX_NAMED_VIEWS = 5


@dataclass(frozen=True)
class CachedSubplan:
    """One materialized sub-plan of a view, priced for maintenance."""

    node_id: int
    kind: str  # "intermediate" | "output"
    label: str  # operator label, e.g. "Join"
    fingerprint: str  # alpha fingerprint of the cached sub-plan
    #: metric -> predicted accesses/round to keep this cache fresh
    #: (None when the cost model could not be derived)
    price: Optional[dict[str, float]]


@dataclass(frozen=True)
class CatalogViewFacts:
    """Everything the sharing pass needs to know about one view."""

    label: str
    root_fingerprint: str
    caches: tuple[CachedSubplan, ...]
    #: fingerprints reachable from the root through σ/π operators only,
    #: root included — the "selection/projection over X" witnesses
    chain: tuple[str, ...]


def _ir_dependencies(ir: IrNode) -> tuple[set[str], set[str]]:
    """Diff names and expansion (RETURNING) names an IR tree reads."""
    diffs: set[str] = set()
    expansions: set[str] = set()
    for node in ir.walk():
        if isinstance(node, DiffSource):
            diffs.add(node.name)
        elif isinstance(node, AppliedSource):
            expansions.add(node.apply_name)
    return diffs, expansions


def _cache_step_labels(generated: object, node_id: int) -> set[str]:
    """Cost-model step labels of the maintenance pipeline of one cache.

    Starts from the diffs applied to *node_id* and chases producers
    transitively (compute steps through their IR sources, aggregate
    steps through their inputs, RETURNING expansions through the apply
    that emits them).  Applies targeting *other* caches are charged to
    those caches, not this one.
    """
    steps = generated.script.steps  # type: ignore[attr-defined]
    labels: set[str] = set()
    pending: list[tuple[str, str]] = []  # (kind, name): "diff" | "expansion"
    seen: set[tuple[str, str]] = set()

    for step in steps:
        if isinstance(step, ApplyDiffStep) and step.target_node_id == node_id:
            labels.add(f"APPLY {step.diff_name} -> {step.target_label}")
            pending.append(("diff", step.diff_name))

    producers: dict[tuple[str, str], object] = {}
    for step in steps:
        if isinstance(step, ComputeDiffStep):
            producers[("diff", step.name)] = step
        elif isinstance(step, (AssociativeAggregateStep, GeneralAggregateStep)):
            for name in step.emitted.values():
                producers[("diff", name)] = step
        if isinstance(step, ApplyDiffStep) and step.returning_name is not None:
            producers[("expansion", step.returning_name)] = step

    while pending:
        key = pending.pop()
        if key in seen:
            continue
        seen.add(key)
        step = producers.get(key)
        if step is None:
            continue  # base-table i-diff: arrives from the modlog for free
        if isinstance(step, ComputeDiffStep):
            labels.add(f"COMPUTE {step.name}")
            diffs, expansions = _ir_dependencies(step.ir)
            pending.extend(("diff", n) for n in diffs)
            pending.extend(("expansion", n) for n in expansions)
        elif isinstance(step, AssociativeAggregateStep):
            labels.add(f"γ-delta n{step.gnode.node_id}")
            pending.extend(pair for pair in step.inputs)
        elif isinstance(step, GeneralAggregateStep):
            labels.add(f"γ-recompute n{step.gnode.node_id}")
            pending.extend(pair for pair in step.inputs)
        elif isinstance(step, ApplyDiffStep):
            # reached through a RETURNING expansion: charge the upstream
            # compute, not the apply (it maintains a different cache)
            pending.append(("diff", step.diff_name))
    return labels


def _price_cache(
    generated: object, db: Optional[Database], node_id: int
) -> Optional[dict[str, float]]:
    if db is None:
        return None
    try:
        from .cost import infer_script_cost

        model = infer_script_cost(generated, db)
    except Exception:
        return None
    labels = _cache_step_labels(generated, node_id)
    vector = CostVector()
    for step_cost in model.steps:
        if step_cost.label in labels:
            vector = vector + step_cost.vector
    try:
        price = model.evaluate_vector(vector)
    except UnresolvedSymbolError:
        return None
    price["total"] = sum(price.values())
    return price


def _root_chain(plan: PlanNode, fps: dict[int, str]) -> tuple[str, ...]:
    chain: list[str] = []
    node: PlanNode = plan
    while True:
        fp = fps.get(node.node_id)
        if fp is not None:
            chain.append(fp)
        if isinstance(node, Select):
            node = node.child
        elif isinstance(node, Project):
            node = node.child
        else:
            return tuple(chain)


def view_facts(
    label: str, generated: object, db: Optional[Database] = None
) -> CatalogViewFacts:
    """Distill one generated view into the sharing pass's input facts."""
    plan = generated.plan  # type: ignore[attr-defined]
    fps = plan_fingerprints(plan, db)
    nodes = {n.node_id: n for n in plan.walk()}
    caches: list[CachedSubplan] = []
    for spec in generated.cache_specs:  # type: ignore[attr-defined]
        node = nodes.get(spec.node_id)
        fp = fps.get(spec.node_id)
        if node is None or fp is None:
            continue
        price = (
            _price_cache(generated, db, spec.node_id)
            if spec.kind == "intermediate"
            else None
        )
        caches.append(
            CachedSubplan(spec.node_id, spec.kind, node.label(), fp, price)
        )
    return CatalogViewFacts(
        label=label,
        root_fingerprint=plan_fingerprint(plan, db),
        caches=tuple(caches),
        chain=_root_chain(plan, fps),
    )


def facts_to_json(facts: CatalogViewFacts) -> dict:
    return {
        "label": facts.label,
        "root": facts.root_fingerprint,
        "caches": [
            {
                "node_id": c.node_id,
                "kind": c.kind,
                "label": c.label,
                "fp": c.fingerprint,
                "price": c.price,
            }
            for c in facts.caches
        ],
        "chain": list(facts.chain),
    }


def facts_from_json(payload: dict) -> CatalogViewFacts:
    return CatalogViewFacts(
        label=payload["label"],
        root_fingerprint=payload["root"],
        caches=tuple(
            CachedSubplan(
                node_id=c["node_id"],
                kind=c["kind"],
                label=c["label"],
                fingerprint=c["fp"],
                price=c["price"],
            )
            for c in payload["caches"]
        ),
        chain=tuple(payload["chain"]),
    )


def _name_views(labels: list[str]) -> str:
    shown = labels[:_MAX_NAMED_VIEWS]
    extra = len(labels) - len(shown)
    joined = ", ".join(shown)
    return f"{joined} and {extra} more" if extra > 0 else joined


@register_catalog_pass("sharing", version=SHARING_PASS_VERSION)
def sharing_pass(ctx: CatalogContext) -> None:
    views: list[CatalogViewFacts] = list(ctx.views)

    # SHARE701: identical intermediate caches across views.
    by_fp: dict[str, list[tuple[str, CachedSubplan]]] = {}
    for facts in views:
        for cache in facts.caches:
            if cache.kind == "intermediate":
                by_fp.setdefault(cache.fingerprint, []).append(
                    (facts.label, cache)
                )
    for fp in sorted(by_fp):
        members = sorted(by_fp[fp], key=lambda m: m[0])
        labels = sorted({label for label, _ in members})
        if len(labels) < 2:
            continue
        priced = next((c.price for _, c in members if c.price), None)
        if priced is not None:
            cost_note = (
                f"; each extra copy repeats ≈{priced['total']:g} "
                f"accesses/round ({priced['index_lookups']:g} lookups, "
                f"{priced['tuple_reads']:g} reads, "
                f"{priced['tuple_writes']:g} writes)"
            )
        else:
            cost_note = ""
        op = members[0][1].label
        ctx.report.add(
            "SHARE701",
            f"shared:{fp[:12]}",
            f"{op} sub-plan cached independently by {len(labels)} views "
            f"({_name_views(labels)}){cost_note}",
            "maintain the sub-plan once and share the cache across views",
        )

    # SHARE702: whole-view semantic duplicates.
    by_root: dict[str, list[str]] = {}
    for facts in views:
        by_root.setdefault(facts.root_fingerprint, []).append(facts.label)
    duplicate_roots: set[str] = set()
    for fp in sorted(by_root):
        labels = sorted(set(by_root[fp]))
        if len(labels) < 2:
            continue
        duplicate_roots.add(fp)
        first, rest = labels[0], labels[1:]
        ctx.report.add(
            "SHARE702",
            first,
            f"{_name_views(rest)} {'is' if len(rest) == 1 else 'are'} "
            f"semantically equivalent to {first} (same alpha fingerprint)",
            "define the view once and alias the duplicates",
        )

    # SHARE703: a view's σ/π chain bottoms out in another view's cache.
    cache_owners: dict[str, set[str]] = {}
    for facts in views:
        for cache in facts.caches:
            cache_owners.setdefault(cache.fingerprint, set()).add(facts.label)
    for facts in sorted(views, key=lambda f: f.label):
        if facts.root_fingerprint in duplicate_roots:
            continue  # already reported as SHARE702
        hosts: set[str] = set()
        for fp in facts.chain:
            hosts |= {
                owner
                for owner in cache_owners.get(fp, ())
                if owner != facts.label
            }
        if hosts:
            named = _name_views(sorted(hosts))
            ctx.report.add(
                "SHARE703",
                facts.label,
                f"view is a selection/projection over a sub-plan already "
                f"cached by {named}",
                "answer the view from the host cache instead of maintaining "
                "a private copy",
            )
