"""Static verifier + lint framework for plans, expressions and ∆-scripts.

Six per-view passes over a shared diagnostic model (see
docs/ANALYSIS.md):

* ``typecheck``    — 3VL-aware type & nullability inference (TC1xx)
* ``keys``         — key/FD audit of the ID inference claims (KEY2xx)
* ``script``       — ∆-script IR read/write-set checker (SC3xx)
* ``shard``        — shard routability classification (SH4xx)
* ``cost``         — symbolic cost inference & minimality lints (COST5xx)
* ``interference`` — shard write/read footprint disjointness (RACE6xx)

plus one catalog-scoped pass that sees every defined view at once:

* ``sharing``      — cross-view sub-plan sharing detection (SHARE7xx)

Entry points: :func:`analyze_plan` for a bare algebra plan,
:func:`analyze_generated` for compiler output, :func:`check_generated`
as the strict post-generation assertion (raises on error-severity
diagnostics; consults the incremental analysis cache when
``REPRO_ANALYSIS_CACHE`` is set), and :func:`analyze_catalog` for the
catalog scope.
"""

from __future__ import annotations

from typing import Optional

from ..core.idinfer import annotate_plan
from ..errors import StaticAnalysisError
from .diagnostics import (
    ERROR,
    INFO,
    RULES,
    WARNING,
    AnalysisReport,
    Diagnostic,
    Rule,
)
from .registry import (
    AnalysisContext,
    CatalogContext,
    catalog_pass_names,
    pass_names,
    pass_versions,
    register_catalog_pass,
    register_pass,
    run_catalog_passes,
    run_passes,
)

# Importing the pass modules registers them (registration order = run
# order: cheap local checks first, router probing last).
from . import typecheck as _typecheck  # noqa: F401
from . import keys as _keys  # noqa: F401
from . import script_check as _script_check  # noqa: F401
from . import shard_check as _shard_check  # noqa: F401
from . import cost as _cost  # noqa: F401
from . import interference as _interference  # noqa: F401
from . import sharing as _sharing  # noqa: F401

from .fingerprint import (  # noqa: E402  (re-export)
    FINGERPRINT_VERSION,
    FingerprintError,
    generated_fingerprint,
    plan_fingerprint,
    plan_fingerprints,
    script_fingerprint,
)
from .cache import (  # noqa: E402  (re-export)
    AnalysisCache,
    entry_from_report,
    gate_cache,
    generated_cache_key,
    plan_cache_key,
    report_from_entry,
)
from .sharing import CatalogViewFacts, view_facts  # noqa: E402


def analyze_plan(plan, names=None) -> AnalysisReport:
    """Run the plan-level passes over a (possibly un-annotated) plan."""
    if plan.node_id == -1:
        plan = annotate_plan(plan)
    ctx = AnalysisContext(plan=plan)
    return run_passes(ctx, names)


def analyze_generated(
    generated, db=None, n_shards: int = 2, names=None, script=None
) -> AnalysisReport:
    """Run every applicable pass over a :class:`GeneratedPlan`.

    Without *db* the shard and interference passes skip themselves
    (routability needs the foreign-key graph); everything else runs.
    *script* substitutes an alternative ∆-script for the generated one —
    the lint surface uses it to analyze the compiled execution backend
    (``CompiledComputeDiffStep`` subclasses ``ComputeDiffStep``, so the
    step-level passes apply unchanged).
    """
    ctx = AnalysisContext(
        plan=generated.plan,
        script=script if script is not None else generated.script,
        base_schemas=list(generated.base_schemas),
        generated=generated,
        db=db,
        n_shards=n_shards,
    )
    return run_passes(ctx, names)


def check_generated(generated, db=None) -> AnalysisReport:
    """Strict gate: analyze and raise on error-severity diagnostics.

    When ``REPRO_ANALYSIS_CACHE`` names a directory, a previously seen
    (plan, script, statistics) triple replays its frozen diagnostics
    instead of re-running the passes.
    """
    cache = gate_cache()
    report: Optional[AnalysisReport] = None
    key = ""
    if cache is not None:
        key = generated_cache_key(generated, db)
        entry = cache.get(key)
        if entry is not None:
            report = report_from_entry(entry)
    if report is None:
        report = analyze_generated(generated, db=db)
        if cache is not None:
            cache.put(key, entry_from_report(report))
            cache.flush()
    if report.has_errors():
        lines = [d.render() for d in report.errors]
        raise StaticAnalysisError(
            f"static analysis rejected the generated plan for "
            f"{generated.view_name!r}:\n" + "\n".join(lines)
        )
    return report


def analyze_catalog(views, names=None) -> AnalysisReport:
    """Run the catalog-scoped passes over per-view facts.

    *views* is an iterable of :class:`~repro.analysis.sharing.
    CatalogViewFacts` (build them with :func:`view_facts`, or replay
    them from the analysis cache).
    """
    ctx = CatalogContext(views=list(views))
    return run_catalog_passes(ctx, names)


__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "RULES",
    "Rule",
    "Diagnostic",
    "AnalysisReport",
    "AnalysisContext",
    "CatalogContext",
    "CatalogViewFacts",
    "register_pass",
    "register_catalog_pass",
    "pass_names",
    "catalog_pass_names",
    "pass_versions",
    "run_passes",
    "run_catalog_passes",
    "analyze_plan",
    "analyze_generated",
    "analyze_catalog",
    "check_generated",
    "view_facts",
    "plan_fingerprint",
    "plan_fingerprints",
    "script_fingerprint",
    "generated_fingerprint",
    "FingerprintError",
    "FINGERPRINT_VERSION",
    "AnalysisCache",
    "gate_cache",
    "plan_cache_key",
    "generated_cache_key",
    "entry_from_report",
    "report_from_entry",
]
