"""Static verifier + lint framework for plans, expressions and ∆-scripts.

Six passes over a shared diagnostic model (see docs/ANALYSIS.md):

* ``typecheck``    — 3VL-aware type & nullability inference (TC1xx)
* ``keys``         — key/FD audit of the ID inference claims (KEY2xx)
* ``script``       — ∆-script IR read/write-set checker (SC3xx)
* ``shard``        — shard routability classification (SH4xx)
* ``cost``         — symbolic cost inference & minimality lints (COST5xx)
* ``interference`` — shard write/read footprint disjointness (RACE6xx)

Entry points: :func:`analyze_plan` for a bare algebra plan,
:func:`analyze_generated` for compiler output, :func:`check_generated`
as the strict post-generation assertion (raises on error-severity
diagnostics).
"""

from __future__ import annotations

from typing import Optional

from ..core.idinfer import annotate_plan
from ..errors import StaticAnalysisError
from .diagnostics import (
    ERROR,
    INFO,
    RULES,
    WARNING,
    AnalysisReport,
    Diagnostic,
    Rule,
)
from .registry import AnalysisContext, pass_names, register_pass, run_passes

# Importing the pass modules registers them (registration order = run
# order: cheap local checks first, router probing last).
from . import typecheck as _typecheck  # noqa: F401
from . import keys as _keys  # noqa: F401
from . import script_check as _script_check  # noqa: F401
from . import shard_check as _shard_check  # noqa: F401
from . import cost as _cost  # noqa: F401
from . import interference as _interference  # noqa: F401


def analyze_plan(plan, names=None) -> AnalysisReport:
    """Run the plan-level passes over a (possibly un-annotated) plan."""
    if plan.node_id == -1:
        plan = annotate_plan(plan)
    ctx = AnalysisContext(plan=plan)
    return run_passes(ctx, names)


def analyze_generated(
    generated, db=None, n_shards: int = 2, names=None, script=None
) -> AnalysisReport:
    """Run every applicable pass over a :class:`GeneratedPlan`.

    Without *db* the shard and interference passes skip themselves
    (routability needs the foreign-key graph); everything else runs.
    *script* substitutes an alternative ∆-script for the generated one —
    the lint surface uses it to analyze the compiled execution backend
    (``CompiledComputeDiffStep`` subclasses ``ComputeDiffStep``, so the
    step-level passes apply unchanged).
    """
    ctx = AnalysisContext(
        plan=generated.plan,
        script=script if script is not None else generated.script,
        base_schemas=list(generated.base_schemas),
        generated=generated,
        db=db,
        n_shards=n_shards,
    )
    return run_passes(ctx, names)


def check_generated(generated, db=None) -> AnalysisReport:
    """Strict gate: analyze and raise on error-severity diagnostics."""
    report = analyze_generated(generated, db=db)
    if report.has_errors():
        lines = [d.render() for d in report.errors]
        raise StaticAnalysisError(
            f"static analysis rejected the generated plan for "
            f"{generated.view_name!r}:\n" + "\n".join(lines)
        )
    return report


__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "RULES",
    "Rule",
    "Diagnostic",
    "AnalysisReport",
    "AnalysisContext",
    "register_pass",
    "pass_names",
    "run_passes",
    "analyze_plan",
    "analyze_generated",
    "check_generated",
]
