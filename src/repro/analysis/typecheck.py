"""Pass 1: 3VL-aware type & nullability inference (rules TC1xx).

Infers a :class:`ColumnFact` (declared type + nullability) for every
column of every plan subview and every generated IR relation, seeded
from the catalog's declared column metadata, and checks expressions
against the evaluator's actual 3VL semantics (:mod:`repro.expr.eval`):

* TC101 — an ordering comparison between incompatible declared types is
  *always* UNKNOWN (``compare`` maps the TypeError to NULL); an equality
  between them is a constant.
* TC102 — a filter-position expression whose inferred type is known and
  not boolean can never be True: the filter drops every row.
* TC103 — a generated split complement using plain ``Not(φ)`` where
  ``Not(is_true(φ))`` is required: when φ is UNKNOWN the plain form
  drops the row instead of keeping it (the σ update-split bug class).
* TC104 — sum/avg over an argument of known non-numeric type.
* TC106 — arithmetic whose operand types guarantee a TypeError at run
  time (``evaluate`` does not catch it: the maintenance round crashes).

The fact model is deliberately conservative: an unknown type checks
against everything; only *declared-and-wrong* combinations fire.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from ..algebra.plan import (
    AggSpec,
    AntiJoin,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Scan,
    SemiJoin,
    Select,
    UnionAll,
)
from ..core.diffs import DiffSchema, post_col, pre_col
from ..core.idinfer import node_by_id
from ..core.ir import (
    SUB_PREFIX,
    AppliedSource,
    Compute,
    DiffSource,
    Distinct,
    Empty,
    Filter,
    GroupAgg,
    IrNode,
    ProbeJoin,
    ProbeSemi,
    SubviewSource,
    UnionRows,
)
from ..core.script import ApplyDiffStep, ComputeDiffStep
from ..errors import PlanError
from ..expr import (
    And,
    Arith,
    Call,
    Cmp,
    Col,
    Expr,
    InList,
    Lit,
    Not,
    Or,
    columns_of,
    conjuncts_of,
    equi_join_pairs,
    may_be_null,
)
from .diagnostics import AnalysisReport
from .registry import AnalysisContext, register_pass

NUMERIC_TYPES = frozenset(("int", "float", "bool"))
ORDERING_OPS = frozenset(("<", "<=", ">", ">="))

_NODE_TARGET = re.compile(r"^n(\d+)$")


@dataclass(frozen=True)
class ColumnFact:
    """What is statically known about one column's values."""

    type: Optional[str] = None  # a COLUMN_TYPES name, or None (unknown)
    nullable: bool = True


UNKNOWN = ColumnFact()


def _lit_fact(value) -> ColumnFact:
    if value is None:
        return ColumnFact(None, True)
    if isinstance(value, bool):
        return ColumnFact("bool", False)
    if isinstance(value, int):
        return ColumnFact("int", False)
    if isinstance(value, float):
        return ColumnFact("float", False)
    if isinstance(value, str):
        return ColumnFact("str", False)
    return ColumnFact(None, False)


def _merge_fact(a: ColumnFact, b: ColumnFact) -> ColumnFact:
    return ColumnFact(
        a.type if a.type == b.type else None, a.nullable or b.nullable
    )


def _arith_crashes(op: str, lt: Optional[str], rt: Optional[str]) -> bool:
    """Whether ``evaluate`` raises TypeError for these operand types.

    Mirrors Python's operator semantics, which the evaluator applies
    directly once both operands are non-NULL: str+str concatenates and
    str*int repeats, but every other str/number combination raises.
    """
    if lt is None or rt is None:
        return False
    if lt == "str" and rt == "str":
        return op != "+"
    if "str" in (lt, rt):
        other = rt if lt == "str" else lt
        if op == "*" and other in ("int", "bool"):
            return False
        return True
    return False


def _arith_type(op: str, lt: Optional[str], rt: Optional[str]) -> Optional[str]:
    if lt == "str" and rt == "str" and op == "+":
        return "str"
    if lt in NUMERIC_TYPES and rt in NUMERIC_TYPES:
        if op == "/":
            return "float"
        if "float" in (lt, rt):
            return "float"
        return "int"
    return None


# ----------------------------------------------------------------------
# expression checking (infer + report in one walk)
# ----------------------------------------------------------------------
def check_expr(
    expr: Expr,
    facts: dict[str, ColumnFact],
    where: str,
    report: AnalysisReport,
) -> ColumnFact:
    """Infer the fact for *expr*, reporting TC101/TC106 along the way."""
    if isinstance(expr, Col):
        return facts.get(expr.name, UNKNOWN)
    if isinstance(expr, Lit):
        return _lit_fact(expr.value)
    if isinstance(expr, Arith):
        left = check_expr(expr.left, facts, where, report)
        right = check_expr(expr.right, facts, where, report)
        if _arith_crashes(expr.op, left.type, right.type):
            report.add(
                "TC106",
                where,
                f"arithmetic {expr.op!r} over {left.type}/{right.type} operands "
                f"raises TypeError at run time: {expr!r}",
                hint="cast the column or fix the declared column types",
            )
        return ColumnFact(
            _arith_type(expr.op, left.type, right.type),
            left.nullable or right.nullable,
        )
    if isinstance(expr, Cmp):
        left = check_expr(expr.left, facts, where, report)
        right = check_expr(expr.right, facts, where, report)
        incompatible = (
            left.type is not None
            and right.type is not None
            and (left.type == "str") != (right.type == "str")
        )
        if incompatible:
            if expr.op in ORDERING_OPS:
                report.add(
                    "TC101",
                    where,
                    f"ordering {left.type} {expr.op} {right.type} is always "
                    f"UNKNOWN under 3VL: {expr!r}",
                    hint="mixed-type orderings degrade to NULL; compare "
                    "same-typed values",
                )
            else:
                report.add(
                    "TC101",
                    where,
                    f"equality between {left.type} and {right.type} is a "
                    f"constant ({'False' if expr.op == '=' else 'True'}): "
                    f"{expr!r}",
                )
        return ColumnFact(
            "bool", left.nullable or right.nullable or incompatible
        )
    if isinstance(expr, (And, Or)):
        nullable = False
        for item in expr.items:
            fact = check_expr(item, facts, where, report)
            nullable = nullable or fact.nullable
        return ColumnFact("bool", nullable)
    if isinstance(expr, Not):
        fact = check_expr(expr.item, facts, where, report)
        return ColumnFact("bool", fact.nullable)
    if isinstance(expr, InList):
        fact = check_expr(expr.item, facts, where, report)
        return ColumnFact(
            "bool", fact.nullable or any(v is None for v in expr.values)
        )
    if isinstance(expr, Call):
        arg_facts = [check_expr(a, facts, where, report) for a in expr.args]
        return _call_fact(expr.func, arg_facts)
    return UNKNOWN


def _call_fact(func: str, args: list[ColumnFact]) -> ColumnFact:
    any_nullable = any(a.nullable for a in args)
    if func in ("is_true", "is_distinct"):
        return ColumnFact("bool", False)
    if func == "coalesce":
        merged = args[0] if args else UNKNOWN
        for a in args[1:]:
            merged = _merge_fact(merged, a)
        return ColumnFact(merged.type, all(a.nullable for a in args))
    if func == "length":
        return ColumnFact("int", any_nullable)
    if func in ("lower", "upper", "concat"):
        return ColumnFact("str", any_nullable)
    if func in ("floor", "ceil", "sign", "mod"):
        return ColumnFact("int", any_nullable)
    if func in ("abs", "round", "greatest", "least"):
        merged = args[0] if args else UNKNOWN
        for a in args[1:]:
            merged = _merge_fact(merged, a)
        return ColumnFact(merged.type, any_nullable)
    return ColumnFact(None, any_nullable)


def check_boolean(
    expr: Expr,
    facts: dict[str, ColumnFact],
    where: str,
    report: AnalysisReport,
) -> None:
    """TC102: filter positions require a boolean (or unknown) type."""
    fact = check_expr(expr, facts, where, report)
    if fact.type is not None and fact.type != "bool":
        report.add(
            "TC102",
            where,
            f"filter predicate has type {fact.type!r}, not boolean: {expr!r}; "
            f"it is never True, so every row is dropped",
            hint="wrap the value in a comparison (e.g. <> 0)",
        )


# ----------------------------------------------------------------------
# the TC103 split-complement shape
# ----------------------------------------------------------------------
def _expr_key(expr: Expr):
    """Structural identity of an expression (for shape comparison)."""
    if isinstance(expr, Col):
        return ("col", expr.name)
    if isinstance(expr, Lit):
        return ("lit", repr(expr.value))
    if isinstance(expr, Arith):
        return ("arith", expr.op, _expr_key(expr.left), _expr_key(expr.right))
    if isinstance(expr, Cmp):
        return ("cmp", expr.op, _expr_key(expr.left), _expr_key(expr.right))
    if isinstance(expr, And):
        return ("and",) + tuple(_expr_key(i) for i in expr.items)
    if isinstance(expr, Or):
        return ("or",) + tuple(_expr_key(i) for i in expr.items)
    if isinstance(expr, Not):
        return ("not", _expr_key(expr.item))
    if isinstance(expr, InList):
        return ("in", _expr_key(expr.item), tuple(repr(v) for v in expr.values))
    if isinstance(expr, Call):
        return ("call", expr.func) + tuple(_expr_key(a) for a in expr.args)
    return ("?", repr(expr))


def _strip_states(expr: Expr) -> Expr:
    """Rename ``a__pre`` / ``a__post`` references back to bare ``a``."""
    from ..expr import rename_columns

    mapping = {}
    for c in columns_of(expr):
        for suffix in ("__pre", "__post"):
            if c.endswith(suffix):
                mapping[c] = c[: -len(suffix)]
    return rename_columns(expr, mapping) if mapping else expr


def _state_refs(expr: Expr) -> frozenset[str]:
    out = set()
    for c in columns_of(expr):
        if c.endswith("__pre"):
            out.add("pre")
        elif c.endswith("__post"):
            out.add("post")
    return frozenset(out)


def check_split_complement(
    predicate: Expr,
    facts: dict[str, ColumnFact],
    where: str,
    report: AnalysisReport,
) -> None:
    """TC103: the update-split shape ``φ_pre ∧ Not(φ_post)``.

    A split complement must be ``Not(is_true(φ))`` — the plain form maps
    UNKNOWN φ to UNKNOWN and the filter drops the row, losing the
    delete/insert half of the update split.  The gate requires the
    un-negated counterpart of φ (same shape, opposite state) as a
    sibling conjunct, which distinguishes a generated complement from a
    user-authored negation (whose drop-UNKNOWN semantics match the view
    definition and are correct).
    """
    conjs = conjuncts_of(predicate)
    if len(conjs) < 2:
        return
    stripped = [_expr_key(_strip_states(c)) for c in conjs]
    states = [_state_refs(c) for c in conjs]
    nullable_cols = {name for name, f in facts.items() if f.nullable}
    for i, conj in enumerate(conjs):
        if not isinstance(conj, Not):
            continue
        inner = conj.item
        if isinstance(inner, Call) and inner.func == "is_true":
            continue
        inner_key = _expr_key(_strip_states(inner))
        inner_states = _state_refs(inner)
        if not inner_states:
            continue
        counterpart = any(
            j != i
            and stripped[j] == inner_key
            and states[j]
            and states[j].isdisjoint(inner_states)
            for j in range(len(conjs))
        )
        if counterpart and may_be_null(inner, nullable_cols):
            report.add(
                "TC103",
                where,
                f"split complement uses plain Not over a nullable predicate: "
                f"{conj!r}; when the predicate is UNKNOWN the row is dropped "
                f"instead of kept",
                hint="wrap the negated predicate: Not(is_true(φ))",
            )


# ----------------------------------------------------------------------
# column facts for plan subviews
# ----------------------------------------------------------------------
def plan_column_facts(node: PlanNode) -> dict[str, ColumnFact]:
    """Infer per-column facts for the subview rooted at *node*."""
    report = AnalysisReport()  # discarded: fact inference only
    if isinstance(node, Scan):
        return {
            c: ColumnFact(node.schema.column_type(c), node.schema.is_nullable(c))
            for c in node.schema.columns
        }
    if isinstance(node, Select):
        return plan_column_facts(node.child)
    if isinstance(node, Project):
        child = plan_column_facts(node.child)
        return {
            name: check_expr(expr, child, "", report)
            for name, expr in node.items
        }
    if isinstance(node, Join):
        facts = dict(plan_column_facts(node.left))
        facts.update(plan_column_facts(node.right))
        if node.condition is not None:
            pairs, _ = equi_join_pairs(
                node.condition, node.left.columns, node.right.columns
            )
            # Surviving rows satisfied the equality (True, not UNKNOWN),
            # so both key columns are non-NULL in the output.
            for lcol, rcol in pairs:
                for c in (lcol, rcol):
                    facts[c] = ColumnFact(facts.get(c, UNKNOWN).type, False)
        return facts
    if isinstance(node, (AntiJoin, SemiJoin)):
        return plan_column_facts(node.left)
    if isinstance(node, UnionAll):
        left = plan_column_facts(node.left)
        right = plan_column_facts(node.right)
        facts = {
            c: _merge_fact(left.get(c, UNKNOWN), right.get(c, UNKNOWN))
            for c in node.left.columns
        }
        facts[node.branch_column] = ColumnFact("int", False)
        return facts
    if isinstance(node, GroupBy):
        child = plan_column_facts(node.child)
        facts = {k: child.get(k, UNKNOWN) for k in node.keys}
        for agg in node.aggs:
            facts[agg.name] = _agg_fact(agg, child, report)
        return facts
    return {c: UNKNOWN for c in node.columns}


def _agg_fact(
    agg: AggSpec, child: dict[str, ColumnFact], report: AnalysisReport
) -> ColumnFact:
    if agg.func == "count":
        return ColumnFact("int", False)
    arg = check_expr(agg.arg, child, "", report)
    if agg.func == "avg":
        return ColumnFact("float", arg.nullable)
    if agg.func == "sum":
        agg_type = arg.type if arg.type in ("int", "float") else None
        return ColumnFact(agg_type, arg.nullable)
    return ColumnFact(arg.type, arg.nullable)  # min / max


# ----------------------------------------------------------------------
# column facts for diffs and generated IR
# ----------------------------------------------------------------------
def facts_for_target(target: str, plan: PlanNode) -> dict[str, ColumnFact]:
    """Facts of the relation a diff targets: a plan node (``n<id>``) or a
    base table (matched through the plan's scans)."""
    m = _NODE_TARGET.match(target)
    if m:
        try:
            return plan_column_facts(node_by_id(plan, int(m.group(1))))
        except PlanError:
            return {}
    for node in plan.walk():
        if isinstance(node, Scan) and node.table == target:
            return plan_column_facts(node)
    return {}


def diff_column_facts(schema: DiffSchema, plan: PlanNode) -> dict[str, ColumnFact]:
    target = facts_for_target(schema.target, plan)
    facts: dict[str, ColumnFact] = {}
    for a in schema.id_attrs:
        facts[a] = target.get(a, UNKNOWN)
    for a in schema.pre_attrs:
        facts[pre_col(a)] = target.get(a, UNKNOWN)
    for a in schema.post_attrs:
        facts[post_col(a)] = target.get(a, UNKNOWN)
    return facts


def ir_column_facts(
    node: IrNode,
    plan: PlanNode,
    expansion_targets: dict[str, int],
) -> dict[str, ColumnFact]:
    """Facts for the rows an IR (sub)tree produces.

    *expansion_targets* maps RETURNING names to the node id of the APPLY
    target (collected while walking the script in order).
    """
    if isinstance(node, DiffSource):
        return diff_column_facts(node.schema, plan)
    if isinstance(node, SubviewSource):
        return plan_column_facts(node.node)
    if isinstance(node, AppliedSource):
        target_id = expansion_targets.get(node.apply_name)
        if target_id is None:
            return {c: UNKNOWN for c in node.columns}
        target = plan_column_facts(node_by_id(plan, target_id))
        facts = {k: target.get(k, UNKNOWN) for k in node.key}
        for a in node.attrs:
            facts[pre_col(a)] = target.get(a, UNKNOWN)
            facts[post_col(a)] = target.get(a, UNKNOWN)
        return facts
    if isinstance(node, Empty):
        return {c: UNKNOWN for c in node.columns}
    if isinstance(node, (Filter, Distinct)):
        return ir_column_facts(node.children()[0], plan, expansion_targets)
    if isinstance(node, Compute):
        child = ir_column_facts(node.child, plan, expansion_targets)
        report = AnalysisReport()
        return {
            name: check_expr(expr, child, "", report)
            for name, expr in node.items
        }
    if isinstance(node, UnionRows):
        parts = [
            ir_column_facts(p, plan, expansion_targets) for p in node.parts
        ]
        merged = dict(parts[0])
        for p in parts[1:]:
            for c in node.columns:
                merged[c] = _merge_fact(merged.get(c, UNKNOWN), p.get(c, UNKNOWN))
        return merged
    if isinstance(node, GroupAgg):
        child = ir_column_facts(node.child, plan, expansion_targets)
        report = AnalysisReport()
        facts = {k: child.get(k, UNKNOWN) for k in node.keys}
        for agg in node.aggs:
            facts[agg.name] = _agg_fact(agg, child, report)
        return facts
    if isinstance(node, ProbeJoin):
        facts = dict(ir_column_facts(node.left, plan, expansion_targets))
        sub = plan_column_facts(node.node)
        for out_name, sub_col in node.keep:
            facts[out_name] = sub.get(sub_col, UNKNOWN)
        return facts
    if isinstance(node, ProbeSemi):
        return ir_column_facts(node.left, plan, expansion_targets)
    return {c: UNKNOWN for c in getattr(node, "columns", ())}


def expansion_targets_of(script) -> dict[str, int]:
    """RETURNING name -> APPLY target node id, for the whole script."""
    out: dict[str, int] = {}
    for step in script.steps:
        if isinstance(step, ApplyDiffStep) and step.returning_name:
            out[step.returning_name] = step.target_node_id
    return out


# ----------------------------------------------------------------------
# the pass
# ----------------------------------------------------------------------
@register_pass("typecheck")
def typecheck_pass(ctx: AnalysisContext) -> None:
    report = ctx.report
    for node in ctx.plan.walk():
        where = f"plan n{node.node_id} [{node.label()}]"
        if isinstance(node, Select):
            check_boolean(
                node.predicate, plan_column_facts(node.child), where, report
            )
        elif isinstance(node, (Join, AntiJoin, SemiJoin)):
            if getattr(node, "condition", None) is None:
                continue
            facts = dict(plan_column_facts(node.left))
            facts.update(plan_column_facts(node.right))
            check_boolean(node.condition, facts, where, report)
        elif isinstance(node, Project):
            child = plan_column_facts(node.child)
            for name, expr in node.items:
                check_expr(expr, child, f"{where} item {name!r}", report)
        elif isinstance(node, GroupBy):
            child = plan_column_facts(node.child)
            for agg in node.aggs:
                if agg.arg is None:
                    continue
                fact = check_expr(agg.arg, child, f"{where} agg {agg.name!r}", report)
                if (
                    agg.func in ("sum", "avg")
                    and fact.type is not None
                    and fact.type not in NUMERIC_TYPES
                ):
                    report.add(
                        "TC104",
                        f"{where} agg {agg.name!r}",
                        f"{agg.func} over a {fact.type} argument: {agg.arg!r}",
                        hint="sum/avg need numeric input",
                    )
    if ctx.script is None:
        return
    expansions = expansion_targets_of(ctx.script)
    for i, step in enumerate(ctx.script.steps, start=1):
        if not isinstance(step, ComputeDiffStep):
            continue
        for ir_node in step.ir.walk():
            where = f"step {i} ({step.name})"
            if isinstance(ir_node, Filter):
                facts = ir_column_facts(ir_node.child, ctx.plan, expansions)
                check_boolean(ir_node.predicate, facts, where, report)
                check_split_complement(ir_node.predicate, facts, where, report)
            elif isinstance(ir_node, Compute):
                facts = ir_column_facts(ir_node.child, ctx.plan, expansions)
                for name, expr in ir_node.items:
                    check_expr(expr, facts, f"{where} item {name!r}", report)
            elif isinstance(ir_node, ProbeJoin) and ir_node.residual is not None:
                facts = ir_column_facts(ir_node, ctx.plan, expansions)
                check_boolean(ir_node.residual, facts, where, report)
            elif isinstance(ir_node, ProbeSemi) and ir_node.residual is not None:
                facts = dict(
                    ir_column_facts(ir_node.left, ctx.plan, expansions)
                )
                sub = plan_column_facts(ir_node.node)
                for c, fact in sub.items():
                    facts[SUB_PREFIX + c] = fact
                check_boolean(ir_node.residual, facts, where, report)
