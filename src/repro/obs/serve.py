"""Live metrics endpoint: Prometheus text + JSON snapshots over HTTP.

``python -m repro.obs.serve`` starts a :class:`~repro.obs.live.DemoLoop`
(a sharded BSMA maintenance loop) and a stdlib ``ThreadingHTTPServer``
exposing:

* ``/metrics``   — Prometheus text exposition (format 0.0.4).  Counters
  and gauges map directly; streaming histograms become summaries
  (``_count``/``_sum``); log-bucketed histograms become native
  Prometheus histograms with cumulative ``le`` buckets taken from the
  exact frexp bucket bounds.  Per-view and per-phase metric families
  are folded into labels (``repro_view_round_seconds{view="Q7"}``)
  instead of per-view metric names.
* ``/snapshot``  — a JSON document with the full registry, freshness
  report, drift monitor state and per-view last-round reports; this is
  the wire format ``repro top --url`` consumes.
* ``/freshness`` — just the freshness report (the CI smoke artifact).
* ``/healthz``   — liveness (also reports rounds completed so far);
  returns 503 with ``{"ok": false, "error": ...}`` once the demo loop's
  background thread has died.

Everything here is stdlib-only; :func:`validate_exposition` is a small
self-check used by tests and the CI smoke job so we never publish an
exposition Prometheus would reject.
"""

from __future__ import annotations

import argparse
import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from . import metrics
from .hist import LogHistogram
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Metric-name prefixes whose trailing component is really a label.
#: ``view.round_seconds.Q*1`` would otherwise mint an illegal (and
#: cardinality-exploding) metric name per view.
_LABELED_PREFIXES = (
    ("view.round_seconds.", "repro_view_round_seconds", "view"),
    ("drift.worst_ratio.", "repro_drift_worst_ratio", "view"),
    ("script.phase_seconds.", "repro_script_phase_seconds", "phase"),
)


def _sanitize(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _labels(pairs: dict[str, str]) -> str:
    if not pairs:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in sorted(pairs.items())
    )
    return "{" + body + "}"


def _fmt(value: Any) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _family(name: str) -> tuple[str, dict[str, str]]:
    """Map a registry metric name to (prometheus family, labels)."""
    for prefix, family, label in _LABELED_PREFIXES:
        if name.startswith(prefix) and len(name) > len(prefix):
            return family, {label: name[len(prefix):]}
    return _sanitize(name), {}


def _hist_lines(family: str, labels: dict[str, str], hist: LogHistogram) -> list[str]:
    """Cumulative-bucket lines for one labeled LogHistogram."""
    from .hist import bucket_bounds

    lines = []
    cumulative = hist.zero_count
    if hist.zero_count:
        lines.append(f"{family}_bucket{_labels({**labels, 'le': '0'})} {cumulative}")
    for idx in sorted(hist.buckets):
        cumulative += hist.buckets[idx]
        upper = bucket_bounds(idx)[1]
        lines.append(
            f"{family}_bucket{_labels({**labels, 'le': repr(upper)})} {cumulative}"
        )
    lines.append(f"{family}_bucket{_labels({**labels, 'le': '+Inf'})} {hist.count}")
    lines.append(f"{family}_sum{_labels(labels)} {_fmt(hist.total)}")
    lines.append(f"{family}_count{_labels(labels)} {hist.count}")
    return lines


def render_prometheus(
    registry: Optional[MetricsRegistry] = None, engine=None
) -> str:
    """The Prometheus text exposition for a registry (+ engine extras).

    With an *engine* attached, per-view freshness (pending entries,
    seconds-behind, observed-lag histograms) and drift EWMAs are emitted
    as labeled families on top of the raw registry contents.
    """
    registry = registry if registry is not None else metrics.registry()
    # family -> (prom type, [(labels, metric-ish)]); insertion order kept
    # so each family's # TYPE header is emitted exactly once.
    families: dict[str, tuple[str, list[str]]] = {}

    def add(family: str, prom_type: str, lines: list[str]) -> None:
        if family not in families:
            families[family] = (prom_type, [])
        families[family][1].extend(lines)

    for name in registry.names():
        metric = registry._metrics[name]
        family, labels = _family(name)
        if isinstance(metric, Counter):
            add(family, "counter", [f"{family}{_labels(labels)} {_fmt(metric.value)}"])
        elif isinstance(metric, Gauge):
            if metric.value is None:
                continue
            add(family, "gauge", [f"{family}{_labels(labels)} {_fmt(metric.value)}"])
        elif isinstance(metric, Histogram):
            add(
                family,
                "summary",
                [
                    f"{family}_sum{_labels(labels)} {_fmt(metric.total)}",
                    f"{family}_count{_labels(labels)} {metric.count}",
                ],
            )
        else:  # ConcurrentLogHistogram
            add(family, "histogram", _hist_lines(family, labels, metric.merged()))

    if engine is not None:
        freshness = getattr(engine, "freshness", None)
        drift = getattr(engine, "drift", None)
        if freshness is not None:
            now = freshness.clock()
            add(
                "repro_modlog_position",
                "gauge",
                [f"repro_modlog_position {freshness.log_position}"],
            )
            for view in freshness.views():
                staleness = freshness.staleness(view, now=now)
                labels = {"view": view}
                add(
                    "repro_view_pending_entries",
                    "gauge",
                    [f"repro_view_pending_entries{_labels(labels)} {staleness.pending}"],
                )
                add(
                    "repro_view_seconds_behind",
                    "gauge",
                    [
                        f"repro_view_seconds_behind{_labels(labels)} "
                        f"{_fmt(staleness.seconds_behind)}"
                    ],
                )
                add(
                    "repro_view_rounds",
                    "counter",
                    [f"repro_view_rounds{_labels(labels)} {staleness.rounds}"],
                )
                lag = freshness.lag_histogram(view)
                if lag is not None and lag.count:
                    add(
                        "repro_view_lag_seconds",
                        "histogram",
                        _hist_lines("repro_view_lag_seconds", labels, lag),
                    )
        if drift is not None:
            for state in drift.states():
                if state.ewma is None:
                    continue
                labels = {"view": state.view, "metric": state.metric}
                add(
                    "repro_drift_ewma",
                    "gauge",
                    [f"repro_drift_ewma{_labels(labels)} {_fmt(state.ewma)}"],
                )
            add(
                "repro_drift_alerts",
                "gauge",
                [f"repro_drift_alerts {len(drift.alerts())}"],
            )

    out: list[str] = []
    for family, (prom_type, lines) in families.items():
        out.append(f"# TYPE {family} {prom_type}")
        out.extend(lines)
    return "\n".join(out) + "\n" if out else "\n"


# ----------------------------------------------------------------------
SNAPSHOT_SCHEMA = "repro.obs.snapshot"
SNAPSHOT_VERSION = 1


def build_snapshot(
    engine=None, registry: Optional[MetricsRegistry] = None, rounds: Optional[int] = None
) -> dict[str, Any]:
    """The JSON document behind ``/snapshot`` (and ``repro top --url``)."""
    registry = registry if registry is not None else metrics.registry()
    snapshot: dict[str, Any] = {
        "schema": SNAPSHOT_SCHEMA,
        "version": SNAPSHOT_VERSION,
        "metrics": registry.as_dict(),
    }
    if rounds is not None:
        snapshot["rounds"] = rounds
    if engine is not None:
        freshness = getattr(engine, "freshness", None)
        drift = getattr(engine, "drift", None)
        if freshness is not None:
            snapshot["freshness"] = freshness.report()
        if drift is not None:
            snapshot["drift"] = drift.snapshot()
        views: dict[str, Any] = {}
        for name, report in getattr(engine, "last_reports", {}).items():
            entry: dict[str, Any] = {"total_cost": report.total_cost}
            if hasattr(report, "parallel"):
                entry["parallel"] = report.parallel
                entry["critical_path"] = report.critical_path()
                if report.broadcast_reason:
                    entry["broadcast_reason"] = report.broadcast_reason
            views[name] = entry
        snapshot["views"] = views
    return snapshot


# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"  # metric name
    r"(\{[^{}]*\})?"  # optional labels
    r" (NaN|[+-]Inf|-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$"  # value
)
_PROM_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
_SUFFIXES = ("_bucket", "_sum", "_count")


def validate_exposition(text: str) -> list[str]:
    """Self-check a Prometheus text exposition; returns error strings.

    Checks the essentials a scrape would reject: sample-line syntax,
    every sample belonging to a ``# TYPE``-declared family, no duplicate
    TYPE declarations, and (for histograms) cumulative bucket counts
    that are monotone and agree with ``_count``.
    """
    errors: list[str] = []
    declared: dict[str, str] = {}
    bucket_state: dict[str, tuple[float, int]] = {}  # series -> (last le, last cum)
    counts: dict[str, int] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in _PROM_TYPES:
                errors.append(f"line {lineno}: malformed TYPE declaration: {line!r}")
                continue
            if parts[2] in declared:
                errors.append(f"line {lineno}: duplicate TYPE for {parts[2]}")
            declared[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {lineno}: malformed sample line: {line!r}")
            continue
        name, labels = match.group(1), match.group(2) or ""
        family = name
        for suffix in _SUFFIXES:
            if name.endswith(suffix) and name[: -len(suffix)] in declared:
                family = name[: -len(suffix)]
                break
        if family not in declared:
            errors.append(f"line {lineno}: sample {name!r} has no TYPE declaration")
            continue
        if declared[family] == "histogram":
            if name.endswith("_bucket"):
                le_match = re.search(r'le="([^"]*)"', labels)
                if le_match is None:
                    errors.append(f"line {lineno}: histogram bucket missing le label")
                    continue
                le_raw = le_match.group(1)
                le = float("inf") if le_raw == "+Inf" else float(le_raw)
                stripped = re.sub(r',?le="[^"]*"', "", labels)
                if stripped == "{}":
                    stripped = ""
                series = family + stripped
                cum = int(float(match.group(3)))
                prev = bucket_state.get(series)
                if prev is not None:
                    if le <= prev[0]:
                        errors.append(
                            f"line {lineno}: bucket le={le_raw} not increasing"
                        )
                    if cum < prev[1]:
                        errors.append(
                            f"line {lineno}: bucket count decreased ({cum} < {prev[1]})"
                        )
                bucket_state[series] = (le, cum)
                if le == float("inf"):
                    counts.setdefault(series, cum)
            elif name.endswith("_count"):
                series = family + labels
                inf_cum = counts.get(series)
                if inf_cum is not None and inf_cum != int(float(match.group(3))):
                    errors.append(
                        f"line {lineno}: _count disagrees with +Inf bucket for {series}"
                    )
    return errors


# ----------------------------------------------------------------------
class MetricsHandler(BaseHTTPRequestHandler):
    """Routes /metrics, /snapshot, /freshness, /healthz."""

    server_version = "repro-obs/1"
    # installed by serve(); class attributes so the stdlib handler
    # factory (which instantiates per request) can reach them.
    engine = None
    registry: Optional[MetricsRegistry] = None
    loop = None

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = render_prometheus(self.registry, engine=self.engine)
            self._reply(body, "text/plain; version=0.0.4; charset=utf-8")
        elif path == "/snapshot":
            rounds = self.loop.rounds_run if self.loop is not None else None
            body = json.dumps(
                build_snapshot(self.engine, self.registry, rounds=rounds), indent=2
            )
            self._reply(body, "application/json")
        elif path == "/freshness":
            freshness = getattr(self.engine, "freshness", None)
            if freshness is None:
                self._reply(json.dumps({"error": "no freshness tracker"}),
                            "application/json", status=404)
            else:
                self._reply(json.dumps(freshness.report(), indent=2),
                            "application/json")
        elif path == "/healthz":
            rounds = self.loop.rounds_run if self.loop is not None else None
            healthy = self.loop.healthy if self.loop is not None else True
            doc: dict[str, Any] = {"ok": healthy, "rounds": rounds}
            if not healthy:
                doc["error"] = self.loop.last_error or "loop thread died"
            self._reply(json.dumps(doc), "application/json",
                        status=200 if healthy else 503)
        else:
            self._reply("not found\n", "text/plain", status=404)

    def _reply(self, body: str, content_type: str, status: int = 200) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, fmt: str, *args) -> None:  # pragma: no cover
        pass  # keep scrapes out of stderr


def serve(
    engine=None,
    registry: Optional[MetricsRegistry] = None,
    host: str = "127.0.0.1",
    port: int = 9301,
    loop=None,
) -> ThreadingHTTPServer:
    """Build a server bound to (host, port); caller runs serve_forever."""
    handler = type(
        "BoundMetricsHandler",
        (MetricsHandler,),
        {"engine": engine, "registry": registry, "loop": loop},
    )
    return ThreadingHTTPServer((host, port), handler)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.serve",
        description="Serve live idIVM telemetry for a demo BSMA maintenance loop.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9301)
    parser.add_argument("--shards", type=int, default=2,
                        help="engine shards for the demo loop (default 2)")
    parser.add_argument("--backend", choices=("thread", "process"),
                        default="thread",
                        help="shard execution backend (default thread)")
    parser.add_argument("--users", type=int, default=120,
                        help="BSMA users in the demo database")
    parser.add_argument("--updates", type=int, default=24,
                        help="logged updates per maintenance round")
    parser.add_argument("--interval", type=float, default=0.5,
                        help="seconds between maintenance rounds")
    parser.add_argument("--views", nargs="*", default=None,
                        help="BSMA views to maintain (default Q7 Q10 Q15 Q18)")
    args = parser.parse_args(argv)

    from .live import DemoLoop

    loop = DemoLoop(
        shards=args.shards,
        users=args.users,
        updates=args.updates,
        interval=args.interval,
        views=args.views,
        backend=args.backend,
    )
    loop.run_round()  # have data before the first scrape
    loop.start()
    server = serve(
        engine=loop.engine, host=args.host, port=args.port, loop=loop
    )
    print(
        f"serving on http://{args.host}:{server.server_address[1]} "
        f"(endpoints: /metrics /snapshot /freshness /healthz; "
        f"{args.shards} shard(s), views {' '.join(loop.view_names)})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        loop.stop()
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
