"""Hierarchical timed spans with access-count deltas.

A :class:`Span` measures one unit of work: a maintenance round, a
∆-script phase, a single statement, or one plan/IR operator.  Spans nest
through a :mod:`contextvars` *current span*, so the recorder reconstructs
the full tree even across helper-function boundaries, and each span can
snapshot the active :class:`~repro.storage.counters.CounterSet` on entry
and exit to attribute an exact :class:`AccessCounts` delta to itself
(cumulative: a parent's delta includes its children's).

The default state is a **null recorder**: :func:`current_recorder`
returns ``None`` and every instrumentation site must fall through after
a single global read.  Install a :class:`SpanRecorder` with
:func:`recording` to capture a trace::

    with recording() as rec:
        engine.maintain()
    write_trace(rec, "trace.jsonl")
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Iterator, Optional

from ..storage import AccessCounts, CounterSet


class Span:
    """One timed, optionally access-counted unit of work."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "kind",
        "attrs",
        "start",
        "end",
        "counts",
        "children",
        "_counters",
        "_counts_at_entry",
        "_phase_of",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        kind: str,
        attrs: dict[str, Any],
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.attrs = attrs
        self.start: float = 0.0
        self.end: float = 0.0
        #: Access-count delta over the span's extent (cumulative), or
        #: ``None`` when the span was opened without a counter set.
        self.counts: Optional[AccessCounts] = None
        self.children: list[Span] = []
        self._counters: Optional[CounterSet] = None
        self._counts_at_entry: Optional[AccessCounts] = None
        self._phase_of: Optional[str] = None

    @property
    def duration(self) -> float:
        """Wall seconds between entry and exit."""
        return self.end - self.start

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes; usable during or after the span."""
        self.attrs.update(attrs)

    def self_counts(self) -> Optional[AccessCounts]:
        """This span's delta minus its counted children's (exclusive cost)."""
        if self.counts is None:
            return None
        own = self.counts.copy()
        for child in self.children:
            if child.counts is not None:
                own = own - child.counts
        return own

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> dict[str, Any]:
        """Flat JSON-serializable record (children referenced by id)."""
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
            "counts": self.counts.as_dict() if self.counts is not None else None,
        }

    def tree_dict(self) -> dict[str, Any]:
        """Nested JSON-serializable tree rooted at this span."""
        record = self.as_dict()
        record["children"] = [child.tree_dict() for child in self.children]
        return record

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Span({self.name!r}, kind={self.kind!r}, id={self.span_id})"


#: Innermost open span of the current logical context (None at top level).
_current_span: ContextVar[Optional[Span]] = ContextVar(
    "repro_obs_current_span", default=None
)

#: The process-wide active recorder; ``None`` disables all tracing.
_recorder: Optional["SpanRecorder"] = None


class SpanRecorder:
    """Collects a forest of spans in creation order."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.roots: list[Span] = []
        self.epoch = time.perf_counter()
        self._next_id = 0
        # Shard workers open spans concurrently; id allocation and the
        # span/children lists need a short critical section.
        self._lock = threading.Lock()

    @contextmanager
    def span(
        self,
        name: str,
        kind: str = "span",
        counters: Optional[CounterSet] = None,
        phase_of: Optional[str] = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Open a child of the current span (a root if none is open).

        With *counters*, the span's ``counts`` is the delta of the grand
        total over its extent (cumulative).  With *phase_of* as well,
        ``counts`` is instead the delta of that phase's *bucket*: the
        accesses the counter set attributed to the phase while the span
        was open.  Bucket deltas are disjoint across phases even when
        phase scopes nest or re-enter, which is what makes per-phase
        span sums reconcile exactly with the engine's phase totals.
        """
        parent = _current_span.get()
        with self._lock:
            self._next_id += 1
            sp = Span(
                self._next_id,
                parent.span_id if parent is not None else None,
                name,
                kind,
                attrs,
            )
            if parent is not None:
                parent.children.append(sp)
            else:
                self.roots.append(sp)
            self.spans.append(sp)
        if counters is not None:
            sp._counters = counters
            sp._phase_of = phase_of
            if phase_of is not None:
                bucket = counters.phases.get(phase_of)
                sp._counts_at_entry = (
                    bucket.copy() if bucket is not None else AccessCounts()
                )
            else:
                sp._counts_at_entry = counters.total.copy()
        token = _current_span.set(sp)
        sp.start = time.perf_counter() - self.epoch
        try:
            yield sp
        finally:
            sp.end = time.perf_counter() - self.epoch
            if sp._counters is not None:
                if sp._phase_of is not None:
                    bucket = sp._counters.phases.get(sp._phase_of)
                    current = bucket if bucket is not None else AccessCounts()
                    sp.counts = current - sp._counts_at_entry
                else:
                    sp.counts = sp._counters.total - sp._counts_at_entry
                sp._counters = None
                sp._counts_at_entry = None
                sp._phase_of = None
            _current_span.reset(token)

    def find(self, *, kind: Optional[str] = None, name: Optional[str] = None) -> list[Span]:
        """All recorded spans matching the given kind and/or name."""
        out = []
        for sp in self.spans:
            if kind is not None and sp.kind != kind:
                continue
            if name is not None and sp.name != name:
                continue
            out.append(sp)
        return out


def enabled() -> bool:
    """True when a recorder is installed (the hot-path fast check)."""
    return _recorder is not None


def current_recorder() -> Optional[SpanRecorder]:
    """The active recorder, or ``None`` when tracing is off."""
    return _recorder


def current_span() -> Optional[Span]:
    """The innermost open span of this context, if any."""
    return _current_span.get()


@contextmanager
def recording(recorder: Optional[SpanRecorder] = None) -> Iterator[SpanRecorder]:
    """Install *recorder* (a fresh one by default) for the block.

    Nested recordings stack: the previous recorder is restored on exit.
    """
    global _recorder
    rec = recorder if recorder is not None else SpanRecorder()
    previous = _recorder
    _recorder = rec
    try:
        yield rec
    finally:
        _recorder = previous


class _NullSpan:
    """Shared do-nothing span yielded when tracing is disabled."""

    __slots__ = ()
    counts = None
    children: tuple = ()

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


@contextmanager
def span(
    name: str,
    kind: str = "span",
    counters: Optional[CounterSet] = None,
    phase_of: Optional[str] = None,
    **attrs: Any,
) -> Iterator[Any]:
    """Module-level span helper, safe to call with tracing disabled."""
    rec = _recorder
    if rec is None:
        yield _NULL_SPAN
        return
    with rec.span(
        name, kind=kind, counters=counters, phase_of=phase_of, **attrs
    ) as sp:
        yield sp
