"""One-shot observability smoke: boot the endpoint, scrape, validate.

``python -m repro.obs.smoke`` is what ``make smoke-obs`` and the CI
``obs-smoke`` job run.  It starts a real :class:`~repro.obs.live.DemoLoop`
plus ``ThreadingHTTPServer`` on an ephemeral port, fetches every endpoint
over actual HTTP, validates the Prometheus exposition with
:func:`repro.obs.serve.validate_exposition`, sanity-checks the snapshot
document, and writes the freshness report to ``--out`` (the CI
artifact).  Non-zero exit on any failure.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import urllib.request
from typing import Optional

from .serve import serve, validate_exposition

#: Families any live scrape of the demo loop must expose.
_REQUIRED_FAMILIES = (
    "repro_engine_round_seconds",
    "repro_view_round_seconds",
    "repro_view_pending_entries",
    "repro_view_lag_seconds",
    "repro_modlog_position",
    "repro_drift_ewma",
)


def _get(base: str, path: str) -> str:
    with urllib.request.urlopen(base + path, timeout=30) as response:
        if response.status != 200:
            raise RuntimeError(f"GET {path} -> HTTP {response.status}")
        return response.read().decode("utf-8")


def run_smoke(
    rounds: int = 3,
    shards: int = 2,
    users: int = 60,
    updates: int = 12,
    out: Optional[str] = None,
) -> list[str]:
    """Run the whole smoke; returns a list of failures (empty = pass)."""
    from .live import DemoLoop

    failures: list[str] = []
    loop = DemoLoop(shards=shards, users=users, updates=updates)
    for _ in range(rounds):
        loop.run_round()

    server = serve(engine=loop.engine, loop=loop, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        text = _get(base, "/metrics")
        errors = validate_exposition(text)
        failures.extend(f"/metrics: {e}" for e in errors)
        for family in _REQUIRED_FAMILIES:
            if family not in text:
                failures.append(f"/metrics: family {family} missing")
        print(f"/metrics   {len(text.splitlines())} lines, "
              f"{len(errors)} exposition error(s)")

        snapshot = json.loads(_get(base, "/snapshot"))
        if snapshot.get("schema") != "repro.obs.snapshot":
            failures.append(f"/snapshot: bad schema {snapshot.get('schema')!r}")
        if set(snapshot.get("views", {})) != set(loop.view_names):
            failures.append("/snapshot: views do not match the demo loop")
        print(f"/snapshot  rounds={snapshot.get('rounds')} "
              f"views={sorted(snapshot.get('views', {}))}")

        freshness = json.loads(_get(base, "/freshness"))
        stale = [
            name for name, view in freshness.get("views", {}).items()
            if view.get("pending", 1) != 0
        ]
        if stale:
            failures.append(f"/freshness: views still pending after "
                            f"maintenance: {stale}")
        if out:
            with open(out, "w", encoding="utf-8") as handle:
                json.dump(freshness, handle, indent=2)
            print(f"/freshness written to {out}")

        health = json.loads(_get(base, "/healthz"))
        if health.get("ok") is not True:
            failures.append(f"/healthz: {health}")
    finally:
        server.shutdown()
        server.server_close()
    return failures


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.smoke",
        description="Boot the live telemetry endpoint, scrape and validate it.",
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--users", type=int, default=60)
    parser.add_argument("--updates", type=int, default=12)
    parser.add_argument("--out", default=None,
                        help="write the freshness report JSON here")
    args = parser.parse_args(argv)

    failures = run_smoke(
        rounds=args.rounds,
        shards=args.shards,
        users=args.users,
        updates=args.updates,
        out=args.out,
    )
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print("obs smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
