"""Process-wide metrics registry: named counters, gauges, histograms.

Unlike spans (opt-in, per-trace), metrics are always on: they are cheap
enough to record unconditionally at statement/round granularity — a dict
lookup plus an integer add — and give the engine a running picture of
its workload (i-diff sizes per statement, view-reuse cache hit rates,
modification-log fold ratios).

The catalog of metrics the engine emits is documented in
``docs/OBSERVABILITY.md``.  All metric objects are created lazily on
first use, so the registry also serves extensions: any component may
``metrics.counter("my.metric").inc()`` without registration ceremony.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Union

from .hist import ConcurrentLogHistogram

Number = Union[int, float]


class _CounterCell:
    """Per-thread accumulator for :class:`Counter`."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0


class Counter:
    """A monotonically increasing count.

    Increments land in a per-thread cell (registered once under a lock,
    like :class:`~repro.obs.hist.ConcurrentLogHistogram` shards), so
    shard workers incrementing the same counter never lose an update to
    the classic read-modify-write race.  Reads fold the cells.
    """

    __slots__ = ("name", "_local", "_cells", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._local = threading.local()
        self._cells: list[_CounterCell] = []
        self._lock = threading.Lock()

    def _cell(self) -> _CounterCell:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = _CounterCell()
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    def inc(self, n: Number = 1) -> None:
        self._cell().value += n

    @property
    def value(self) -> Number:
        with self._lock:
            cells = list(self._cells)
        return sum(cell.value for cell in cells)

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def as_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Gauge({self.name!r}, {self.value})"


class _HistogramCell:
    """Per-thread accumulator for :class:`Histogram`."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean).

    Observations land in per-thread cells that fold losslessly on read,
    mirroring :class:`Counter`: count and sum are exact no matter how
    many shard workers observe concurrently.
    """

    __slots__ = ("name", "_local", "_cells", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._local = threading.local()
        self._cells: list[_HistogramCell] = []
        self._lock = threading.Lock()

    def _cell(self) -> _HistogramCell:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = _HistogramCell()
            with self._lock:
                self._cells.append(cell)
            self._local.cell = cell
        return cell

    def observe(self, value: Number) -> None:
        cell = self._cell()
        cell.count += 1
        cell.total += value
        if cell.min is None or value < cell.min:
            cell.min = value
        if cell.max is None or value > cell.max:
            cell.max = value

    def _folded(self) -> _HistogramCell:
        with self._lock:
            cells = list(self._cells)
        out = _HistogramCell()
        for cell in cells:
            out.count += cell.count
            out.total += cell.total
            if cell.min is not None and (out.min is None or cell.min < out.min):
                out.min = cell.min
            if cell.max is not None and (out.max is None or cell.max > out.max):
                out.max = cell.max
        return out

    @property
    def count(self) -> int:
        return self._folded().count

    @property
    def total(self) -> Number:
        return self._folded().total

    @property
    def min(self) -> Optional[Number]:
        return self._folded().min

    @property
    def max(self) -> Optional[Number]:
        return self._folded().max

    @property
    def mean(self) -> Optional[float]:
        folded = self._folded()
        return folded.total / folded.count if folded.count else None

    def as_dict(self) -> dict[str, Any]:
        folded = self._folded()
        return {
            "type": "histogram",
            "count": folded.count,
            "sum": folded.total,
            "min": folded.min,
            "max": folded.max,
            "mean": (folded.total / folded.count) if folded.count else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Histogram({self.name!r}, n={self.count}, sum={self.total})"


Metric = Union[Counter, Gauge, Histogram, ConcurrentLogHistogram]


class MetricsRegistry:
    """Namespace of metrics; one global default instance per process.

    Metric *creation* is locked so shard workers racing on first use of
    a name cannot strand each other's metric object (after which the
    loser's observations would silently vanish).  Increments and
    observations are lossless too: :class:`Counter` and
    :class:`Histogram` accumulate into per-thread cells that fold on
    read, so concurrent shard workers never drop an update.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._create_lock = threading.Lock()

    def _get_or_create(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._create_lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def loghist(self, name: str, unit: str = "") -> ConcurrentLogHistogram:
        """A log-bucketed, thread-sharded histogram (p50/p95/p99/max).

        The ``unit`` is sticky: the first caller's unit wins (an empty
        unit never overwrites a set one).
        """
        metric = self._get_or_create(name, ConcurrentLogHistogram, unit=unit)
        if unit and not metric.unit:
            metric.unit = unit
        return metric

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, dict[str, Any]]:
        """JSON-serializable snapshot of every registered metric."""
        return {
            name: metric.as_dict()
            for name, metric in sorted(self._metrics.items())
        }

    def reset(self) -> None:
        """Drop every metric (tests and fresh benchmark rounds)."""
        self._metrics.clear()


_default = MetricsRegistry()
_current = _default
_swap_lock = threading.Lock()


def registry() -> MetricsRegistry:
    """The currently active registry (the process default unless a
    :func:`scoped` block has swapped one in)."""
    return _current


@contextmanager
def scoped(reg: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Route module-level metric helpers into a private registry.

    The process-default registry is convenient for long-lived tools
    (benchmarks, ``repro.obs.serve``) but makes metric assertions
    order-dependent in a test suite: whichever test runs first leaves
    its counts behind for the next.  Wrapping each test in ``scoped()``
    gives it a fresh registry and restores the previous one on exit —
    including on exceptions, and correctly under nesting.

    The swap itself is guarded by a module lock, and every module-level
    helper snapshots the registry reference exactly once per operation,
    so a concurrent observer (a ``DemoLoop`` daemon thread, a ``serve``
    handler thread) always lands its whole operation in *one* registry
    — the old one or the new one, never a half-swapped mix.  Concurrent
    *scopes* remain unsupported: the swap is process-global, matching
    the registry itself.
    """
    global _current
    if reg is None:
        reg = MetricsRegistry()
    with _swap_lock:
        previous = _current
        _current = reg
    try:
        yield reg
    finally:
        with _swap_lock:
            _current = previous


def counter(name: str) -> Counter:
    reg = _current  # single snapshot: atomic with respect to scoped()
    return reg.counter(name)


def gauge(name: str) -> Gauge:
    reg = _current
    return reg.gauge(name)


def histogram(name: str) -> Histogram:
    reg = _current
    return reg.histogram(name)


def loghist(name: str, unit: str = "") -> ConcurrentLogHistogram:
    reg = _current
    return reg.loghist(name, unit)
