"""Process-wide metrics registry: named counters, gauges, histograms.

Unlike spans (opt-in, per-trace), metrics are always on: they are cheap
enough to record unconditionally at statement/round granularity — a dict
lookup plus an integer add — and give the engine a running picture of
its workload (i-diff sizes per statement, view-reuse cache hit rates,
modification-log fold ratios).

The catalog of metrics the engine emits is documented in
``docs/OBSERVABILITY.md``.  All metric objects are created lazily on
first use, so the registry also serves extensions: any component may
``metrics.counter("my.metric").inc()`` without registration ceremony.
"""

from __future__ import annotations

from typing import Any, Optional, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        self.value += n

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def as_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Histogram({self.name!r}, n={self.count}, sum={self.total})"


class MetricsRegistry:
    """Namespace of metrics; one global default instance per process."""

    def __init__(self) -> None:
        self._metrics: dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get_or_create(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, dict[str, Any]]:
        """JSON-serializable snapshot of every registered metric."""
        return {
            name: metric.as_dict()
            for name, metric in sorted(self._metrics.items())
        }

    def reset(self) -> None:
        """Drop every metric (tests and fresh benchmark rounds)."""
        self._metrics.clear()


_default = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default


def counter(name: str) -> Counter:
    return _default.counter(name)


def gauge(name: str) -> Gauge:
    return _default.gauge(name)


def histogram(name: str) -> Histogram:
    return _default.histogram(name)
