"""Process-wide metrics registry: named counters, gauges, histograms.

Unlike spans (opt-in, per-trace), metrics are always on: they are cheap
enough to record unconditionally at statement/round granularity — a dict
lookup plus an integer add — and give the engine a running picture of
its workload (i-diff sizes per statement, view-reuse cache hit rates,
modification-log fold ratios).

The catalog of metrics the engine emits is documented in
``docs/OBSERVABILITY.md``.  All metric objects are created lazily on
first use, so the registry also serves extensions: any component may
``metrics.counter("my.metric").inc()`` without registration ceremony.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Union

from .hist import ConcurrentLogHistogram

Number = Union[int, float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, n: Number = 1) -> None:
        self.value += n

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def as_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Gauge({self.name!r}, {self.value})"


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Histogram({self.name!r}, n={self.count}, sum={self.total})"


Metric = Union[Counter, Gauge, Histogram, ConcurrentLogHistogram]


class MetricsRegistry:
    """Namespace of metrics; one global default instance per process.

    Metric *creation* is locked so shard workers racing on first use of
    a name cannot strand each other's metric object (after which the
    loser's observations would silently vanish).  Increments themselves
    are not locked — a raced monitoring increment is accepted, as
    documented in :mod:`repro.core.sharded`.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._create_lock = threading.Lock()

    def _get_or_create(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            with self._create_lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, **kwargs)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def loghist(self, name: str, unit: str = "") -> ConcurrentLogHistogram:
        """A log-bucketed, thread-sharded histogram (p50/p95/p99/max).

        The ``unit`` is sticky: the first caller's unit wins (an empty
        unit never overwrites a set one).
        """
        metric = self._get_or_create(name, ConcurrentLogHistogram, unit=unit)
        if unit and not metric.unit:
            metric.unit = unit
        return metric

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, dict[str, Any]]:
        """JSON-serializable snapshot of every registered metric."""
        return {
            name: metric.as_dict()
            for name, metric in sorted(self._metrics.items())
        }

    def reset(self) -> None:
        """Drop every metric (tests and fresh benchmark rounds)."""
        self._metrics.clear()


_default = MetricsRegistry()
_current = _default


def registry() -> MetricsRegistry:
    """The currently active registry (the process default unless a
    :func:`scoped` block has swapped one in)."""
    return _current


@contextmanager
def scoped(reg: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Route module-level metric helpers into a private registry.

    The process-default registry is convenient for long-lived tools
    (benchmarks, ``repro.obs.serve``) but makes metric assertions
    order-dependent in a test suite: whichever test runs first leaves
    its counts behind for the next.  Wrapping each test in ``scoped()``
    gives it a fresh registry and restores the previous one on exit —
    including on exceptions, and correctly under nesting.

    Not thread-safe by design: the swap is process-global, matching the
    registry itself.  Concurrent *observers* inside the block are fine;
    concurrent *scopes* are not a supported shape.
    """
    global _current
    if reg is None:
        reg = MetricsRegistry()
    previous = _current
    _current = reg
    try:
        yield reg
    finally:
        _current = previous


def counter(name: str) -> Counter:
    return _current.counter(name)


def gauge(name: str) -> Gauge:
    return _current.gauge(name)


def histogram(name: str) -> Histogram:
    return _current.histogram(name)


def loghist(name: str, unit: str = "") -> ConcurrentLogHistogram:
    return _current.loghist(name, unit)
