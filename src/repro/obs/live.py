"""A self-contained live maintenance loop for serve/top demos.

``python -m repro.obs.serve`` and ``python -m repro top`` need an engine
that is actually *doing* something.  :class:`DemoLoop` provides one: a
BSMA database with a configurable set of views, maintained by a
(by default sharded) idIVM engine on a background thread that logs a
seeded batch of user updates and runs a maintenance round every
``interval`` seconds.  Rounds use ``round_seed = round index``, so two
demo loops with the same parameters replay the same modification
stream — only the wall-clock telemetry differs.

The loop is deliberately single-threaded on the engine side (one
background thread does both logging and maintenance), matching the
engine's concurrency contract; shard parallelism happens *inside*
``maintain()``.
"""

from __future__ import annotations

import threading
import traceback
from typing import Optional, Sequence

from ..core import IdIvmEngine, ShardedEngine
from ..workloads import BsmaConfig, build_bsma_database, log_user_updates
from ..workloads.bsma import BSMA_QUERIES

#: Default views for the demo loop: small enough to define in a couple
#: of seconds, varied enough to exercise parallel and broadcast routes
#: plus the COST502/COST504 drift story (Q7, Q18).
DEFAULT_VIEWS = ("Q7", "Q10", "Q15", "Q18")


class DemoLoop:
    """A BSMA engine plus a background log-and-maintain loop."""

    def __init__(
        self,
        shards: int = 2,
        users: int = 120,
        updates: int = 24,
        interval: float = 0.5,
        views: Optional[Sequence[str]] = None,
        backend: str = "thread",
    ):
        self.config = BsmaConfig(
            n_users=users,
            friends_per_user=5,
            n_tweets=max(2 * users, 60),
        )
        self.interval = interval
        self.updates = updates
        self.view_names = tuple(views) if views else DEFAULT_VIEWS
        unknown = [v for v in self.view_names if v not in BSMA_QUERIES]
        if unknown:
            raise ValueError(
                f"unknown BSMA views {unknown}; choose from {sorted(BSMA_QUERIES)}"
            )
        self.db = build_bsma_database(self.config)
        if shards > 1:
            self.engine: IdIvmEngine = ShardedEngine(
                self.db, shards=shards, backend=backend
            )
        else:
            self.engine = IdIvmEngine(self.db)
        for name in self.view_names:
            self.engine.define_view(name, BSMA_QUERIES[name](self.db, self.config))
        self.rounds_run = 0
        self.last_error: Optional[str] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def run_round(self) -> None:
        """Log one seeded update batch and maintain every view."""
        log_user_updates(
            self.engine, self.db, self.config, self.updates,
            round_seed=self.rounds_run,
        )
        self.engine.maintain()
        self.rounds_run += 1

    def start(self) -> None:
        """Run rounds on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            return

        def loop() -> None:
            while not self._stop.is_set():
                try:
                    self.run_round()
                except Exception:
                    # A dead loop must be *visible*: record the failure so
                    # /healthz can report unhealthy instead of silently
                    # serving ever-staler metrics.
                    self.last_error = traceback.format_exc()
                    return
                self._stop.wait(self.interval)

        self._thread = threading.Thread(
            target=loop, name="repro-demo-loop", daemon=True
        )
        self._thread.start()

    @property
    def healthy(self) -> bool:
        """False once the loop thread has died (crash or silent exit).

        A loop that was never started, or that was deliberately stopped,
        is still healthy; only an *unrequested* death is a failure.
        """
        if self.last_error is not None:
            return False
        if self._thread is None or self._stop.is_set():
            return True
        return self._thread.is_alive()

    def stop(self, timeout: float = 10.0) -> None:
        """Signal the loop, join it (bounded), and release engine workers."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()
