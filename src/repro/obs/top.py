"""``repro top`` — a live terminal dashboard over the telemetry stack.

Renders, once per refresh interval, a plain-text dashboard of the
engine's observability surface: per-view staleness (pending modlog
entries, seconds-behind), observed-lag and round-latency percentiles,
drift-monitor EWMAs with active COST504 alerts, and shard routing
balance.  No curses — each frame is a full redraw behind an ANSI
clear, so it works in any terminal and degrades to plain sequential
frames when piped.

Two data sources, same renderer:

* local (default): spin up a :class:`~repro.obs.live.DemoLoop` (BSMA,
  sharded) in-process and read its engine directly;
* ``--url http://host:port`` — poll the ``/snapshot`` endpoint of a
  running ``python -m repro.obs.serve`` and render remotely.

``--once`` prints a single frame and exits (used by tests and CI).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request
from typing import Any, Optional

from .hist import LogHistogram
from .serve import SNAPSHOT_SCHEMA, build_snapshot

_CLEAR = "\x1b[2J\x1b[H"


def _ms(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value * 1000.0:.1f}ms"


def _num(value: Optional[float], digits: int = 2) -> str:
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def _hist_from_metrics(snapshot: dict, name: str) -> Optional[LogHistogram]:
    data = snapshot.get("metrics", {}).get(name)
    if not data or data.get("type") != "loghist":
        return None
    return LogHistogram.from_dict(data, name)


def _quantiles(snapshot: dict, name: str) -> dict[str, Optional[float]]:
    hist = _hist_from_metrics(snapshot, name)
    if hist is None or not hist.count:
        return {"p50": None, "p95": None, "p99": None, "max": None}
    return hist.quantile_summary()


def render_dashboard(snapshot: dict[str, Any], width: int = 100) -> str:
    """One dashboard frame (plain text) from a ``/snapshot`` document."""
    lines: list[str] = []
    freshness = snapshot.get("freshness", {})
    drift = snapshot.get("drift", {})
    views_info = snapshot.get("views", {})
    metrics_map = snapshot.get("metrics", {})

    rounds = snapshot.get("rounds")
    rounds_metric = metrics_map.get("engine.maintain_rounds", {}).get("value")
    header = "repro top — idIVM freshness / latency / drift"
    lines.append(header)
    lines.append("=" * min(width, len(header) + 10))

    round_q = _quantiles(snapshot, "engine.round_seconds")
    lines.append(
        "log position {pos}   rounds {rounds}   round latency p50 {p50} "
        "p95 {p95} p99 {p99} max {max}".format(
            pos=freshness.get("log_position", "-"),
            rounds=rounds if rounds is not None else (rounds_metric or "-"),
            p50=_ms(round_q["p50"]),
            p95=_ms(round_q["p95"]),
            p99=_ms(round_q["p99"]),
            max=_ms(round_q["max"]),
        )
    )

    # -- shard balance -------------------------------------------------
    parallel = metrics_map.get("shard.rounds_parallel", {}).get("value", 0)
    broadcast = metrics_map.get("shard.rounds_broadcast", {}).get("value", 0)
    if parallel or broadcast:
        shard_q = _quantiles(snapshot, "shard.cost")
        apply_q = _quantiles(snapshot, "shard.apply_seconds")
        total = (parallel or 0) + (broadcast or 0)
        pct = 100.0 * (parallel or 0) / total if total else 0.0
        lines.append(
            "shards: {par} parallel / {bc} broadcast rounds ({pct:.0f}% parallel)   "
            "per-shard cost p50 {c50:g} p95 {c95:g}   apply p95 {a95}".format(
                par=parallel, bc=broadcast, pct=pct,
                c50=shard_q["p50"] or 0, c95=shard_q["p95"] or 0,
                a95=_ms(apply_q["p95"]),
            )
        )
    lines.append("")

    # -- per-view table ------------------------------------------------
    drift_views = drift.get("views", {})
    alert_keys = {
        (a.get("view"), a.get("metric")) for a in drift.get("alerts", [])
    }
    view_names = sorted(
        set(freshness.get("views", {})) | set(views_info) | set(drift_views)
    )
    head = (
        f"{'view':<8} {'pending':>7} {'behind':>8} {'rounds':>6} "
        f"{'lag p95':>9} {'round p95':>10} {'cost':>8} {'route':<9} "
        f"{'drift':>7} alerts"
    )
    lines.append(head)
    lines.append("-" * len(head))
    for name in view_names:
        stale = freshness.get("views", {}).get(name, {})
        lag = stale.get("observed_lag", {})
        lag_hist = (
            LogHistogram.from_dict(lag, name) if lag.get("count") else None
        )
        round_view_q = _quantiles(snapshot, f"view.round_seconds.{name}")
        info = views_info.get(name, {})
        route = "-"
        if "parallel" in info:
            route = "parallel" if info["parallel"] else "broadcast"
        worst = None
        for metric_name, state in drift_views.get(name, {}).items():
            ewma = state.get("ewma")
            if ewma is None:
                continue
            if worst is None or abs(ewma - 1.0) > abs(worst - 1.0):
                worst = ewma
        alerts = ",".join(
            sorted(m for v, m in alert_keys if v == name and m)
        )
        lines.append(
            f"{name:<8} {stale.get('pending', '-'):>7} "
            f"{_num(stale.get('seconds_behind'), 2) + 's':>8} "
            f"{stale.get('rounds', '-'):>6} "
            f"{_ms(lag_hist.percentile(95.0)) if lag_hist else '-':>9} "
            f"{_ms(round_view_q['p95']):>10} "
            f"{info.get('total_cost', '-'):>8} {route:<9} "
            f"{_num(worst):>7} {alerts or '-'}"
        )

    # -- drift alert detail -------------------------------------------
    alerts = drift.get("alerts", [])
    if alerts:
        lines.append("")
        lines.append(f"COST504 drift alerts ({len(alerts)}):")
        for alert in alerts:
            lines.append(
                "  {view}/{metric}: EWMA {ewma} over {rounds} rounds ({kind})".format(
                    view=alert.get("view"),
                    metric=alert.get("metric"),
                    ewma=_num(alert.get("ewma")),
                    rounds=alert.get("rounds"),
                    kind=alert.get("kind"),
                )
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
def _fetch_snapshot(url: str) -> dict[str, Any]:
    target = url.rstrip("/") + "/snapshot"
    with urllib.request.urlopen(target, timeout=10) as response:
        data = json.loads(response.read().decode("utf-8"))
    if data.get("schema") != SNAPSHOT_SCHEMA:
        raise ValueError(f"{target} did not return a {SNAPSHOT_SCHEMA} document")
    return data


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Dashboard flags (shared by ``repro top`` and this module's main)."""
    parser.add_argument("--url", default=None,
                        help="poll a running repro.obs.serve instead of "
                        "starting a local demo loop")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between frames (default 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="render a single frame and exit")
    parser.add_argument("--frames", type=int, default=0,
                        help="stop after N frames (0 = until interrupted)")
    parser.add_argument("--shards", type=int, default=2,
                        help="local demo loop: engine shards (default 2)")
    parser.add_argument("--users", type=int, default=120,
                        help="local demo loop: BSMA users")
    parser.add_argument("--updates", type=int, default=24,
                        help="local demo loop: updates per round")
    parser.add_argument("--views", nargs="*", default=None,
                        help="local demo loop: BSMA views to maintain")
    parser.add_argument("--no-clear", action="store_true",
                        help="print frames sequentially without ANSI clears")


def run(args: argparse.Namespace) -> int:
    loop = None
    if args.url is None:
        from .live import DemoLoop

        loop = DemoLoop(
            shards=args.shards,
            users=args.users,
            updates=args.updates,
            interval=args.interval,
            views=args.views,
        )
        loop.run_round()
        if not args.once:
            loop.start()

    frames = 0
    clear = "" if (args.no_clear or not sys.stdout.isatty()) else _CLEAR
    try:
        while True:
            if args.url is not None:
                snapshot = _fetch_snapshot(args.url)
            else:
                snapshot = build_snapshot(loop.engine, rounds=loop.rounds_run)
            print(clear + render_dashboard(snapshot), flush=True)
            frames += 1
            if args.once or (args.frames and frames >= args.frames):
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        if loop is not None:
            loop.stop()
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top",
        description="Live dashboard: per-view staleness, latency percentiles, "
        "cost drift, shard balance.",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
