"""Trace export: JSONL serialization, validation, terminal rendering.

Trace schema (one JSON object per line)
---------------------------------------
The first line is a meta record::

    {"type": "meta", "schema": "repro.trace", "version": 1, "spans": N}

Every following line is a span record::

    {"type": "span", "span_id": int, "parent_id": int|null,
     "name": str, "kind": str, "start": float, "duration": float,
     "attrs": {...}, "counts": {"index_lookups": int, "tuple_reads": int,
                                "tuple_writes": int, "total": int} | null}

Spans appear in creation order, so a parent always precedes its
children and a stream consumer can rebuild the tree in one pass.
``counts`` is the access-count delta over the span (cumulative — it
includes the span's descendants); per-phase sums over ``kind ==
"phase"`` spans reconcile exactly with the engine's
``MaintenanceReport.phase_counts`` (see ``docs/OBSERVABILITY.md``).

Run ``python -m repro.obs.trace FILE.jsonl`` to validate a trace file;
it exits non-zero and prints the violations if the schema is broken OR
if the trace does not reconcile (a ``view`` span's ``phase_counts``
attribute disagreeing with the summed counts of its descendant phase
spans).  ``--summary`` adds a per-kind duration percentile report.
"""

from __future__ import annotations

import json
from typing import Any, Optional, Sequence, Union

from ..storage import AccessCounts
from .hist import LogHistogram
from .spans import Span, SpanRecorder

SCHEMA_NAME = "repro.trace"
SCHEMA_VERSION = 1

_SPAN_REQUIRED = {
    "span_id": int,
    "name": str,
    "kind": str,
    "start": (int, float),
    "duration": (int, float),
    "attrs": dict,
}
_COUNT_KEYS = ("index_lookups", "tuple_reads", "tuple_writes", "total")


def write_trace(recorder: SpanRecorder, path: str) -> int:
    """Write the recorder's spans as JSONL; returns the span count."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(
            json.dumps(
                {
                    "type": "meta",
                    "schema": SCHEMA_NAME,
                    "version": SCHEMA_VERSION,
                    "spans": len(recorder.spans),
                }
            )
            + "\n"
        )
        for sp in recorder.spans:
            fh.write(json.dumps(sp.as_dict(), default=str) + "\n")
    return len(recorder.spans)


def load_trace(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL trace back into span records (meta line dropped)."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "span":
                records.append(record)
    return records


def validate_trace(path: str) -> list[str]:
    """Schema-check a trace file; returns a list of violations (empty = ok)."""
    errors: list[str] = []
    seen_ids: set[int] = set()
    meta_seen = False
    span_count = 0
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError as exc:
        return [f"cannot read {path!r}: {exc}"]
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        kind = record.get("type")
        if kind == "meta":
            meta_seen = True
            if record.get("schema") != SCHEMA_NAME:
                errors.append(f"line {lineno}: unknown schema {record.get('schema')!r}")
            continue
        if kind != "span":
            errors.append(f"line {lineno}: unknown record type {kind!r}")
            continue
        span_count += 1
        for key, expected in _SPAN_REQUIRED.items():
            if key not in record:
                errors.append(f"line {lineno}: span missing key {key!r}")
            elif not isinstance(record[key], expected):
                errors.append(
                    f"line {lineno}: span key {key!r} has type "
                    f"{type(record[key]).__name__}"
                )
        span_id = record.get("span_id")
        if isinstance(span_id, int):
            if span_id in seen_ids:
                errors.append(f"line {lineno}: duplicate span_id {span_id}")
            seen_ids.add(span_id)
        parent_id = record.get("parent_id")
        if parent_id is not None:
            if not isinstance(parent_id, int):
                errors.append(f"line {lineno}: parent_id must be int or null")
            elif parent_id not in seen_ids:
                # Creation order guarantees parents precede children.
                errors.append(
                    f"line {lineno}: parent_id {parent_id} not seen before child"
                )
        counts = record.get("counts")
        if counts is not None:
            if not isinstance(counts, dict):
                errors.append(f"line {lineno}: counts must be an object or null")
            else:
                for key in _COUNT_KEYS:
                    if not isinstance(counts.get(key), int):
                        errors.append(
                            f"line {lineno}: counts.{key} missing or non-integer"
                        )
    if not meta_seen:
        errors.append("missing meta record (first line)")
    if span_count == 0:
        errors.append("trace contains no spans")
    return errors


SpanLike = Union[Span, dict]


def _fields(sp: SpanLike) -> tuple[str, str, dict, Optional[dict], float]:
    """(name, kind, attrs, counts-dict, duration) for a Span or a record."""
    if isinstance(sp, Span):
        counts = sp.counts.as_dict() if sp.counts is not None else None
        return sp.name, sp.kind, sp.attrs, counts, sp.duration
    return (
        sp.get("name", "?"),
        sp.get("kind", "span"),
        sp.get("attrs", {}),
        sp.get("counts"),
        sp.get("duration", 0.0),
    )


def phase_totals(
    spans: Union[SpanRecorder, Sequence[SpanLike]],
) -> dict[str, AccessCounts]:
    """Sum the access counts of ``kind == "phase"`` spans, per phase name.

    Accepts a recorder, a list of :class:`Span`, or loaded trace records.
    Because the ∆-script executor opens one phase span per contiguous run
    of same-phase statements, these sums reconcile exactly with the
    engine's ``MaintenanceReport.phase_counts``.
    """
    if isinstance(spans, SpanRecorder):
        spans = spans.spans
    totals: dict[str, AccessCounts] = {}
    for sp in spans:
        name, kind, attrs, counts, _ = _fields(sp)
        if kind != "phase" or counts is None:
            continue
        phase = attrs.get("phase", name)
        bucket = totals.setdefault(phase, AccessCounts())
        bucket.add(AccessCounts.from_dict(counts))
    return totals


def _build_forest(records: Sequence[dict]) -> list[dict]:
    """Nest flat trace records into trees (adds a ``children`` list)."""
    by_id: dict[int, dict] = {}
    roots: list[dict] = []
    for record in records:
        record = dict(record)
        record["children"] = []
        by_id[record["span_id"]] = record
        parent = by_id.get(record.get("parent_id"))
        if parent is not None:
            parent["children"].append(record)
        else:
            roots.append(record)
    return roots


def render_tree(
    spans: Union[SpanRecorder, Sequence[SpanLike]],
    max_depth: Optional[int] = None,
) -> str:
    """Pretty, indented terminal rendering of a span forest."""
    if isinstance(spans, SpanRecorder):
        roots: Sequence[SpanLike] = spans.roots
    elif spans and isinstance(spans[0], dict) and "children" not in spans[0]:
        roots = _build_forest(spans)  # flat trace records
    else:
        roots = spans
    lines: list[str] = []

    def visit(sp: SpanLike, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        name, kind, attrs, counts, duration = _fields(sp)
        pad = "  " * depth
        bits = [f"{pad}{name}", f"[{kind}]", f"{duration * 1e3:.3f}ms"]
        if counts is not None:
            bits.append(
                "lookups={index_lookups} reads={tuple_reads} "
                "writes={tuple_writes} total={total}".format(**counts)
            )
        shown = {
            k: v
            for k, v in attrs.items()
            if not isinstance(v, (dict, list)) and v is not None
        }
        if shown:
            bits.append(" ".join(f"{k}={v}" for k, v in shown.items()))
        lines.append("  ".join(bits))
        children = sp.children if isinstance(sp, Span) else sp.get("children", [])
        for child in children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)


def reconcile_trace(records: Sequence[dict]) -> list[str]:
    """Cross-check every ``view`` span against its phase spans.

    The engine stamps each view span with the round's per-phase access
    counts (``attrs.phase_counts``).  The same work was counted a second
    time by the ∆-script executor's phase spans (bucket deltas via
    ``phase_of``), so within each view subtree the per-phase span sums
    must equal the stamped counts *exactly* — including across shard
    workers, whose phase spans nest below ``shard`` spans.  A phase
    stamped on the view but absent from the spans must have zero counts,
    and vice versa.  Returns human-readable violations (empty = ok).
    """
    errors: list[str] = []
    roots = _build_forest(records)

    def collect_phases(record: dict, sums: dict[str, AccessCounts]) -> None:
        for child in record["children"]:
            if child.get("kind") == "phase" and child.get("counts") is not None:
                phase = child.get("attrs", {}).get("phase", child.get("name"))
                sums.setdefault(phase, AccessCounts()).add(
                    AccessCounts.from_dict(child["counts"])
                )
            collect_phases(child, sums)

    def visit(record: dict) -> None:
        if record.get("kind") == "view":
            stamped = record.get("attrs", {}).get("phase_counts")
            if isinstance(stamped, dict):
                view = record.get("attrs", {}).get("view", record.get("name"))
                sums: dict[str, AccessCounts] = {}
                collect_phases(record, sums)
                for phase in set(stamped) | set(sums):
                    want = stamped.get(phase)
                    got = sums.get(phase, AccessCounts()).as_dict()
                    if want is None:
                        if got["total"] != 0:
                            errors.append(
                                f"view {view!r}: phase spans count "
                                f"{got['total']} accesses in {phase!r} but the "
                                f"view span stamps no such phase"
                            )
                        continue
                    if {k: int(v) for k, v in want.items()} != got:
                        errors.append(
                            f"view {view!r}: phase {phase!r} does not "
                            f"reconcile (view span {want} vs phase-span sum {got})"
                        )
        for child in record["children"]:
            visit(child)

    for root in roots:
        visit(root)
    return errors


def summarize_durations(records: Sequence[dict]) -> dict[str, LogHistogram]:
    """Per-kind span-duration histograms (seconds) over trace records."""
    out: dict[str, LogHistogram] = {}
    for record in records:
        kind = record.get("kind", "span")
        hist = out.get(kind)
        if hist is None:
            hist = LogHistogram(f"trace.duration.{kind}", unit="seconds")
            out[kind] = hist
        hist.observe(float(record.get("duration", 0.0)))
    return out


def render_summary(records: Sequence[dict]) -> str:
    """The ``--summary`` report: duration percentiles per span kind."""
    lines = [
        f"{'kind':<10} {'count':>7} {'p50(ms)':>9} {'p95(ms)':>9} "
        f"{'p99(ms)':>9} {'max(ms)':>9}"
    ]
    for kind, hist in sorted(summarize_durations(records).items()):
        q = hist.quantile_summary()

        def ms(value: Optional[float]) -> str:
            return f"{value * 1e3:.3f}" if value is not None else "-"

        lines.append(
            f"{kind:<10} {hist.count:>7} {ms(q['p50']):>9} {ms(q['p95']):>9} "
            f"{ms(q['p99']):>9} {ms(q['max']):>9}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.obs.trace FILE.jsonl [--summary]`` — validate
    (schema + reconciliation) and optionally summarize a trace file."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="validate a repro trace file (schema + phase-count "
        "reconciliation) and optionally print a duration summary",
    )
    parser.add_argument("path", help="JSONL trace file to validate")
    parser.add_argument(
        "--summary",
        action="store_true",
        help="print per-kind span duration percentiles (p50/p95/p99/max)",
    )
    opts = parser.parse_args(list(sys.argv[1:] if argv is None else argv))
    errors = validate_trace(opts.path)
    if errors:
        for err in errors:
            print(err, file=sys.stderr)
        return 1
    records = load_trace(opts.path)
    errors = reconcile_trace(records)
    if errors:
        for err in errors:
            print(err, file=sys.stderr)
        return 1
    phases = phase_totals(records)
    print(f"{opts.path}: ok ({len(records)} spans, {len(phases)} phases)")
    if opts.summary:
        print(render_summary(records))
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
