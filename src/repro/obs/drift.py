"""Cost-drift monitoring: EWMA of predicted-vs-observed access ratios.

PR 5's symbolic cost model predicts, per maintenance round and phase,
how many index lookups / tuple reads / tuple writes each view's
∆-script will incur.  The COST503 reconciliation checks a *single*
round against a one-sided tolerance; this module watches the ratio
*over time*: per view and per cost metric, an exponentially weighted
moving average of ``observed / predicted`` (both summed over the four
script phases).

A calibrated model hovers near 1.0.  Sustained deviation is *drift*:

* ratio **below** ``low`` — the model persistently over-predicts.  This
  is the signature of the negative-benefit caches COST502 flags
  statically (the model charges cache bookkeeping the workload never
  exercises), now confirmed by live counters.
* ratio **above** ``high`` — observed work exceeds the predicted upper
  bound round after round; the model misses an access path (the chronic
  form of COST503).

Alerts surface through three channels: :meth:`DriftMonitor.alerts` for
programmatic use (``repro top``, the serve endpoint), the COST504
informational diagnostic (`repro lint --cost`), and a crosscheck hook.

OpenIVM (PAPERS.md, 2404.16486) uses exactly this maintenance-cost
feedback loop to re-choose strategies; ROADMAP item 2's target-lag
scheduler is the intended consumer here.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

#: The CostVector metrics the PR 5 reconciliation compares (and we track).
DRIFT_METRICS = ("index_lookups", "tuple_reads", "tuple_writes")

#: Laplace-style smoothing added to both sides of the ratio so empty
#: rounds and zero predictions stay finite and well-behaved.
_SMOOTHING = 1.0


class DriftState:
    """EWMA state for one (view, metric) ratio series."""

    __slots__ = ("view", "metric", "ewma", "rounds", "last_ratio",
                 "observed_total", "predicted_total")

    def __init__(self, view: str, metric: str):
        self.view = view
        self.metric = metric
        self.ewma: Optional[float] = None
        self.rounds = 0
        self.last_ratio: Optional[float] = None
        self.observed_total = 0.0
        self.predicted_total = 0.0

    def update(self, ratio: float, alpha: float) -> None:
        self.last_ratio = ratio
        self.rounds += 1
        if self.ewma is None:
            self.ewma = ratio
        else:
            self.ewma = alpha * ratio + (1.0 - alpha) * self.ewma

    def as_dict(self) -> dict[str, Any]:
        return {
            "ewma": self.ewma,
            "rounds": self.rounds,
            "last_ratio": self.last_ratio,
            "observed_total": self.observed_total,
            "predicted_total": self.predicted_total,
        }


class DriftAlert:
    """One sustained predicted-vs-observed deviation."""

    __slots__ = ("view", "metric", "ewma", "rounds", "kind")

    def __init__(self, view: str, metric: str, ewma: float, rounds: int, kind: str):
        self.view = view
        self.metric = metric
        self.ewma = ewma
        self.rounds = rounds
        #: ``"over_predicted"`` (ewma < low) or ``"under_predicted"``.
        self.kind = kind

    def render(self) -> str:
        direction = (
            "over-predicts" if self.kind == "over_predicted" else "under-predicts"
        )
        return (
            f"{self.view}/{self.metric}: model {direction} "
            f"(observed/predicted EWMA {self.ewma:.2f} over {self.rounds} rounds)"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "view": self.view,
            "metric": self.metric,
            "ewma": self.ewma,
            "rounds": self.rounds,
            "kind": self.kind,
        }


class DriftMonitor:
    """Per-view EWMA drift tracker over maintenance reports.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor (weight of the newest round).
    min_rounds:
        Rounds of evidence required before a ratio can alert — a single
        unlucky batch is variance, not drift.
    low / high:
        Alert thresholds on the EWMA ratio.  The defaults are
        deliberately asymmetric: the model is a documented upper bound,
        so mild over-prediction is expected and only a sustained EWMA
        below ``low`` (less than ~80% of predicted work materializing)
        counts as drift, while *any* sustained under-prediction beyond
        COST503's per-round tolerance is suspicious.
    min_volume:
        Ignore (view, metric) series whose per-round predicted *and*
        observed counts are both below this — ratios over a handful of
        accesses are noise.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        min_rounds: int = 3,
        low: float = 0.8,
        high: float = 1.25,
        min_volume: float = 8.0,
    ):
        self.alpha = alpha
        self.min_rounds = min_rounds
        self.low = low
        self.high = high
        self.min_volume = min_volume
        self._states: dict[tuple[str, str], DriftState] = {}

    # ------------------------------------------------------------------
    def update(
        self,
        view: str,
        predicted: Optional[Mapping[str, Mapping[str, float]]],
        observed: Mapping[str, Mapping[str, float]],
    ) -> None:
        """Fold one round's prediction/observation into the EWMA.

        *predicted* and *observed* are ``{phase: {metric: value}}``
        (the ``MaintenanceReport.predicted_counts`` shape and the
        ``as_dict`` form of ``phase_counts``).  A ``None`` prediction
        (no model inferred) contributes nothing.
        """
        if not predicted:
            return
        from ..analysis.cost import SCRIPT_PHASES

        for metric in DRIFT_METRICS:
            p = sum(
                float(predicted.get(phase, {}).get(metric, 0.0))
                for phase in SCRIPT_PHASES
            )
            o = sum(
                float(observed.get(phase, {}).get(metric, 0.0))
                for phase in SCRIPT_PHASES
            )
            if p < self.min_volume and o < self.min_volume:
                continue
            state = self._states.get((view, metric))
            if state is None:
                state = DriftState(view, metric)
                self._states[(view, metric)] = state
            state.observed_total += o
            state.predicted_total += p
            state.update((o + _SMOOTHING) / (p + _SMOOTHING), self.alpha)

    def update_from_report(self, report: object) -> None:
        """Convenience intake for a ``MaintenanceReport``."""
        predicted = getattr(report, "predicted_counts", None)
        if not predicted:
            return
        observed = {
            phase: counts.as_dict()
            for phase, counts in report.phase_counts.items()  # type: ignore[attr-defined]
            if phase != "__total__"
        }
        self.update(report.view_name, predicted, observed)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def states(self) -> list[DriftState]:
        return [self._states[k] for k in sorted(self._states)]

    def ratio(self, view: str, metric: str) -> Optional[float]:
        state = self._states.get((view, metric))
        return state.ewma if state is not None else None

    def worst_ratio(self, view: str) -> Optional[float]:
        """The view's EWMA ratio farthest from 1.0 (for dashboards)."""
        worst: Optional[float] = None
        for state in self._states.values():
            if state.view != view or state.ewma is None:
                continue
            if worst is None or abs(state.ewma - 1.0) > abs(worst - 1.0):
                worst = state.ewma
        return worst

    def alerts(self) -> list[DriftAlert]:
        """Every (view, metric) whose EWMA sits outside [low, high] with
        at least ``min_rounds`` rounds of evidence."""
        out: list[DriftAlert] = []
        for state in self.states():
            if state.rounds < self.min_rounds or state.ewma is None:
                continue
            if state.ewma < self.low:
                out.append(
                    DriftAlert(
                        state.view, state.metric, state.ewma, state.rounds,
                        "over_predicted",
                    )
                )
            elif state.ewma > self.high:
                out.append(
                    DriftAlert(
                        state.view, state.metric, state.ewma, state.rounds,
                        "under_predicted",
                    )
                )
        return out

    def alerting_views(self) -> set[str]:
        return {alert.view for alert in self.alerts()}

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state: per view, per metric EWMA + active alerts."""
        views: dict[str, dict[str, Any]] = {}
        for state in self.states():
            views.setdefault(state.view, {})[state.metric] = state.as_dict()
        return {
            "views": views,
            "alerts": [alert.as_dict() for alert in self.alerts()],
            "thresholds": {
                "low": self.low,
                "high": self.high,
                "alpha": self.alpha,
                "min_rounds": self.min_rounds,
                "min_volume": self.min_volume,
            },
        }
