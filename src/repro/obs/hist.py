"""Log-bucketed histograms: percentiles, exact merges, thread sharding.

The plain :class:`repro.obs.metrics.Histogram` keeps a streaming
count/sum/min/max — enough for a mean, useless for a tail.  Freshness
and latency telemetry live in the tail (Snowflake Dynamic Tables gates
on observed-lag *percentiles*, not means), so this module provides the
real thing:

* :class:`LogHistogram` — sparse log-spaced buckets (4 sub-buckets per
  power of two, ≤ ~12% relative error at any quantile), computed with
  exact ``math.frexp`` integer arithmetic so bucket assignment has no
  float-boundary ambiguity.  Merging two histograms adds bucket counts
  — merge is associative and commutative to the count, which is what
  lets per-shard histograms reconcile *exactly* with merged ones.
* :class:`ConcurrentLogHistogram` — the same, behind per-thread shards:
  ``observe`` touches only the calling thread's private histogram (no
  lock on the hot path; the only critical section is first-observation
  shard registration), and readers merge the shards on demand.  This is
  the shape the :class:`~repro.core.sharded.ShardedEngine` workers need.

Both expose ``p50/p95/p99/max`` and serialize through ``as_dict`` /
``from_dict`` so traces, ``BENCH_*.json`` payloads and the ``/metrics``
endpoint all speak the same histogram.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable, Optional, Union

Number = Union[int, float]

#: Sub-buckets per power of two.  Must be a power of two so the
#: sub-bucket computation below stays exact in binary floating point.
SUBBUCKETS = 4

#: The quantiles every summary exports.
SUMMARY_QUANTILES = (50.0, 95.0, 99.0)


def bucket_index(value: float) -> int:
    """Bucket index for a positive value (exact, no log() rounding).

    ``math.frexp`` decomposes ``value = m * 2**e`` with ``0.5 <= m < 1``;
    the mantissa picks one of :data:`SUBBUCKETS` linear sub-buckets
    within the octave.  Because ``m - 0.5`` and the multiply by
    ``2 * SUBBUCKETS`` are exact in binary floating point, values that
    sit precisely on a bucket boundary always land in the upper bucket —
    deterministically, on every platform.
    """
    m, e = math.frexp(value)
    sub = int((m - 0.5) * (2 * SUBBUCKETS))
    return e * SUBBUCKETS + sub


def bucket_bounds(index: int) -> tuple[float, float]:
    """``[lower, upper)`` value range of bucket *index*."""
    e, sub = divmod(index, SUBBUCKETS)
    base = math.ldexp(1.0, e - 1)
    return base * (1 + sub / SUBBUCKETS), base * (1 + (sub + 1) / SUBBUCKETS)


class LogHistogram:
    """Sparse log-bucketed histogram with exact, associative merging.

    Non-positive observations land in a dedicated zero bucket (sizes
    and latencies are never negative; a zero is a real observation and
    must count toward ranks).
    """

    __slots__ = ("name", "unit", "count", "total", "min", "max", "zero_count", "buckets")

    def __init__(self, name: str = "", unit: str = ""):
        self.name = name
        #: Display/export unit: "seconds" histograms are wall-clock
        #: (machine-dependent — the perf gate slack-gates them), "rows"/
        #: "accesses" histograms are deterministic workload facts.
        self.unit = unit
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None
        self.zero_count = 0
        self.buckets: dict[int, int] = {}

    # ------------------------------------------------------------------
    def observe(self, value: Number) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0:
            self.zero_count += 1
        else:
            idx = bucket_index(float(value))
            self.buckets[idx] = self.buckets.get(idx, 0) + 1

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold *other*'s observations into self (exact) and return self."""
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        self.zero_count += other.zero_count
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        if not self.unit:
            self.unit = other.unit
        return self

    @classmethod
    def merged(
        cls, parts: Iterable["LogHistogram"], name: str = "", unit: str = ""
    ) -> "LogHistogram":
        out = cls(name, unit)
        for part in parts:
            out.merge(part)
        return out

    # ------------------------------------------------------------------
    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def percentile(self, q: float) -> Optional[float]:
        """The q-th percentile (bucket upper bound, clamped to observed
        ``[min, max]`` so ``p50 <= p95 <= p99 <= max`` always holds)."""
        if not self.count:
            return None
        rank = max(1, math.ceil(self.count * q / 100.0))
        seen = self.zero_count
        if rank <= seen:
            return float(max(self.min if self.min is not None else 0.0, 0.0) * 0)
        value = None
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if rank <= seen:
                value = bucket_bounds(idx)[1]
                break
        if value is None:  # numerical safety: rank past the last bucket
            value = float(self.max if self.max is not None else 0.0)
        if self.max is not None:
            value = min(value, float(self.max))
        if self.min is not None:
            value = max(value, float(min(self.min, value)))
        return value

    def quantile_summary(self) -> dict[str, Optional[float]]:
        """The operator-facing digest: p50/p95/p99/max (+count)."""
        out: dict[str, Optional[float]] = {
            f"p{q:g}": self.percentile(q) for q in SUMMARY_QUANTILES
        }
        out["max"] = float(self.max) if self.max is not None else None
        return out

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "type": "loghist",
            "unit": self.unit,
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "zero_count": self.zero_count,
            "buckets": {str(idx): n for idx, n in sorted(self.buckets.items())},
        }
        out.update(self.quantile_summary())
        return out

    @classmethod
    def from_dict(cls, data: dict, name: str = "") -> "LogHistogram":
        hist = cls(name, data.get("unit", ""))
        hist.count = int(data.get("count", 0))
        hist.total = data.get("sum", 0)
        hist.min = data.get("min")
        hist.max = data.get("max")
        hist.zero_count = int(data.get("zero_count", 0))
        hist.buckets = {
            int(idx): int(n) for idx, n in data.get("buckets", {}).items()
        }
        return hist

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"LogHistogram({self.name!r}, n={self.count}, sum={self.total})"


class ConcurrentLogHistogram:
    """A :class:`LogHistogram` sharded per observing thread.

    The hot path (``observe``) runs entirely against the calling
    thread's private shard — no lock, no contention; the registry lock
    is taken once per thread, on its first observation.  ``merged()``
    folds all shards into a fresh :class:`LogHistogram`; under
    concurrent writers the snapshot is eventually consistent (it may
    miss in-flight observations, never corrupt counts).
    """

    __slots__ = ("name", "unit", "_local", "_shards", "_lock")

    def __init__(self, name: str = "", unit: str = ""):
        self.name = name
        self.unit = unit
        self._local = threading.local()
        self._shards: list[LogHistogram] = []
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = LogHistogram(self.name, self.unit)
            with self._lock:
                self._shards.append(shard)
            self._local.shard = shard
        shard.observe(value)

    def shards(self) -> list[LogHistogram]:
        """The live per-thread shards (shared objects, do not mutate)."""
        with self._lock:
            return list(self._shards)

    def merged(self) -> LogHistogram:
        return LogHistogram.merged(self.shards(), self.name, self.unit)

    # -- reader conveniences (all via a merged snapshot) ---------------
    @property
    def count(self) -> int:
        return sum(s.count for s in self.shards())

    def percentile(self, q: float) -> Optional[float]:
        return self.merged().percentile(q)

    def quantile_summary(self) -> dict[str, Optional[float]]:
        return self.merged().quantile_summary()

    def as_dict(self) -> dict[str, Any]:
        out = self.merged().as_dict()
        out["shards"] = len(self.shards())
        return out

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"ConcurrentLogHistogram({self.name!r}, shards={len(self.shards())})"
