"""Per-view staleness tracking: modlog positions, lag, seconds-behind.

A view is *fresh* when it reflects every logged modification; between
rounds it lags the log by some number of pending entries and some span
of wall time.  Continuous-serving systems schedule maintenance against
exactly this signal — Snowflake Dynamic Tables exposes per-view target
lag and observed-lag percentiles as the primary operator interface —
and ROADMAP item 2 needs it here too.

The :class:`FreshnessTracker` hangs off the engine and observes two
event streams:

* :meth:`note_logged` — the :class:`~repro.core.modlog.ModificationLog`
  reports every appended entry (sequence number + timestamp);
* :meth:`note_maintained` — the engine reports, after each round, which
  views caught up to which log position and the per-entry observed lag
  (maintenance time minus log time).

From those it can answer, at any instant and per view: how many log
entries are pending, how many seconds behind the newest pending entry
the view is (``seconds_behind``), and the full distribution of observed
lag (a :class:`~repro.obs.hist.LogHistogram` per view plus a global
``freshness.observed_lag_seconds`` metric).

The clock is injectable so tests can drive staleness deterministically.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Iterable, Optional

from .hist import LogHistogram


class ViewFreshness:
    """Mutable freshness state for one view."""

    __slots__ = (
        "name",
        "applied_position",
        "last_maintained_at",
        "rounds",
        "entries_applied",
        "lag_hist",
    )

    def __init__(self, name: str):
        self.name = name
        #: Highest modlog sequence number this view reflects.
        self.applied_position = 0
        self.last_maintained_at: Optional[float] = None
        self.rounds = 0
        self.entries_applied = 0
        #: Observed lag (seconds between an entry being logged and this
        #: view absorbing it) — the Dynamic-Tables "observed lag" metric.
        self.lag_hist = LogHistogram(f"freshness.lag.{name}", unit="seconds")


class ViewStaleness:
    """Point-in-time staleness report for one view."""

    __slots__ = ("name", "pending", "seconds_behind", "last_maintained_at", "rounds")

    def __init__(
        self,
        name: str,
        pending: int,
        seconds_behind: float,
        last_maintained_at: Optional[float],
        rounds: int,
    ):
        self.name = name
        #: Modlog entries logged but not yet reflected in the view.
        self.pending = pending
        #: Age of the oldest pending entry (0.0 when fully fresh).
        self.seconds_behind = seconds_behind
        self.last_maintained_at = last_maintained_at
        self.rounds = rounds

    @property
    def fresh(self) -> bool:
        return self.pending == 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "pending": self.pending,
            "seconds_behind": self.seconds_behind,
            "fresh": self.fresh,
            "rounds": self.rounds,
        }


class FreshnessTracker:
    """Tracks modlog position vs. per-view applied position.

    Thread-safety: entries are logged and rounds finished from the
    engine's coordinating thread (shard workers never touch the modlog),
    so no locking is needed; readers (``serve``/``top``) only see
    slightly stale snapshots, never torn ones.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self.clock = clock
        self._log_position = 0
        #: (seq, logged_at) for entries some view may not have absorbed
        #: yet, in sequence order; pruned once every view passed them.
        self._pending: deque[tuple[int, float]] = deque()
        self._views: dict[str, ViewFreshness] = {}
        #: Global observed-lag distribution across all views.
        self.observed_lag = LogHistogram(
            "freshness.observed_lag_seconds", unit="seconds"
        )

    # ------------------------------------------------------------------
    # event intake
    # ------------------------------------------------------------------
    def note_view(self, name: str) -> ViewFreshness:
        """Register a view (idempotent).  A newly defined view starts
        fresh: it was materialized from the current database state."""
        state = self._views.get(name)
        if state is None:
            state = ViewFreshness(name)
            state.applied_position = self._log_position
            self._views[name] = state
        return state

    def forget_view(self, name: str) -> None:
        self._views.pop(name, None)

    def note_logged(self, seq: int, logged_at: Optional[float] = None) -> None:
        """A modification entered the log at sequence *seq*."""
        if logged_at is None:
            logged_at = self.clock()
        self._log_position = seq
        self._pending.append((seq, logged_at))

    def note_maintained(
        self,
        name: str,
        position: int,
        entry_times: Iterable[float] = (),
        now: Optional[float] = None,
    ) -> None:
        """View *name* absorbed the log up to *position*.

        *entry_times* are the ``logged_at`` stamps of the entries this
        round applied; each contributes one observed-lag sample.
        """
        if now is None:
            now = self.clock()
        state = self.note_view(name)
        if position > state.applied_position:
            state.applied_position = position
        state.last_maintained_at = now
        state.rounds += 1
        for logged_at in entry_times:
            lag = max(0.0, now - logged_at)
            state.entries_applied += 1
            state.lag_hist.observe(lag)
            self.observed_lag.observe(lag)
        self._prune()

    def _prune(self) -> None:
        if not self._views:
            return
        floor = min(s.applied_position for s in self._views.values())
        pending = self._pending
        while pending and pending[0][0] <= floor:
            pending.popleft()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def log_position(self) -> int:
        return self._log_position

    def views(self) -> list[str]:
        return sorted(self._views)

    def lag_histogram(self, name: str) -> Optional[LogHistogram]:
        state = self._views.get(name)
        return state.lag_hist if state is not None else None

    def staleness(self, name: str, now: Optional[float] = None) -> ViewStaleness:
        if now is None:
            now = self.clock()
        state = self.note_view(name)
        pending = self._log_position - state.applied_position
        seconds_behind = 0.0
        if pending:
            for seq, logged_at in self._pending:
                if seq > state.applied_position:
                    seconds_behind = max(0.0, now - logged_at)
                    break
        return ViewStaleness(
            name, pending, seconds_behind, state.last_maintained_at, state.rounds
        )

    def report(self, now: Optional[float] = None) -> dict[str, Any]:
        """JSON-ready freshness report for every tracked view."""
        if now is None:
            now = self.clock()
        views: dict[str, Any] = {}
        for name in self.views():
            stale = self.staleness(name, now)
            record = stale.as_dict()
            record["observed_lag"] = self._views[name].lag_hist.as_dict()
            views[name] = record
        return {
            "log_position": self._log_position,
            "views": views,
            "observed_lag": self.observed_lag.as_dict(),
        }
