"""Observability: hierarchical spans, a metrics registry, trace export.

The paper's empirical sections (Figures 10-12, Tables 2-3) attribute
maintenance cost to phases and operators; this package provides the
machinery to do the same attribution live, on every maintenance round:

* :mod:`repro.obs.spans` — timed, access-counted spans forming a tree
  (engine round -> phase -> ∆-script statement -> plan/IR operator);
* :mod:`repro.obs.metrics` — a process-wide registry of named counters,
  gauges and histograms (i-diff sizes, cache hit rates, ...);
* :mod:`repro.obs.trace` — JSONL export of a recorded span tree, schema
  validation, and a pretty terminal renderer.

Tracing is off by default: with no recorder installed every
instrumentation site reduces to a single global read, so baseline
benchmark numbers are unaffected.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
)
from .spans import (
    Span,
    SpanRecorder,
    current_recorder,
    current_span,
    enabled,
    recording,
    span,
)
from .trace import (
    load_trace,
    phase_totals,
    render_tree,
    validate_trace,
    write_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "counter",
    "current_recorder",
    "current_span",
    "enabled",
    "gauge",
    "histogram",
    "load_trace",
    "phase_totals",
    "recording",
    "registry",
    "render_tree",
    "span",
    "validate_trace",
    "write_trace",
]
