"""Observability: hierarchical spans, a metrics registry, trace export.

The paper's empirical sections (Figures 10-12, Tables 2-3) attribute
maintenance cost to phases and operators; this package provides the
machinery to do the same attribution live, on every maintenance round:

* :mod:`repro.obs.spans` — timed, access-counted spans forming a tree
  (engine round -> phase -> ∆-script statement -> plan/IR operator);
* :mod:`repro.obs.metrics` — a process-wide registry of named counters,
  gauges and histograms (i-diff sizes, cache hit rates, ...);
* :mod:`repro.obs.hist` — log-bucketed percentile histograms with
  per-thread accumulation and exact merging;
* :mod:`repro.obs.freshness` — per-view staleness (pending modlog
  entries, seconds-behind, observed-lag percentiles);
* :mod:`repro.obs.drift` — EWMA monitoring of the symbolic cost model's
  predicted-vs-observed ratio (COST504);
* :mod:`repro.obs.trace` — JSONL export of a recorded span tree, schema
  validation, and a pretty terminal renderer;
* :mod:`repro.obs.serve` — stdlib HTTP endpoint exposing /metrics
  (Prometheus text) and /snapshot (JSON);
* :mod:`repro.obs.top` — terminal dashboard (``python -m repro top``).

Tracing is off by default: with no recorder installed every
instrumentation site reduces to a single global read, so baseline
benchmark numbers are unaffected.
"""

from .drift import DriftAlert, DriftMonitor
from .freshness import FreshnessTracker, ViewStaleness
from .hist import ConcurrentLogHistogram, LogHistogram
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    loghist,
    registry,
    scoped,
)
from .spans import (
    Span,
    SpanRecorder,
    current_recorder,
    current_span,
    enabled,
    recording,
    span,
)
from .trace import (
    load_trace,
    phase_totals,
    reconcile_trace,
    render_tree,
    validate_trace,
    write_trace,
)

__all__ = [
    "ConcurrentLogHistogram",
    "Counter",
    "DriftAlert",
    "DriftMonitor",
    "FreshnessTracker",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "ViewStaleness",
    "counter",
    "current_recorder",
    "current_span",
    "enabled",
    "gauge",
    "histogram",
    "load_trace",
    "loghist",
    "phase_totals",
    "reconcile_trace",
    "recording",
    "registry",
    "render_tree",
    "scoped",
    "span",
    "validate_trace",
    "write_trace",
]
