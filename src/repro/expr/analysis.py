"""Static analysis of expressions.

Used by the i-diff schema generator (conditional-attribute detection), the
propagation rules (the ``X̄ ⊆ Ī ∪ Ā″`` checks of Tables 6–13), the
minimizer, and the delta evaluator (equi-join key extraction).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .ast import (
    And,
    Arith,
    Call,
    Cmp,
    Col,
    Expr,
    InList,
    Lit,
    Not,
    Or,
    all_of,
)


def columns_of(expr: Expr) -> frozenset[str]:
    """Names of all columns referenced by *expr*."""
    if isinstance(expr, Col):
        return frozenset((expr.name,))
    if isinstance(expr, Lit):
        return frozenset()
    if isinstance(expr, (Arith, Cmp)):
        return columns_of(expr.left) | columns_of(expr.right)
    if isinstance(expr, (And, Or)):
        out: frozenset[str] = frozenset()
        for item in expr.items:
            out |= columns_of(item)
        return out
    if isinstance(expr, Not):
        return columns_of(expr.item)
    if isinstance(expr, InList):
        return columns_of(expr.item)
    if isinstance(expr, Call):
        out = frozenset()
        for arg in expr.args:
            out |= columns_of(arg)
        return out
    raise TypeError(f"unknown expression node {expr!r}")


def conjuncts_of(expr: Expr) -> tuple[Expr, ...]:
    """Top-level conjuncts of *expr* (itself, if not a conjunction)."""
    if isinstance(expr, And):
        out: list[Expr] = []
        for item in expr.items:
            out.extend(conjuncts_of(item))
        return tuple(out)
    return (expr,)


def rename_columns(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """Copy of *expr* with column names substituted per *mapping*.

    Names absent from *mapping* are left unchanged.  This is how rules
    retarget a condition from view attributes to diff columns
    (``a`` -> ``a__pre`` / ``a__post``).
    """
    if isinstance(expr, Col):
        return Col(mapping.get(expr.name, expr.name))
    if isinstance(expr, Lit):
        return expr
    if isinstance(expr, Arith):
        return Arith(expr.op, rename_columns(expr.left, mapping), rename_columns(expr.right, mapping))
    if isinstance(expr, Cmp):
        return Cmp(expr.op, rename_columns(expr.left, mapping), rename_columns(expr.right, mapping))
    if isinstance(expr, And):
        return And(tuple(rename_columns(i, mapping) for i in expr.items))
    if isinstance(expr, Or):
        return Or(tuple(rename_columns(i, mapping) for i in expr.items))
    if isinstance(expr, Not):
        return Not(rename_columns(expr.item, mapping))
    if isinstance(expr, InList):
        return InList(rename_columns(expr.item, mapping), expr.values)
    if isinstance(expr, Call):
        return Call(expr.func, tuple(rename_columns(a, mapping) for a in expr.args))
    raise TypeError(f"unknown expression node {expr!r}")


def equi_join_pairs(
    condition: Expr,
    left_columns: Sequence[str],
    right_columns: Sequence[str],
) -> tuple[list[tuple[str, str]], Expr]:
    """Split a join condition into equi-join column pairs and a residual.

    Returns ``(pairs, residual)`` where *pairs* is a list of
    ``(left_col, right_col)`` equality pairs and *residual* is the
    conjunction of the remaining conjuncts (``TRUE`` when none).  Used by
    the hash-join and the index-driven delta evaluator.
    """
    left_set = set(left_columns)
    right_set = set(right_columns)
    pairs: list[tuple[str, str]] = []
    residual: list[Expr] = []
    for conjunct in conjuncts_of(condition):
        if (
            isinstance(conjunct, Cmp)
            and conjunct.op == "="
            and isinstance(conjunct.left, Col)
            and isinstance(conjunct.right, Col)
        ):
            a, b = conjunct.left.name, conjunct.right.name
            if a in left_set and b in right_set:
                pairs.append((a, b))
                continue
            if b in left_set and a in right_set:
                pairs.append((b, a))
                continue
        residual.append(conjunct)
    return pairs, all_of(*residual)


def is_column_only(expr: Expr) -> bool:
    """True when *expr* is a bare column reference."""
    return isinstance(expr, Col)


# ----------------------------------------------------------------------
# nullability
# ----------------------------------------------------------------------
def nullable_columns_of(schema) -> frozenset[str]:
    """Columns of a :class:`~repro.storage.TableSchema` that may be NULL.

    This follows the schema declaration exactly.  In particular a
    foreign-key column is nullable if and only if the schema says so: SQL
    foreign keys do NOT imply NOT NULL (a NULL child column simply opts
    out of the reference), so treating FK columns as implicitly non-null
    would hide NULL-join and 3VL hazards on exactly the columns most
    likely to appear as join keys.
    """
    return frozenset(schema.nullable)


def may_be_null(expr: Expr, nullable_columns) -> bool:
    """Whether *expr* can evaluate to NULL (UNKNOWN, for predicates).

    *nullable_columns* is the set of column names that may hold NULL.
    The test is conservative (may return True for expressions that are
    never NULL on the actual data) but never wrongly returns False:

    * a column is NULL-free iff it is outside *nullable_columns*;
    * arithmetic and comparisons propagate NULL from either operand
      (and a comparison may also degrade to UNKNOWN on its own — mixed
      type orderings — which :mod:`repro.analysis.typecheck` handles
      with declared-type information);
    * AND/OR/NOT follow 3VL: the result is definite when every operand
      is definite;
    * NULL-tolerant scalar functions (``is_true``, ``is_distinct``)
      always return a definite boolean; ``coalesce`` is NULL only when
      every argument can be; every other function propagates NULL.
    """
    nullable = set(nullable_columns)
    if isinstance(expr, Col):
        return expr.name in nullable
    if isinstance(expr, Lit):
        return expr.value is None
    if isinstance(expr, (Arith, Cmp)):
        return may_be_null(expr.left, nullable) or may_be_null(expr.right, nullable)
    if isinstance(expr, (And, Or)):
        return any(may_be_null(i, nullable) for i in expr.items)
    if isinstance(expr, Not):
        return may_be_null(expr.item, nullable)
    if isinstance(expr, InList):
        return may_be_null(expr.item, nullable) or any(
            v is None for v in expr.values
        )
    if isinstance(expr, Call):
        if expr.func in ("is_true", "is_distinct"):
            return False
        if expr.func == "coalesce":
            return all(may_be_null(a, nullable) for a in expr.args)
        return any(may_be_null(a, nullable) for a in expr.args)
    raise TypeError(f"unknown expression node {expr!r}")
