"""Expression evaluation against (column-index, row) pairs."""

from __future__ import annotations

import operator
from typing import Mapping

from ..errors import ExpressionError, UnknownColumnError
from .ast import (
    NULL_TOLERANT_FUNCTIONS,
    SCALAR_FUNCTIONS,
    And,
    Arith,
    Call,
    Cmp,
    Col,
    Expr,
    InList,
    Lit,
    Not,
    Or,
)

_ARITH_OPS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_CMP_OPS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def compare(op: str, left, right):
    """Three-valued comparison primitive.

    A NULL operand yields UNKNOWN (``None``), and so does an ordering
    comparison between values with no common order (``3 < "x"`` raises
    ``TypeError`` in Python; in a modification stream that writes mixed
    types into a column it must degrade to UNKNOWN, not crash the
    maintenance round).  Equality never raises, so ``=``/``<>`` keep
    Python semantics on mixed types (always False / True).
    """
    if left is None or right is None:
        return None
    try:
        return _CMP_OPS[op](left, right)
    except TypeError:
        return None


def evaluate(expr: Expr, positions: Mapping[str, int], row: tuple):
    """Evaluate *expr* on *row*, using *positions* to resolve column names.

    ``None`` propagates through arithmetic and comparisons (SQL-ish NULL
    semantics: any operation on None yields None; predicates treat None as
    False at filter boundaries).
    """
    if isinstance(expr, Lit):
        return expr.value
    if isinstance(expr, Col):
        try:
            return row[positions[expr.name]]
        except KeyError:
            raise UnknownColumnError(
                f"column {expr.name!r} not available; have {sorted(positions)}"
            ) from None
    if isinstance(expr, Arith):
        left = evaluate(expr.left, positions, row)
        right = evaluate(expr.right, positions, row)
        if left is None or right is None:
            return None
        return _ARITH_OPS[expr.op](left, right)
    if isinstance(expr, Cmp):
        left = evaluate(expr.left, positions, row)
        right = evaluate(expr.right, positions, row)
        return compare(expr.op, left, right)
    if isinstance(expr, And):
        result: object = True
        for item in expr.items:
            value = evaluate(item, positions, row)
            if value is False:
                return False
            if value is None:
                result = None
        return result
    if isinstance(expr, Or):
        result = False
        for item in expr.items:
            value = evaluate(item, positions, row)
            if value is True:
                return True
            if value is None:
                result = None
        return result
    if isinstance(expr, Not):
        value = evaluate(expr.item, positions, row)
        if value is None:
            return None
        return not value
    if isinstance(expr, InList):
        value = evaluate(expr.item, positions, row)
        if value is None:
            return None
        # x IN (a, b, ...) is x=a OR x=b OR ...: a NULL list element
        # contributes UNKNOWN, so a non-match is UNKNOWN (filtered out at
        # a σ boundary, but NOT(...) must not turn it into True).
        unknown = False
        for item in expr.values:
            verdict = compare("=", value, item)
            if verdict is True:
                return True
            if verdict is None:
                unknown = True
        return None if unknown else False
    if isinstance(expr, Call):
        args = [evaluate(a, positions, row) for a in expr.args]
        if expr.func not in NULL_TOLERANT_FUNCTIONS and any(a is None for a in args):
            return None
        return SCALAR_FUNCTIONS[expr.func](*args)
    raise ExpressionError(f"cannot evaluate expression node {expr!r}")


def matches(expr: Expr, positions: Mapping[str, int], row: tuple) -> bool:
    """Predicate evaluation at a filter boundary: None counts as False."""
    return evaluate(expr, positions, row) is True
