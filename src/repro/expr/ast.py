"""Scalar expression AST.

Expressions appear in selection predicates, join conditions and generalized
projections.  Nodes are immutable and hashable so they can be used as keys
during plan analysis.  Comparison operators are exposed as *methods*
(``col("a").eq(lit(3))``) rather than ``__eq__`` overloads, so that
expressions remain well-behaved members of sets and dict keys; arithmetic
and boolean connectives get genuine operator overloads (``+``, ``&``, ...).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..errors import ExpressionError

# Scalar functions available to generalized projection (Call nodes).
SCALAR_FUNCTIONS: dict[str, Callable] = {
    "abs": abs,
    "round": round,
    "floor": lambda x: int(x // 1),
    "ceil": lambda x: -int((-x) // 1),
    "length": len,
    "lower": lambda s: s.lower(),
    "upper": lambda s: s.upper(),
    "concat": lambda *parts: "".join(str(p) for p in parts),
    "coalesce": lambda *vals: next((v for v in vals if v is not None), None),
    "greatest": max,
    "least": min,
    "mod": lambda a, b: a % b,
    "sign": lambda x: (x > 0) - (x < 0),
    # Null-safe inequality (SQL's IS DISTINCT FROM); used by the σ_isupd
    # filter of the projection rules (Table 8).
    "is_distinct": lambda a, b: a != b,
    # SQL's IS TRUE: collapses UNKNOWN to False, so its negation is
    # definite.  The update-split rules need this to catch rows whose
    # predicate moves between UNKNOWN and TRUE.
    "is_true": lambda a: a is True,
}

#: Functions that receive None arguments instead of short-circuiting to None.
NULL_TOLERANT_FUNCTIONS = frozenset({"coalesce", "is_distinct", "is_true"})


class Expr:
    """Base class for expression nodes."""

    __slots__ = ()

    # -- pickling ------------------------------------------------------
    def __setstate__(self, state) -> None:
        # Subclasses guard __setattr__ to enforce immutability, which
        # would also block pickle's slot-state restoration (plans travel
        # to shard worker processes).  Restore through object.__setattr__.
        _, slots = state if isinstance(state, tuple) else (None, state)
        for name, value in (slots or {}).items():
            object.__setattr__(self, name, value)

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "Expr | object") -> "Arith":
        return Arith("+", self, _wrap(other))

    def __radd__(self, other: object) -> "Arith":
        return Arith("+", _wrap(other), self)

    def __sub__(self, other: "Expr | object") -> "Arith":
        return Arith("-", self, _wrap(other))

    def __rsub__(self, other: object) -> "Arith":
        return Arith("-", _wrap(other), self)

    def __mul__(self, other: "Expr | object") -> "Arith":
        return Arith("*", self, _wrap(other))

    def __rmul__(self, other: object) -> "Arith":
        return Arith("*", _wrap(other), self)

    def __truediv__(self, other: "Expr | object") -> "Arith":
        return Arith("/", self, _wrap(other))

    def __rtruediv__(self, other: object) -> "Arith":
        return Arith("/", _wrap(other), self)

    def __neg__(self) -> "Arith":
        return Arith("-", Lit(0), self)

    # -- comparisons (methods, to preserve hashability) -----------------
    def eq(self, other: "Expr | object") -> "Cmp":
        return Cmp("=", self, _wrap(other))

    def ne(self, other: "Expr | object") -> "Cmp":
        return Cmp("<>", self, _wrap(other))

    def lt(self, other: "Expr | object") -> "Cmp":
        return Cmp("<", self, _wrap(other))

    def le(self, other: "Expr | object") -> "Cmp":
        return Cmp("<=", self, _wrap(other))

    def gt(self, other: "Expr | object") -> "Cmp":
        return Cmp(">", self, _wrap(other))

    def ge(self, other: "Expr | object") -> "Cmp":
        return Cmp(">=", self, _wrap(other))

    def isin(self, values: Iterable[object]) -> "InList":
        return InList(self, tuple(values))

    # -- boolean connectives --------------------------------------------
    def __and__(self, other: "Expr") -> "And":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


def _wrap(value: "Expr | object") -> "Expr":
    return value if isinstance(value, Expr) else Lit(value)


class Col(Expr):
    """Reference to a column by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)

    def __setattr__(self, *_):  # pragma: no cover - immutability guard
        raise AttributeError("Expr nodes are immutable")

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Col) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Col", self.name))


class Lit(Expr):
    """A literal constant."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        object.__setattr__(self, "value", value)

    def __setattr__(self, *_):  # pragma: no cover
        raise AttributeError("Expr nodes are immutable")

    def __repr__(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Lit) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Lit", self.value))


class _Binary(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, *_):  # pragma: no cover
        raise AttributeError("Expr nodes are immutable")

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and other.op == self.op  # type: ignore[attr-defined]
            and other.left == self.left  # type: ignore[attr-defined]
            and other.right == self.right  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.op, self.left, self.right))


class Arith(_Binary):
    """Arithmetic: ``+ - * /``."""

    __slots__ = ()


class Cmp(_Binary):
    """Comparison: ``= <> < <= > >=``."""

    __slots__ = ()


class And(Expr):
    """N-ary conjunction."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expr]):
        flat: list[Expr] = []
        for item in items:
            if isinstance(item, And):
                flat.extend(item.items)
            else:
                flat.append(item)
        object.__setattr__(self, "items", tuple(flat))

    def __setattr__(self, *_):  # pragma: no cover
        raise AttributeError("Expr nodes are immutable")

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(i) for i in self.items) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and other.items == self.items

    def __hash__(self) -> int:
        return hash(("And", self.items))


class Or(Expr):
    """N-ary disjunction."""

    __slots__ = ("items",)

    def __init__(self, items: Sequence[Expr]):
        flat: list[Expr] = []
        for item in items:
            if isinstance(item, Or):
                flat.extend(item.items)
            else:
                flat.append(item)
        object.__setattr__(self, "items", tuple(flat))

    def __setattr__(self, *_):  # pragma: no cover
        raise AttributeError("Expr nodes are immutable")

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(i) for i in self.items) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and other.items == self.items

    def __hash__(self) -> int:
        return hash(("Or", self.items))


class Not(Expr):
    """Logical negation."""

    __slots__ = ("item",)

    def __init__(self, item: Expr):
        object.__setattr__(self, "item", item)

    def __setattr__(self, *_):  # pragma: no cover
        raise AttributeError("Expr nodes are immutable")

    def __repr__(self) -> str:
        return f"NOT {self.item!r}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and other.item == self.item

    def __hash__(self) -> int:
        return hash(("Not", self.item))


class InList(Expr):
    """Membership test against a literal value list."""

    __slots__ = ("item", "values")

    def __init__(self, item: Expr, values: tuple):
        object.__setattr__(self, "item", item)
        object.__setattr__(self, "values", tuple(values))

    def __setattr__(self, *_):  # pragma: no cover
        raise AttributeError("Expr nodes are immutable")

    def __repr__(self) -> str:
        return f"{self.item!r} IN {self.values!r}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, InList) and (other.item, other.values) == (
            self.item,
            self.values,
        )

    def __hash__(self) -> int:
        return hash(("InList", self.item, self.values))


class Call(Expr):
    """Scalar function application (from :data:`SCALAR_FUNCTIONS`)."""

    __slots__ = ("func", "args")

    def __init__(self, func: str, args: Sequence[Expr]):
        if func not in SCALAR_FUNCTIONS:
            raise ExpressionError(f"unknown scalar function {func!r}")
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "args", tuple(_wrap(a) for a in args))

    def __setattr__(self, *_):  # pragma: no cover
        raise AttributeError("Expr nodes are immutable")

    def __repr__(self) -> str:
        return f"{self.func}({', '.join(repr(a) for a in self.args)})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Call) and (other.func, other.args) == (
            self.func,
            self.args,
        )

    def __hash__(self) -> int:
        return hash(("Call", self.func, self.args))


TRUE = Lit(True)
FALSE = Lit(False)


def col(name: str) -> Col:
    """Shorthand constructor for a column reference."""
    return Col(name)


def lit(value: object) -> Lit:
    """Shorthand constructor for a literal."""
    return Lit(value)


def all_of(*exprs: Expr) -> Expr:
    """Conjunction of the given predicates (TRUE when empty)."""
    exprs = tuple(e for e in exprs if e != TRUE)
    if not exprs:
        return TRUE
    if len(exprs) == 1:
        return exprs[0]
    return And(exprs)


def any_of(*exprs: Expr) -> Expr:
    """Disjunction of the given predicates (FALSE when empty)."""
    if not exprs:
        return FALSE
    if len(exprs) == 1:
        return exprs[0]
    return Or(exprs)


def is_true(expr: Expr) -> Call:
    """SQL's ``IS TRUE``: UNKNOWN collapses to False.

    Use ``Not(is_true(p))`` where "p did not hold" must include rows on
    which *p* is UNKNOWN — plain ``Not(p)`` stays UNKNOWN there and a
    filter drops the row.
    """
    return Call("is_true", (expr,))
