"""BSMA-like social-media analytics workload (paper Section 7.1, Fig. 9).

The paper evaluates on the Benchmark for Social Media Analytics [26]
(1M users, 100M friend edges, 20M tweets, ...), whose generator and exact
extended-SQL text are not available offline, so this module builds the
closest synthetic equivalent: the same relations with the Figure 9a size
*ratios* (scaled down ~2000x, configurable), seeded value distributions
and views reproducing each query's documented structure:

====  ==========================================================
Q7    mentioned users within a time range (mention counts joined
      with user attributes)
Q10   users who are retweeted within a time range (4-relation
      chain — the paper's 54x headliner)
Q11   pairs of retweeting users, grouped by retweeting times
Q15   users talking about events within a time range (large flat
      view — view-update-dominated, low speedup)
Q18   pairwise count of mentions
Q*1   aggregate of friends-of-friends within the same city
      (aggregate *affected* by the updates, long chain + late
      selection)
Q*2   aggregate of retweeters for every user (affected aggregate)
Q*3   aggregate of users who tweet about topics (affected)
====  ==========================================================

The update workload matches the paper: ``n`` updates on the User table's
``tweetsnum`` and ``favornum`` attributes.  Q7–Q18 keep those attributes
out of every aggregate (the aggregation "is not affected by the updated
attributes"); Q*1–Q*3 aggregate over them directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..algebra import (
    PlanNode,
    equi_join,
    group_by,
    project_columns,
    rename,
    scan,
    where,
)
from ..expr import col, lit
from ..storage import Database


@dataclass
class BsmaConfig:
    """Relation sizes — Figure 9a ratios at a laptop scale."""

    n_users: int = 1_000
    friends_per_user: int = 10
    n_tweets: int = 4_000
    retweet_fraction: float = 0.50   # of tweets, x2 retweets each
    mention_fraction: float = 0.20   # of tweets, x2 mentions each
    event_fraction: float = 0.40     # of tweets, x2 events each
    n_events: int = 50
    n_topics: int = 25
    n_cities: int = 20
    time_range: tuple[int, int] = (300, 700)  # the σ ts window
    seed: int = 23

    @property
    def n_retweets(self) -> int:
        return int(self.n_tweets * self.retweet_fraction * 2)

    @property
    def n_mentions(self) -> int:
        return int(self.n_tweets * self.mention_fraction * 2)

    @property
    def n_event_links(self) -> int:
        return int(self.n_tweets * self.event_fraction * 2)


def build_database(config: BsmaConfig) -> Database:
    rng = random.Random(config.seed)
    db = Database()
    def _table(name, columns, key):
        db.create_table(
            name,
            columns,
            key,
            nullable=(),
            types={c: "int" for c in columns},
        )

    _table("users", ("uid", "city", "tweetsnum", "favornum"), ("uid",))
    _table("friendlist", ("uid", "fid"), ("uid", "fid"))
    _table("microblog", ("mid", "uid", "ts", "topic"), ("mid",))
    _table("retweets", ("rwid", "mid", "uid", "rts"), ("rwid",))
    _table("mentions", ("mnid", "mid", "uid"), ("mnid",))
    _table("rel_event_microblog", ("remid", "eid", "mid"), ("remid",))

    db.table("users").load(
        (u, rng.randrange(config.n_cities), rng.randint(0, 500), rng.randint(0, 100))
        for u in range(config.n_users)
    )
    edges = set()
    for u in range(config.n_users):
        for f in rng.sample(range(config.n_users), config.friends_per_user):
            if f != u:
                edges.add((u, f))
    db.table("friendlist").load(sorted(edges))
    db.table("microblog").load(
        (
            m,
            rng.randrange(config.n_users),
            rng.randrange(0, 1000),
            rng.randrange(config.n_topics),
        )
        for m in range(config.n_tweets)
    )
    db.table("retweets").load(
        (r, rng.randrange(config.n_tweets), rng.randrange(config.n_users), rng.randrange(0, 1000))
        for r in range(config.n_retweets)
    )
    db.table("mentions").load(
        (x, rng.randrange(config.n_tweets), rng.randrange(config.n_users))
        for x in range(config.n_mentions)
    )
    db.table("rel_event_microblog").load(
        (x, rng.randrange(config.n_events), rng.randrange(config.n_tweets))
        for x in range(config.n_event_links)
    )
    db.add_foreign_key("microblog", ("uid",), "users")
    db.add_foreign_key("retweets", ("mid",), "microblog")
    db.add_foreign_key("mentions", ("mid",), "microblog")
    db.add_foreign_key("rel_event_microblog", ("mid",), "microblog")
    return db


def _ts_window(config: BsmaConfig, column: str = "ts"):
    lo, hi = config.time_range
    return col(column).ge(lit(lo)) & col(column).lt(lit(hi))


def q7_mentioned_users(db: Database, config: BsmaConfig) -> PlanNode:
    """Mention counts per mentioned user within the time window, with the
    user's tweetsnum/favornum in the output (the paper's extension)."""
    tweets = where(scan(db, "microblog"), _ts_window(config))
    tweets = rename(tweets, {"mid": "t_mid", "uid": "author"})
    joined = equi_join(scan(db, "mentions"), tweets, [("mid", "t_mid")])
    counts = group_by(joined, ("uid",), [("count", None, "times_mentioned")])
    users = rename(scan(db, "users"), {"uid": "u_uid"})
    out = equi_join(counts, users, [("uid", "u_uid")])
    return project_columns(
        out, ("uid", "times_mentioned", "tweetsnum", "favornum")
    )


def q10_retweeted_users(db: Database, config: BsmaConfig) -> PlanNode:
    """Users retweeted within the window: a 4-relation chain ending in
    the updated users table (the paper's highest-speedup query)."""
    rts = where(scan(db, "retweets"), _ts_window(config, "rts"))
    tweets = rename(scan(db, "microblog"), {"mid": "t_mid", "uid": "author", "ts": "t_ts"})
    chain = equi_join(rts, tweets, [("mid", "t_mid")])
    retweeters = rename(scan(db, "users"), {"uid": "r_uid", "city": "r_city",
                                            "tweetsnum": "r_tweetsnum",
                                            "favornum": "r_favornum"})
    chain = equi_join(chain, retweeters, [("uid", "r_uid")])
    counts = group_by(chain, ("author",), [("count", None, "times_retweeted")])
    authors = rename(scan(db, "users"), {"uid": "a_uid"})
    out = equi_join(counts, authors, [("author", "a_uid")])
    return project_columns(
        out, ("author", "times_retweeted", "tweetsnum", "favornum")
    )


def q11_retweet_pairs(db: Database, config: BsmaConfig) -> PlanNode:
    """Pairs of retweeting users grouped by retweeting times."""
    r1 = rename(scan(db, "retweets"), {"rwid": "rw1", "uid": "u1", "rts": "rts1"})
    r2 = rename(scan(db, "retweets"), {"rwid": "rw2", "mid": "mid2", "uid": "u2", "rts": "rts2"})
    pairs = where(
        equi_join(r1, r2, [("mid", "mid2")]), col("u1").lt(col("u2"))
    )
    counts = group_by(pairs, ("u1", "u2"), [("count", None, "times")])
    users = rename(scan(db, "users"), {"uid": "u_uid"})
    out = equi_join(counts, users, [("u1", "u_uid")])
    return project_columns(out, ("u1", "u2", "times", "tweetsnum", "favornum"))


def q15_event_talkers(db: Database, config: BsmaConfig) -> PlanNode:
    """Users talking about events in the window — a wide flat view whose
    maintenance is dominated by view updates (hence the paper's low 4x)."""
    tweets = where(scan(db, "microblog"), _ts_window(config))
    tweets = rename(tweets, {"mid": "t_mid"})
    joined = equi_join(scan(db, "rel_event_microblog"), tweets, [("mid", "t_mid")])
    users = rename(scan(db, "users"), {"uid": "u_uid"})
    out = equi_join(joined, users, [("uid", "u_uid")])
    return project_columns(out, ("remid", "eid", "uid", "tweetsnum", "favornum"))


def q18_mention_pairs(db: Database, config: BsmaConfig) -> PlanNode:
    """Pairwise count of mentions."""
    m1 = rename(scan(db, "mentions"), {"mnid": "mn1", "uid": "u1"})
    m2 = rename(scan(db, "mentions"), {"mnid": "mn2", "mid": "mid2", "uid": "u2"})
    pairs = where(equi_join(m1, m2, [("mid", "mid2")]), col("u1").lt(col("u2")))
    counts = group_by(pairs, ("u1", "u2"), [("count", None, "times")])
    users = rename(scan(db, "users"), {"uid": "u_uid"})
    out = equi_join(counts, users, [("u1", "u_uid")])
    return project_columns(out, ("u1", "u2", "times", "tweetsnum", "favornum"))


def q_star_1_friends_of_friends(db: Database, config: BsmaConfig) -> PlanNode:
    """Q*1: per user, total tweetsnum of friends-of-friends living in the
    same city — the aggregate is affected by the updates, and the
    selection sits at the end of a long join chain."""
    f1 = scan(db, "friendlist")
    f2 = rename(scan(db, "friendlist"), {"uid": "mid_uid", "fid": "fof"})
    chain = equi_join(f1, f2, [("fid", "mid_uid")])
    me = rename(scan(db, "users"), {"uid": "me_uid", "city": "me_city",
                                    "tweetsnum": "me_tn", "favornum": "me_fn"})
    chain = equi_join(chain, me, [("uid", "me_uid")])
    them = rename(scan(db, "users"), {"uid": "them_uid", "city": "them_city",
                                      "tweetsnum": "them_tn", "favornum": "them_fn"})
    chain = equi_join(chain, them, [("fof", "them_uid")])
    chain = where(chain, col("me_city").eq(col("them_city")))
    return group_by(chain, ("uid",), [("sum", col("them_tn"), "fof_tweets")])


def q_star_2_retweeter_aggregate(db: Database, config: BsmaConfig) -> PlanNode:
    """Q*2: per tweet author, total tweetsnum over the retweeters of
    their recent tweets.  The time-range selection sits at the *end* of
    the chain seen from the updated users table, so the tuple-based
    approach joins through retweets and microblog before discarding
    most rows (the Q*1 effect, Section 7.1)."""
    rts = scan(db, "retweets")
    retweeters = rename(scan(db, "users"), {"uid": "r_uid", "city": "r_city",
                                            "tweetsnum": "r_tn", "favornum": "r_fn"})
    chain = equi_join(rts, retweeters, [("uid", "r_uid")])
    tweets = rename(scan(db, "microblog"), {"mid": "t_mid", "uid": "author", "ts": "t_ts"})
    chain = equi_join(chain, tweets, [("mid", "t_mid")])
    chain = where(chain, _ts_window(config, "t_ts"))
    return group_by(chain, ("author",), [("sum", col("r_tn"), "retweeter_tweets")])


def q_star_3_topic_aggregate(db: Database, config: BsmaConfig) -> PlanNode:
    """Q*3: per event, total tweetsnum of users tweeting about it within
    the time window — a two-join chain from the updated table with a
    late selection, aggregating the updated attribute directly."""
    tweets = rename(scan(db, "microblog"), {"mid": "t_mid"})
    users = rename(scan(db, "users"), {"uid": "u_uid"})
    chain = equi_join(tweets, users, [("uid", "u_uid")])
    events = scan(db, "rel_event_microblog")
    chain = equi_join(events, chain, [("mid", "t_mid")])
    chain = where(chain, _ts_window(config))
    return group_by(
        chain,
        ("eid",),
        [("sum", col("tweetsnum"), "topic_tweets"), ("count", None, "n_tweets")],
    )


BSMA_QUERIES = {
    "Q7": q7_mentioned_users,
    "Q10": q10_retweeted_users,
    "Q11": q11_retweet_pairs,
    "Q15": q15_event_talkers,
    "Q18": q18_mention_pairs,
    "Q*1": q_star_1_friends_of_friends,
    "Q*2": q_star_2_retweeter_aggregate,
    "Q*3": q_star_3_topic_aggregate,
}


def user_update_batch(db: Database, config: BsmaConfig, n_updates: int = 100,
                      round_seed: int = 0):
    """The paper's workload: n updates on users.tweetsnum / favornum."""
    rng = random.Random(config.seed + 900 + round_seed)
    picked = rng.sample(range(config.n_users), min(n_updates, config.n_users))
    batch = []
    for uid in picked:
        row = db.table("users").get_uncounted((uid,))
        changes = {
            "tweetsnum": row[2] + rng.randint(1, 5),
            "favornum": row[3] + rng.randint(1, 3),
        }
        batch.append(((uid,), changes))
    return batch


def log_user_updates(engine, db: Database, config: BsmaConfig,
                     n_updates: int = 100, round_seed: int = 0) -> int:
    batch = user_update_batch(db, config, n_updates, round_seed)
    for key, changes in batch:
        engine.log.update("users", key, changes)
    return len(batch)
