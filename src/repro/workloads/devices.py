"""The running-example workload (paper Figures 1, 5, 11).

Generates the devices / parts / devices_parts database with the paper's
tunable parameters:

* ``d`` — base-table diff size (number of price updates), default 200;
* ``s`` — selectivity of ``category = 'phone'`` (% of devices), default 20;
* ``f`` — fanout from parts to devices_parts (device slots per part),
  default 10 (the fanout from devices_parts to devices is always 1);
* ``j`` — number of joins: 2 is the original view; each extra join adds a
  vertically-decomposed table R_i keyed (did, pid) joined 1-to-1 (the
  Figure 12b construction, which also disables the selection).

The paper's tables hold 5M / 5M / 50M rows; we default to a 1000x
downscale (relation *ratios* and fanouts preserved), which is what the
access-count cost metric depends on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..algebra import PlanNode, group_by, natural_join, project_columns, scan, where
from ..algebra.plan import GroupBy
from ..errors import WorkloadError
from ..expr import col, lit
from ..storage import Database


@dataclass
class DevicesConfig:
    """Workload parameters (Figure 11 defaults, scaled)."""

    n_parts: int = 2_000
    n_devices: int = 2_000
    diff_size: int = 200          # d
    selectivity: float = 0.20     # s
    fanout: int = 10              # f
    joins: int = 2                # j
    with_selection: bool = True
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0 < self.selectivity <= 1:
            raise WorkloadError("selectivity must be in (0, 1]")
        if self.joins < 2:
            raise WorkloadError("the base view already performs 2 joins")
        if self.fanout < 1:
            raise WorkloadError("fanout must be at least 1")
        if self.diff_size > self.n_parts:
            raise WorkloadError("diff size cannot exceed the number of parts")

    @property
    def extra_join_tables(self) -> list[str]:
        return [f"r{i}" for i in range(1, self.joins - 1)]


def build_database(config: DevicesConfig) -> Database:
    """Create and populate the devices schema per *config* (seeded)."""
    rng = random.Random(config.seed)
    db = Database()
    db.create_table(
        "devices",
        ("did", "category"),
        ("did",),
        nullable=(),
        types={"did": "str", "category": "str"},
    )
    db.create_table(
        "parts",
        ("pid", "price"),
        ("pid",),
        nullable=(),
        types={"pid": "str", "price": "int"},
    )
    db.create_table(
        "devices_parts",
        ("did", "pid"),
        ("did", "pid"),
        nullable=(),
        types={"did": "str", "pid": "str"},
    )
    for name in config.extra_join_tables:
        db.create_table(
            name,
            ("did", "pid", f"{name}_payload"),
            ("did", "pid"),
            nullable=(),
            types={"did": "str", "pid": "str", f"{name}_payload": "int"},
        )

    n_phones = max(1, round(config.n_devices * config.selectivity))
    devices = []
    for i in range(config.n_devices):
        category = "phone" if i < n_phones else "tablet"
        devices.append((f"D{i}", category))
    rng.shuffle(devices)
    db.table("devices").load(devices)

    db.table("parts").load(
        (f"P{i}", rng.randint(1, 500)) for i in range(config.n_parts)
    )

    # Each part lands in `fanout` distinct devices.
    dp_rows = []
    device_ids = [f"D{i}" for i in range(config.n_devices)]
    for i in range(config.n_parts):
        for did in rng.sample(device_ids, config.fanout):
            dp_rows.append((did, f"P{i}"))
    db.table("devices_parts").load(dp_rows)
    for name in config.extra_join_tables:
        db.table(name).load(
            (did, pid, rng.randint(0, 999)) for did, pid in dp_rows
        )

    db.add_foreign_key("devices_parts", ("did",), "devices")
    db.add_foreign_key("devices_parts", ("pid",), "parts")
    return db


def build_flat_view(db: Database, config: DevicesConfig) -> PlanNode:
    """Figure 1b: the SPJ view V (part list of phone devices)."""
    plan = _join_chain(db, config)
    if config.with_selection:
        plan = where(plan, col("category").eq(lit("phone")))
    return project_columns(plan, ("did", "pid", "price"))


def build_aggregate_view(db: Database, config: DevicesConfig) -> GroupBy:
    """Figure 5b: the aggregate view V' (total part cost per device)."""
    plan = _join_chain(db, config)
    if config.with_selection:
        plan = where(plan, col("category").eq(lit("phone")))
    return group_by(plan, ("did",), [("sum", col("price"), "cost")])


def _join_chain(db: Database, config: DevicesConfig) -> PlanNode:
    plan = natural_join(scan(db, "parts"), scan(db, "devices_parts"))
    # Extra 1-to-1 joins on (did, pid) — the Figure 12b construction.
    for name in config.extra_join_tables:
        plan = natural_join(plan, scan(db, name))
    return natural_join(plan, scan(db, "devices"))


def price_update_batch(db: Database, config: DevicesConfig, round_seed: int = 0):
    """The Figure 11c base diff: d updates on parts.price.

    Returns (key, changes) pairs ready for ``engine.log.update``.
    """
    rng = random.Random(config.seed + 1000 + round_seed)
    picked = rng.sample(range(config.n_parts), config.diff_size)
    batch = []
    for i in picked:
        key = (f"P{i}",)
        current = db.table("parts").get_uncounted(key)
        batch.append((key, {"price": current[1] + rng.randint(1, 9)}))
    return batch


def apply_price_updates(engine, db: Database, config: DevicesConfig, round_seed: int = 0) -> int:
    """Log d price updates against *engine*; returns the diff size."""
    batch = price_update_batch(db, config, round_seed)
    for key, changes in batch:
        engine.log.update("parts", key, changes)
    return len(batch)


@dataclass
class MixedBatch:
    """A mixed modification batch for insert/delete experiments."""

    updates: int = 0
    inserts: int = 0
    deletes: int = 0
    operations: list = field(default_factory=list)


def mixed_modification_batch(
    db: Database,
    config: DevicesConfig,
    updates: int,
    inserts: int,
    deletes: int,
    round_seed: int = 0,
) -> MixedBatch:
    """Build a batch mixing price updates, new parts (with placements)
    and part removals, for the insert-heavy regime of Section 6."""
    rng = random.Random(config.seed + 5000 + round_seed)
    batch = MixedBatch(updates=updates, inserts=inserts, deletes=deletes)
    live = [row[0] for row in db.table("parts").rows_uncounted()]
    touched = rng.sample(live, min(updates + deletes, len(live)))
    for pid in touched[:updates]:
        current = db.table("parts").get_uncounted((pid,))
        batch.operations.append(
            ("update", "parts", (pid,), {"price": current[1] + 1})
        )
    doomed = set(touched[updates:updates + deletes])
    if doomed:
        for did, pid in db.table("devices_parts").rows_uncounted():
            if pid in doomed:
                batch.operations.append(("delete", "devices_parts", (did, pid), None))
        for pid in doomed:
            batch.operations.append(("delete", "parts", (pid,), None))
    device_ids = [f"D{i}" for i in range(config.n_devices)]
    for i in range(inserts):
        pid = f"PNEW{round_seed}_{i}"
        batch.operations.append(
            ("insert", "parts", (pid, rng.randint(1, 500)), None)
        )
        for did in rng.sample(device_ids, config.fanout):
            batch.operations.append(("insert", "devices_parts", (did, pid), None))
    return batch


def log_batch(engine, batch: MixedBatch) -> None:
    for kind, table, payload, changes in batch.operations:
        if kind == "update":
            engine.log.update(table, payload, changes)
        elif kind == "delete":
            engine.log.delete(table, payload)
        else:
            engine.log.insert(table, payload)
