"""Benchmark workloads: the devices running example (Figure 11) and the
BSMA-like social analytics suite (Figure 9)."""

from .bsma import (
    BSMA_QUERIES,
    BsmaConfig,
    build_database as build_bsma_database,
    log_user_updates,
    user_update_batch,
)
from .devices import (
    DevicesConfig,
    apply_price_updates,
    build_aggregate_view,
    build_database as build_devices_database,
    build_flat_view,
    log_batch,
    mixed_modification_batch,
    price_update_batch,
)

__all__ = [
    "BSMA_QUERIES",
    "BsmaConfig",
    "DevicesConfig",
    "apply_price_updates",
    "build_aggregate_view",
    "build_bsma_database",
    "build_devices_database",
    "build_flat_view",
    "log_batch",
    "log_user_updates",
    "mixed_modification_batch",
    "price_update_batch",
    "user_update_batch",
]
