"""Full-recomputation baseline: the correctness oracle and the IVM
break-even comparator (the paper notes IVM stops paying off around diff
sizes of ~15k tuples, Section 7.2 footnote 9)."""

from __future__ import annotations

from typing import Optional

from ..algebra.evaluate import evaluate_plan, materialize
from ..algebra.plan import PlanNode
from ..core.engine import MaintenanceReport
from ..core.idinfer import annotate_plan
from ..core.modlog import ModificationLog
from ..errors import ScriptError
from ..storage import Database, Table


class RecomputeView:
    def __init__(self, name: str, plan: PlanNode, table: Table):
        self.name = name
        self.plan = plan
        self.table = table


class RecomputeEngine:
    """Maintains views by recomputing them from scratch."""

    def __init__(self, db: Database):
        self.db = db
        self.log = ModificationLog(db)
        self.views: dict[str, RecomputeView] = {}

    def define_view(self, name: str, plan: PlanNode) -> RecomputeView:
        """Materialize *plan*; maintenance will rebuild it from scratch."""
        if name in self.views:
            raise ScriptError(f"view {name!r} already defined")
        annotated = annotate_plan(plan)
        table = materialize(annotated, self.db, name)
        self.db.counters.reset()
        view = RecomputeView(name, annotated, table)
        self.views[name] = view
        return view

    def maintain(self, name: Optional[str] = None) -> dict[str, MaintenanceReport]:
        """Re-evaluate each view over the current database (counted)."""
        targets = [name] if name is not None else list(self.views)
        self.log.take()
        counters = self.db.counters
        reports: dict[str, MaintenanceReport] = {}
        for view_name in targets:
            view = self.views[view_name]
            before = counters.snapshot()
            with counters.phase("recompute"):
                result = evaluate_plan(view.plan, self.db)
                fresh = Table(view.table.schema, counters=counters)
                for row in result.rows:
                    fresh.insert(row)
            view.table._rows = fresh._rows  # swap in the fresh content
            view.table._indexes.clear()
            after = counters.snapshot()
            report = MaintenanceReport(view_name)
            for phase, counts in after.items():
                prior = before.get(phase)
                report.phase_counts[phase] = (
                    counts - prior if prior is not None else counts
                )
            reports[view_name] = report
        return reports
