"""Comparison systems: tuple-based IVM, recomputation and simulated DBToaster."""

from .recompute import RecomputeEngine
from .sdbt import SdbtEngine
from .tuple_ivm import TDelta, TupleIvmEngine, repair_updates

__all__ = ["RecomputeEngine", "SdbtEngine", "TDelta", "TupleIvmEngine", "repair_updates"]
