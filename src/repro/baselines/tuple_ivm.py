"""Tuple-based IVM — the paper's baseline (Section 7: "produced using our
implementation of idIVM with tuple-based diff propagation rules").

A tuple-based diff (t-diff) carries one *full view tuple* per modified
row: ``D+`` holds inserted rows, ``D−`` deleted rows, ``Du`` (pre, post)
row pairs.  Computing them requires reconstructing entire subview tuples,
which is exactly what forces the baseline to join through the base tables
(the cost parameter *a* of Section 6) where ID-based diffs just pass IDs
along.

The propagation below follows the classic algebraic delta rules
(Qian/Wiederhold, Griffin/Libkin) with keyed update diffs:

* σ: filter by φ in the matching state; updates crossing the condition
  split into inserts/deletes;
* π: map rows;
* ⋈: ``ΔL+ ⋈ R_post ∪ (L_post \\ ΔL+) ⋈ ΔR+`` (inserts), ``ΔL− ⋈ R_pre ∪
  (L_pre \\ ΔL−) ⋈ ΔR−`` (deletes), with updates lowered to delete+insert pairs
  and re-paired into updates by output key — all other-side accesses go
  through counted index probes (diff-driven loop plans);
* γ: group deltas from the full child t-diff rows (pipelined, free —
  Appendix A) applied read-modify-write per affected group;
* ∪, ▷: by analogy.

No intermediate caches are used ("the tuple-based approach does not use a
cache, since it cannot benefit from it", Section 6.2) except hidden
materializations of *non-root* aggregate outputs, without which deltas
cannot be re-expressed upward at all (the paper never benchmarks nested
aggregates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..algebra.delta_eval import Bindings, fetch
from ..algebra.evaluate import evaluate_plan, materialize
from ..algebra.plan import (
    AntiJoin,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Scan,
    SemiJoin,
    Select,
    UnionAll,
)
from ..core.diffs import DELETE, INSERT
from ..core.engine import MaintenanceReport, _reconstruct_pre
from ..core.idinfer import annotate_plan
from ..core.modlog import ModificationLog, fold_log
from ..core.rules.aggregate import OpCacheSpec
from ..errors import PlanError, ScriptError
from ..expr import columns_of, equi_join_pairs, evaluate as eval_expr, matches
from ..obs import spans as obs
from ..storage import Database, Table, sort_rows


@dataclass
class TDelta:
    """Full-tuple changes of one subview: the three t-diff tables."""

    inserts: list[tuple] = field(default_factory=list)
    deletes: list[tuple] = field(default_factory=list)
    updates: list[tuple[tuple, tuple]] = field(default_factory=list)
    #: set when a γ node already applied this delta to its own
    #: materialization (which may be the view itself)
    already_applied: Optional[Table] = None

    def is_empty(self) -> bool:
        return not (self.inserts or self.deletes or self.updates)

    def as_changes(self) -> list[tuple]:
        """(pre_row, post_row) normal form."""
        out: list[tuple] = [(None, r) for r in self.inserts]
        out += [(r, None) for r in self.deletes]
        out += list(self.updates)
        return out

    @classmethod
    def from_changes(cls, changes: list[tuple]) -> "TDelta":
        delta = cls()
        for pre, post in changes:
            if pre is None and post is None:
                continue
            if pre is None:
                delta.inserts.append(post)
            elif post is None:
                delta.deletes.append(pre)
            elif pre != post:
                delta.updates.append((pre, post))
        return delta


def repair_updates(delta: TDelta, id_positions: list[int]) -> TDelta:
    """Re-pair delete+insert rows sharing an output key into updates."""
    def key(row: tuple) -> tuple:
        return tuple(row[i] for i in id_positions)

    deleted = {key(r): r for r in delta.deletes}
    out = TDelta(updates=list(delta.updates))
    for row in delta.inserts:
        k = key(row)
        if k in deleted:
            pre = deleted.pop(k)
            if pre != row:
                out.updates.append((pre, row))
        else:
            out.inserts.append(row)
    out.deletes.extend(deleted.values())
    return out


class TupleView:
    """A view maintained with tuple-based diffs."""

    def __init__(self, name: str, plan: PlanNode, table: Table):
        self.name = name
        self.plan = plan
        self.table = table
        #: hidden materializations of non-root aggregate outputs
        self.agg_outputs: dict[int, Table] = {}
        #: group bookkeeping, same policy as the ID engine's op caches
        self.opcaches: dict[int, Table] = {}


class TupleIvmEngine:
    """Drop-in counterpart of :class:`IdIvmEngine` using t-diffs."""

    def __init__(self, db: Database):
        self.db = db
        self.log = ModificationLog(db)
        self.views: dict[str, TupleView] = {}

    # ------------------------------------------------------------------
    def define_view(self, name: str, plan: PlanNode) -> TupleView:
        """Materialize *plan* (plus γ bookkeeping) for t-diff maintenance."""
        if name in self.views:
            raise ScriptError(f"view {name!r} already defined")
        annotated = annotate_plan(plan)
        table = materialize(annotated, self.db, name)
        view = TupleView(name, annotated, table)
        for node in annotated.walk():
            if isinstance(node, GroupBy):
                # Bookkeeping is only consulted (and maintained) by the
                # associative delta path; the min/max recompute path
                # would leave it stale.
                if all(a.func in ("sum", "count", "avg") for a in node.aggs):
                    spec = OpCacheSpec(node, f"{name}__tuple_opc_n{node.node_id}")
                    child_rows = evaluate_plan(node.child, self.db)
                    view.opcaches[node.node_id] = spec.build(
                        child_rows, self.db.counters
                    )
                if node.node_id != annotated.node_id:
                    view.agg_outputs[node.node_id] = materialize(
                        node, self.db, f"{name}__tuple_out_n{node.node_id}"
                    )
        self.db.counters.reset()
        self.views[name] = view
        return view

    # ------------------------------------------------------------------
    def maintain(self, name: Optional[str] = None) -> dict[str, MaintenanceReport]:
        """Propagate the logged changes as full-tuple diffs and apply."""
        targets = [name] if name is not None else list(self.views)
        entries = self.log.take()
        db_post = self.db
        counters = self.db.counters
        with obs.span(
            "maintain",
            kind="engine",
            counters=counters,
            engine=type(self).__name__,
            n_log_entries=len(entries),
            views=",".join(targets),
        ):
            with obs.span("reconstruct_pre", kind="engine", counters=counters):
                db_pre = _reconstruct_pre(self.db, entries)
            net = fold_log(entries, db_post)
            reports: dict[str, MaintenanceReport] = {}
            for view_name in targets:
                view = self.views[view_name]
                with obs.span(
                    f"view:{view_name}", kind="view", counters=counters,
                    view=view_name,
                ) as vsp:
                    before = counters.snapshot()
                    with counters.phase("view_diff"):
                        with obs.span(
                            "phase:view_diff", kind="phase", counters=counters,
                            phase_of="view_diff", phase="view_diff",
                        ):
                            delta = _t_delta(view.plan, view, net, db_pre, db_post)
                    with counters.phase("view_update"):
                        with obs.span(
                            "phase:view_update", kind="phase", counters=counters,
                            phase_of="view_update", phase="view_update",
                        ):
                            _apply_delta(view.table, view.plan, delta)
                    after = counters.snapshot()
                    report = MaintenanceReport(view_name)
                    for phase, counts in after.items():
                        prior = before.get(phase)
                        report.phase_counts[phase] = (
                            counts - prior if prior is not None else counts
                        )
                    report.diff_sizes = {
                        "D+": len(delta.inserts),
                        "D-": len(delta.deletes),
                        "Du": len(delta.updates),
                    }
                    reports[view_name] = report
                    vsp.set(
                        total_cost=report.total_cost,
                        phase_counts={
                            phase: counts.as_dict()
                            for phase, counts in report.phase_counts.items()
                            if phase != "__total__"
                        },
                    )
        return reports


def _apply_delta(table: Table, plan: PlanNode, delta: TDelta) -> None:
    """APPLY the view t-diffs: one index lookup + one access per row."""
    if delta.already_applied is table:
        return
    schema = table.schema
    for row in delta.deletes:
        for key in table.locate(schema.key, schema.key_of(row)):
            table.delete_at(key)
    for pre, post in delta.updates:
        if schema.key_of(pre) != schema.key_of(post):
            # The update moved the row across the view key (e.g. a base
            # attribute serving as a union-merged ID): delete + insert.
            for key in table.locate(schema.key, schema.key_of(pre)):
                table.delete_at(key)
            table.insert_checked(post)
            continue
        changes = {
            c: post[schema.position(c)]
            for c in schema.non_key_columns
            if post[schema.position(c)] != pre[schema.position(c)]
        }
        if not changes:
            continue
        for key in table.locate(schema.key, schema.key_of(post)):
            table.write_at(key, changes)
    for row in delta.inserts:
        table.insert_checked(row)


# ----------------------------------------------------------------------
# t-diff propagation
# ----------------------------------------------------------------------
def _t_delta(
    node: PlanNode,
    view: TupleView,
    net: dict,
    db_pre: Database,
    db_post: Database,
) -> TDelta:
    if isinstance(node, Scan):
        return _scan_delta(node, net)
    if isinstance(node, Select):
        return _select_delta(node, view, net, db_pre, db_post)
    if isinstance(node, Project):
        return _project_delta(node, view, net, db_pre, db_post)
    if isinstance(node, Join):
        return _join_delta(node, view, net, db_pre, db_post)
    if isinstance(node, UnionAll):
        return _union_delta(node, view, net, db_pre, db_post)
    if isinstance(node, AntiJoin):
        return _semi_like_delta(node, view, net, db_pre, db_post, negated=True)
    if isinstance(node, SemiJoin):
        return _semi_like_delta(node, view, net, db_pre, db_post, negated=False)
    if isinstance(node, GroupBy):
        return _groupby_delta(node, view, net, db_pre, db_post)
    raise PlanError(f"tuple-based IVM cannot handle {node!r}")


def _scan_delta(node: Scan, net: dict) -> TDelta:
    delta = TDelta()
    for change in net.get(node.table, {}).values():
        if change.kind == INSERT:
            delta.inserts.append(change.post_row)
        elif change.kind == DELETE:
            delta.deletes.append(change.pre_row)
        else:
            delta.updates.append((change.pre_row, change.post_row))
    return delta


def _select_delta(node: Select, view, net, db_pre, db_post) -> TDelta:
    child = _t_delta(node.child, view, net, db_pre, db_post)
    positions = {c: i for i, c in enumerate(node.child.columns)}
    out = TDelta()
    out.inserts = [r for r in child.inserts if matches(node.predicate, positions, r)]
    out.deletes = [r for r in child.deletes if matches(node.predicate, positions, r)]
    for pre, post in child.updates:
        before = matches(node.predicate, positions, pre)
        after = matches(node.predicate, positions, post)
        if before and after:
            out.updates.append((pre, post))
        elif before:
            out.deletes.append(pre)
        elif after:
            out.inserts.append(post)
    return out


def _project_delta(node: Project, view, net, db_pre, db_post) -> TDelta:
    child = _t_delta(node.child, view, net, db_pre, db_post)
    positions = {c: i for i, c in enumerate(node.child.columns)}
    exprs = [e for _, e in node.items]

    def out_row(row: tuple) -> tuple:
        return tuple(eval_expr(e, positions, row) for e in exprs)

    out = TDelta()
    out.inserts = [out_row(r) for r in child.inserts]
    out.deletes = [out_row(r) for r in child.deletes]
    for pre, post in child.updates:
        a, b = out_row(pre), out_row(post)
        if a != b:
            out.updates.append((a, b))
    return out


def _join_delta(node: Join, view, net, db_pre, db_post) -> TDelta:
    left = _t_delta(node.left, view, net, db_pre, db_post)
    right = _t_delta(node.right, view, net, db_pre, db_post)
    if left.is_empty() and right.is_empty():
        return TDelta()
    pairs, _residual = (
        equi_join_pairs(node.condition, node.left.columns, node.right.columns)
        if node.condition is not None
        else ([], None)
    )
    out_positions = {c: i for i, c in enumerate(node.columns)}

    def combine(lr: tuple, rr: tuple) -> Optional[tuple]:
        combined = lr + rr
        if node.condition is None or matches(node.condition, out_positions, combined):
            return combined
        return None

    def probe(side_node: PlanNode, db: Database, probe_cols, rows, row_cols):
        """Fetch matching rows of *side_node* for the join values of *rows*."""
        if not rows:
            return {}
        if not pairs:
            rel = fetch(side_node, db)
            return {(): rel.rows}
        idx = [row_cols.index(c) for c in probe_cols[0]]
        values = [tuple(r[i] for i in idx) for r in rows]
        rel = fetch(side_node, db, Bindings(probe_cols[1], values))
        spos = [rel.position(c) for c in probe_cols[1]]
        buckets: dict[tuple, list[tuple]] = {}
        for r in rel.rows:
            key = tuple(r[i] for i in spos)
            if None in key:
                continue  # SQL: NULL never equi-joins
            buckets.setdefault(key, []).append(r)
        return buckets

    lcols = list(node.left.columns)
    rcols = list(node.right.columns)
    lpair = tuple(l for l, _ in pairs)
    rpair = tuple(r for _, r in pairs)

    def l_key(row):
        return tuple(row[lcols.index(c)] for c in lpair)

    def r_key(row):
        return tuple(row[rcols.index(c)] for c in rpair)

    condition_cols = (
        columns_of(node.condition) if node.condition is not None else frozenset()
    )

    def condition_preserved(pre: tuple, post: tuple, cols: list[str]) -> bool:
        return all(
            pre[cols.index(c)] == post[cols.index(c)]
            for c in condition_cols
            if c in cols
        )

    inserts: list[tuple] = []
    deletes: list[tuple] = []
    updates: list[tuple[tuple, tuple]] = []

    # Native update t-diffs (the paper's baseline keeps updates as
    # updates): when the *other* side is untouched this batch and the
    # update does not move the row across the join condition, a single
    # Du ⋈ R_post probe suffices — this is exactly the Section 6 cost
    # |Du|·a.  Anything trickier falls back to the delete+insert normal
    # form below.
    l_updates = list(left.updates)
    r_updates = list(right.updates)
    if right.is_empty() and pairs:
        fast = [
            (p, q) for p, q in l_updates if condition_preserved(p, q, lcols)
        ]
        l_updates = [x for x in l_updates if x not in fast]
        rows = [q for _, q in fast]
        buckets = probe(node.right, db_post, ((lpair, rpair)), rows, lcols)
        for pre_l, post_l in fast:
            for rr in buckets.get(l_key(post_l), ()):
                if combine(post_l, rr) is not None:
                    updates.append((pre_l + rr, post_l + rr))
    elif left.is_empty() and pairs:
        fast = [
            (p, q) for p, q in r_updates if condition_preserved(p, q, rcols)
        ]
        r_updates = [x for x in r_updates if x not in fast]
        rows = [q for _, q in fast]
        buckets = probe(node.left, db_post, ((rpair, lpair)), rows, rcols)
        for pre_r, post_r in fast:
            for lr in buckets.get(r_key(post_r), ()):
                if combine(lr, post_r) is not None:
                    updates.append((lr + pre_r, lr + post_r))

    # Normalize the remaining updates into delete+insert, track
    # exclusions for the cross terms, then re-pair at the end.
    l_ins = left.inserts + [p for _, p in l_updates]
    l_del = left.deletes + [p for p, _ in l_updates]
    r_ins = right.inserts + [p for _, p in r_updates]
    r_del = right.deletes + [p for p, _ in r_updates]

    # ΔL+ ⋈ R_post
    buckets = probe(node.right, db_post, ((lpair, rpair)), l_ins, lcols)
    for lr in l_ins:
        for rr in buckets.get(l_key(lr) if pairs else (), ()):
            combined = combine(lr, rr)
            if combined is not None:
                inserts.append(combined)
    # (L_post \ ΔL+) ⋈ ΔR+  (newly inserted left rows covered above)
    l_ins_keys = {tuple(lr) for lr in l_ins}
    buckets = probe(node.left, db_post, ((rpair, lpair)), r_ins, rcols)
    for rr in r_ins:
        for lr in buckets.get(r_key(rr) if pairs else (), ()):
            if tuple(lr) in l_ins_keys:
                continue
            combined = combine(lr, rr)
            if combined is not None:
                inserts.append(combined)
    # ΔL− ⋈ R_pre
    buckets = probe(node.right, db_pre, ((lpair, rpair)), l_del, lcols)
    for lr in l_del:
        for rr in buckets.get(l_key(lr) if pairs else (), ()):
            combined = combine(lr, rr)
            if combined is not None:
                deletes.append(combined)
    # L_pre ⋈ ΔR−, excluding left rows in ΔL− (already covered)
    l_del_keys = {tuple(lr) for lr in l_del}
    buckets = probe(node.left, db_pre, ((rpair, lpair)), r_del, rcols)
    for rr in r_del:
        for lr in buckets.get(r_key(rr) if pairs else (), ()):
            if tuple(lr) in l_del_keys:
                continue
            combined = combine(lr, rr)
            if combined is not None:
                deletes.append(combined)

    delta = TDelta(inserts=inserts, deletes=deletes, updates=updates)
    id_positions = [list(node.columns).index(c) for c in node.ids]
    return repair_updates(delta, id_positions)


def _union_delta(node: UnionAll, view, net, db_pre, db_post) -> TDelta:
    left = _t_delta(node.left, view, net, db_pre, db_post)
    right = _t_delta(node.right, view, net, db_pre, db_post)
    out = TDelta()
    for delta, b in ((left, 0), (right, 1)):
        out.inserts += [r + (b,) for r in delta.inserts]
        out.deletes += [r + (b,) for r in delta.deletes]
        out.updates += [(p + (b,), q + (b,)) for p, q in delta.updates]
    return out


def _semi_like_delta(node, view, net, db_pre, db_post, negated: bool) -> TDelta:
    left = _t_delta(node.left, view, net, db_pre, db_post)
    right = _t_delta(node.right, view, net, db_pre, db_post)
    pairs, _ = equi_join_pairs(node.condition, node.left.columns, node.right.columns)
    lcols = list(node.left.columns)
    rcols = list(node.right.columns)
    lpair = tuple(l for l, _ in pairs)
    rpair = tuple(r for _, r in pairs)
    combined_positions = {
        c: i for i, c in enumerate(node.left.columns + node.right.columns)
    }

    def survives(lr: tuple, db: Database) -> bool:
        """Membership test: no match for the antijoin, a match for the
        semijoin."""
        if pairs:
            values = tuple(lr[lcols.index(c)] for c in lpair)
            rel = fetch(node.right, db, Bindings(rpair, [values]))
        else:
            rel = fetch(node.right, db)
        matched = any(
            matches(node.condition, combined_positions, lr + rr) for rr in rel.rows
        )
        return matched != negated

    inserts: list[tuple] = []
    deletes: list[tuple] = []
    # Left-side changes, checked against the right post-state.
    for row in left.inserts:
        if survives(row, db_post):
            inserts.append(row)
    for row in left.deletes:
        if survives(row, db_pre):
            deletes.append(row)
    for pre, post in left.updates:
        before = survives(pre, db_pre)
        after = survives(post, db_post)
        if before and after:
            inserts.append(post)
            deletes.append(pre)
        elif before:
            deletes.append(pre)
        elif after:
            inserts.append(post)

    # Right-side changes: affected left rows re-checked.
    changed_left = {tuple(r) for r in left.inserts + left.deletes}
    changed_left |= {tuple(p) for p, _ in left.updates}
    changed_left |= {tuple(p) for _, p in left.updates}

    def affected_left(rows: list[tuple], db: Database) -> list[tuple]:
        if not rows:
            return []
        if pairs:
            values = [tuple(r[rcols.index(c)] for c in rpair) for r in rows]
            rel = fetch(node.left, db, Bindings(lpair, values))
        else:
            rel = fetch(node.left, db)
        return [r for r in rel.rows if tuple(r) not in changed_left]

    r_added = right.inserts + [p for _, p in right.updates]
    r_removed = right.deletes + [p for p, _ in right.updates]
    affected = list(affected_left(r_added, db_post))
    affected += [
        lr
        for lr in affected_left(r_removed, db_pre)
        if tuple(lr) not in {tuple(a) for a in affected}
    ]
    for lr in affected:
        in_pre = survives(lr, db_pre)
        in_post = survives(lr, db_post)
        if in_pre and not in_post:
            deletes.append(lr)
        elif in_post and not in_pre:
            inserts.append(lr)

    # Dedupe (several right rows may affect the same left row).
    delta = TDelta(
        inserts=list(dict.fromkeys(map(tuple, inserts))),
        deletes=list(dict.fromkeys(map(tuple, deletes))),
    )
    id_positions = [list(node.columns).index(c) for c in node.ids]
    return repair_updates(delta, id_positions)


def _groupby_delta(node: GroupBy, view, net, db_pre, db_post) -> TDelta:
    child = _t_delta(node.child, view, net, db_pre, db_post)
    if child.is_empty():
        return TDelta()
    if all(a.func in ("sum", "count", "avg") for a in node.aggs):
        return _groupby_delta_associative(node, view, child)
    return _groupby_delta_recompute(node, view, child, db_post)


def _output_table(node: GroupBy, view: TupleView) -> Table:
    if node.node_id in view.agg_outputs:
        return view.agg_outputs[node.node_id]
    return view.table


def _groupby_delta_associative(node: GroupBy, view: TupleView, child: TDelta) -> TDelta:
    """Group deltas from the full t-diff rows (free — Appendix A's
    pipelined γ over Du_Vspj), then read-modify-write the affected groups
    of the output materialization."""
    from ..core.rules.aggregate import apply_group_deltas, group_deltas_from_changes

    deltas = group_deltas_from_changes(node, child.as_changes())
    out_table = _output_table(node, view)
    opcache = view.opcaches[node.node_id]
    with out_table.counters.phase("view_update"):
        # This re-phases nested work (we are inside the view_diff scope);
        # the bucket-delta phase span keeps attribution exact either way.
        with obs.span(
            "phase:view_update", kind="phase", counters=out_table.counters,
            phase_of="view_update", phase="view_update", op="GroupBy.apply",
        ):
            applied, kinds = apply_group_deltas(node, deltas, out_table, opcache)
    delta = TDelta()
    for change, kind in zip(applied, kinds):
        if kind == INSERT:
            delta.inserts.append(change[1])
        elif kind == DELETE:
            delta.deletes.append(change[0])
        else:
            delta.updates.append(change)
    # The output materialization is already updated; signal the caller.
    delta.already_applied = out_table
    return delta


def _groupby_delta_recompute(
    node: GroupBy, view: TupleView, child: TDelta, db_post: Database
) -> TDelta:
    """min/max path: recompute the affected groups from the post state."""
    key_idx = [list(node.child.columns).index(k) for k in node.keys]
    groups: set[tuple] = set()
    for pre, post in child.as_changes():
        if pre is not None:
            groups.add(tuple(pre[i] for i in key_idx))
        if post is not None:
            groups.add(tuple(post[i] for i in key_idx))
    # sort_rows, not sorted: group keys may hold NULLs / mixed types.
    ordered_groups = sort_rows(groups)
    recomputed = fetch(node, db_post, Bindings(node.keys, ordered_groups))
    out_key = [recomputed.position(k) for k in node.keys]
    new_rows = {tuple(r[i] for i in out_key): r for r in recomputed.rows}
    out_table = _output_table(node, view)
    delta = TDelta()
    for g in ordered_groups:
        keys = out_table.locate(node.keys, g)
        old_row = out_table.get_uncounted(keys[0]) if keys else None
        new_row = new_rows.get(g)
        if old_row is None and new_row is None:
            continue
        if old_row is None:
            out_table.insert_checked(new_row)
            delta.inserts.append(new_row)
        elif new_row is None:
            out_table.delete_at(keys[0])
            delta.deletes.append(old_row)
        elif old_row != new_row:
            out_table.write_at(
                keys[0],
                {
                    a.name: new_row[out_table.schema.position(a.name)]
                    for a in node.aggs
                },
            )
            delta.updates.append((old_row, new_row))
    delta.already_applied = out_table
    return delta
