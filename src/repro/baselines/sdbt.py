"""Simulated DBToaster (SDBT) — the paper's Section 7.3 comparator.

DBToaster proper compiles higher-order deltas to native code over
main-memory maps; the paper compares against a "DBToaster-inspired
implementation that runs on top of a DBMS and uses the same intermediate
views as the original DBToaster implementation (up to aggregation
push-down)", in two variants:

* **SDBT-fixed** — intermediate views only for the base tables that are
  allowed to change (the paper: only ``parts``);
* **SDBT-streams** — intermediate views for *every* base table.

For the evaluated view class — an aggregate over an SPJ tree — DBToaster
materializes, per changeable table T, a map answering T-deltas directly:
the SPJ result *with T's own non-key attributes projected away* and the
conditions over them dropped, indexed by T's key.  A delta on T then
probes its map (no base-table joins), while every *other* table's map
that embeds T's attributes must itself be maintained — that maintenance
is exactly why SDBT-streams loses to idIVM while SDBT-fixed edges it out
(no cache writes on the probe map), reproducing Figure 12's C/D columns.

The paper also allowed SDBT native update t-diffs (rather than
DBToaster's insert/delete pairs); we do the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..algebra.delta_eval import Bindings, fetch
from ..algebra.evaluate import evaluate_plan, materialize
from ..algebra.plan import GroupBy, Join, PlanNode, Project, Scan, Select
from ..core.diffs import DELETE, INSERT, UPDATE
from ..core.engine import MaintenanceReport, _reconstruct_pre
from ..core.idinfer import annotate_plan
from ..core.modlog import ModificationLog, fold_log
from ..core.rules.aggregate import (
    OpCacheSpec,
    apply_group_deltas,
    group_deltas_from_changes,
)
from ..errors import PlanError, ScriptError
from ..expr import Col, columns_of
from ..storage import Database, Table, TableSchema


@dataclass
class _SpjShape:
    """Decomposition of a γ-over-SPJ plan."""

    gnode: GroupBy
    spj: PlanNode            # the γ's child (flat SPJ subview)
    table_columns: dict[str, set[str]]   # base table -> its SPJ columns
    key_columns: dict[str, list[str]]    # base table -> its key's SPJ names


def _decompose(plan: PlanNode) -> _SpjShape:
    if not isinstance(plan, GroupBy):
        raise PlanError(
            "SDBT simulation covers aggregate-over-SPJ views (the class the "
            "paper evaluates); the plan root must be a grouping operator"
        )
    gnode = plan
    spj = gnode.child
    for node in spj.walk():
        if isinstance(node, GroupBy):
            raise PlanError("SDBT simulation does not support nested aggregates")
    origins = _origins(spj)
    table_columns: dict[str, set[str]] = {}
    for column, sources in origins.items():
        for table, _base in sources:
            table_columns.setdefault(table, set()).add(column)
    key_columns: dict[str, list[str]] = {}
    for node in spj.walk():
        if not isinstance(node, Scan):
            continue
        names: list[str] = []
        for key_col in node.schema.key:
            carriers = [
                column
                for column, sources in origins.items()
                if (node.table, key_col) in sources
            ]
            if not carriers:
                raise PlanError(
                    f"key column {key_col!r} of {node.table!r} does not reach "
                    f"the SPJ output; SDBT maps cannot be keyed"
                )
            names.append(sorted(carriers)[0])
        key_columns[node.table] = names
    return _SpjShape(gnode, spj, table_columns, key_columns)


def _origins(spj: PlanNode) -> dict[str, set[tuple[str, str]]]:
    """SPJ output column -> lineage set of (base table, base column).

    Equality-aware: an equi-join conjunct merges the two columns'
    lineages, so the single copy a natural-join lowering keeps still
    carries both tables' provenance (bare-column passthroughs only,
    which covers builder-produced SPJ plans)."""
    from ..expr import equi_join_pairs

    def visit(node: PlanNode) -> dict[str, set[tuple[str, str]]]:
        if isinstance(node, Scan):
            return {c: {(node.table, c)} for c in node.columns}
        if isinstance(node, Select):
            return visit(node.child)
        if isinstance(node, Project):
            child = visit(node.child)
            return {
                name: set(child[expr.name])
                for name, expr in node.items
                if isinstance(expr, Col) and expr.name in child
            }
        if isinstance(node, Join):
            out: dict[str, set[tuple[str, str]]] = {}
            for c in node.children:
                out.update(visit(c))
            if node.condition is not None:
                pairs, _ = equi_join_pairs(
                    node.condition, node.left.columns, node.right.columns
                )
                for lcol, rcol in pairs:
                    merged = out.get(lcol, set()) | out.get(rcol, set())
                    out[lcol] = merged
                    out[rcol] = set(merged)
            return out
        raise PlanError(f"SDBT simulation cannot handle operator {node.label()!r}")

    return visit(spj)


def _relaxed_spj(spj: PlanNode, own_columns: set[str]) -> PlanNode:
    """Copy of *spj* with selection conjuncts over *own_columns* dropped.

    A table's map must contain rows regardless of the current values of
    that table's own attributes (they can change under it); the dropped
    conditions are re-checked against the diff values at probe time.
    Conditions over the table's attributes inside join predicates are not
    supported (raise), matching DBToaster's per-relation map structure.
    """
    from ..expr import all_of, conjuncts_of

    def rebuild(node: PlanNode) -> PlanNode:
        if isinstance(node, Scan):
            return Scan(node.schema, alias=node.alias)
        if isinstance(node, Select):
            child = rebuild(node.child)
            kept = [
                c
                for c in conjuncts_of(node.predicate)
                if not (columns_of(c) & own_columns)
            ]
            if not kept:
                return child
            return Select(child, all_of(*kept))
        if isinstance(node, Project):
            return Project(rebuild(node.child), node.items)
        if isinstance(node, Join):
            if node.condition is not None and (
                columns_of(node.condition) & own_columns
            ):
                non_key_cols = own_columns
                pairs_cols = columns_of(node.condition) & non_key_cols
                raise PlanError(
                    f"SDBT maps cannot relax join conditions over "
                    f"{sorted(pairs_cols)}; move them into a selection"
                )
            return Join(rebuild(node.left), rebuild(node.right), node.condition)
        raise PlanError(f"SDBT simulation cannot handle operator {node.label()!r}")

    return annotate_plan(rebuild(spj))


class SdbtView:
    """The top view plus its per-table DBToaster-style maps."""

    def __init__(self, name: str, plan: GroupBy, table: Table, shape: _SpjShape):
        self.name = name
        self.plan = plan
        self.table = table
        self.shape = shape
        #: base table -> (map table, its columns in SPJ naming)
        self.maps: dict[str, Table] = {}
        self.map_columns: dict[str, list[str]] = {}
        #: base table -> SPJ plan with its own selection conjuncts dropped
        self.relaxed: dict[str, PlanNode] = {}
        self.opcache: Optional[Table] = None


class SdbtEngine:
    """Simulated DBToaster over the instrumented storage engine."""

    def __init__(self, db: Database, streamed_tables: Optional[Sequence[str]] = None):
        """*streamed_tables* = tables allowed to change.  None means all
        base tables of each view (SDBT-streams); a restricted list gives
        SDBT-fixed."""
        self.db = db
        self.streamed_tables = (
            set(streamed_tables) if streamed_tables is not None else None
        )
        self.log = ModificationLog(db)
        self.views: dict[str, SdbtView] = {}

    # ------------------------------------------------------------------
    def define_view(self, name: str, plan: PlanNode) -> SdbtView:
        """Materialize the view plus one DBToaster-style map per streamed
        base table (relaxed of its own selection conjuncts)."""
        if name in self.views:
            raise ScriptError(f"view {name!r} already defined")
        annotated = annotate_plan(plan)
        if not isinstance(annotated, GroupBy):
            raise PlanError("SDBT views must be aggregates over SPJ")
        shape = _decompose(annotated)
        table = materialize(annotated, self.db, name)
        view = SdbtView(name, annotated, table, shape)
        spec = OpCacheSpec(annotated, f"{name}__sdbt_opc")
        child_rows = evaluate_plan(shape.spj, self.db)
        view.opcache = spec.build(child_rows, self.db.counters)

        streamed = (
            set(shape.key_columns)
            if self.streamed_tables is None
            else set(shape.key_columns) & self.streamed_tables
        )
        spj_ids = tuple(shape.spj.ids)
        origins = _origins(shape.spj)
        for base_table in sorted(streamed):
            own_non_key = shape.table_columns.get(base_table, set()) - set(
                shape.key_columns[base_table]
            )
            shared = {c for c in own_non_key if len(origins.get(c, set())) > 1}
            if shared:
                raise PlanError(
                    f"SDBT maps cannot stream {base_table!r}: its non-key "
                    f"columns {sorted(shared)} participate in join "
                    f"equalities"
                )
            keep = [c for c in shape.spj.columns if c not in own_non_key]
            key = [c for c in spj_ids if c in keep]
            if not key:
                raise PlanError(
                    f"cannot key SDBT map for {base_table!r}: its attributes "
                    f"cover the SPJ identifiers"
                )
            relaxed = _relaxed_spj(shape.spj, own_non_key)
            view.relaxed[base_table] = relaxed
            relaxed_result = evaluate_plan(relaxed, self.db)
            schema = TableSchema(f"{name}__map_{base_table}", tuple(keep), tuple(key))
            map_table = Table(schema, counters=self.db.counters)
            idx = [relaxed_result.position(c) for c in keep]
            seen = set()
            for row in relaxed_result.rows:
                projected = tuple(row[i] for i in idx)
                if projected not in seen:
                    seen.add(projected)
                    map_table.insert_uncounted(projected)
            map_table.create_index(tuple(shape.key_columns[base_table]))
            view.maps[base_table] = map_table
            view.map_columns[base_table] = keep
        self.db.counters.reset()
        self.views[name] = view
        return view

    # ------------------------------------------------------------------
    def maintain(self, name: Optional[str] = None) -> dict[str, MaintenanceReport]:
        """Sequential per-table delta evaluation against the maps."""
        targets = [name] if name is not None else list(self.views)
        entries = self.log.take()
        db_post = self.db
        db_pre = _reconstruct_pre(self.db, entries)
        net = fold_log(entries, db_post)
        counters = self.db.counters
        reports: dict[str, MaintenanceReport] = {}
        for view_name in targets:
            view = self.views[view_name]
            before = counters.snapshot()
            self._maintain_view(view, net, db_pre, db_post)
            after = counters.snapshot()
            report = MaintenanceReport(view_name)
            for phase, counts in after.items():
                prior = before.get(phase)
                report.phase_counts[phase] = (
                    counts - prior if prior is not None else counts
                )
            reports[view_name] = report
        return reports

    # ------------------------------------------------------------------
    def _maintain_view(self, view: SdbtView, net, db_pre, db_post) -> None:
        """Sequential per-table delta evaluation (DBToaster's first-order
        semantics): table i's delta is computed against a hybrid state
        where already-processed tables are post and the rest pre, with
        the maps advanced in lock step — this is what prevents a combo
        created by two same-batch inserts from being counted twice."""
        shape = view.shape
        counters = self.db.counters
        changes: list[tuple] = []
        hybrid = db_pre.copy()
        hybrid.counters = counters
        for table in hybrid.tables.values():
            table.counters = counters
        affected = sorted(
            t for t, per_key in net.items()
            if t in shape.key_columns and per_key
        )
        for base_table in affected:
            if base_table not in view.maps:
                raise ScriptError(
                    f"SDBT-fixed received changes on unstreamed table "
                    f"{base_table!r}; re-define with it streamed"
                )
        for base_table in affected:
            per_key = net[base_table]
            with counters.phase("view_diff"):
                changes.extend(
                    self._update_delete_changes(view, base_table, per_key, hybrid)
                )
            _advance_hybrid(hybrid, base_table, per_key)
            with counters.phase("view_diff"):
                changes.extend(
                    self._insert_changes(view, base_table, per_key, hybrid)
                )
            with counters.phase("map_update"):
                self._maintain_maps(view, base_table, per_key, hybrid)
        deltas = group_deltas_from_changes(shape.gnode, changes)
        with counters.phase("view_update"):
            apply_group_deltas(shape.gnode, deltas, view.table, view.opcache)

    # ------------------------------------------------------------------
    def _update_delete_changes(
        self, view: SdbtView, base_table: str, per_key, hybrid
    ) -> list[tuple]:
        """(pre_row, post_row) SPJ-row changes for updates (via the
        T-map — no base joins, DBToaster's headline property) and
        deletes (fetched from the hybrid state *before* applying this
        table's changes)."""
        shape = view.shape
        map_table = view.maps[base_table]
        map_cols = view.map_columns[base_table]
        key_cols = shape.key_columns[base_table]
        spj_cols = list(shape.spj.columns)
        origins = _origins(shape.spj)
        own = {
            c: next(iter(sources))[1]
            for c, sources in origins.items()
            if len(sources) == 1 and next(iter(sources))[0] == base_table
        }
        base_schema = self.db.table(base_table).schema
        changes: list[tuple] = []

        def complete(map_row: tuple, base_row: tuple) -> tuple:
            values = dict(zip(map_cols, map_row))
            for spj_col, base_col in own.items():
                values[spj_col] = base_row[base_schema.position(base_col)]
            return tuple(values[c] for c in spj_cols)

        for key, change in per_key.items():
            if change.kind != UPDATE:
                continue
            for map_row in map_table.lookup(tuple(key_cols), key):
                pre = complete(map_row, change.pre_row)
                post = complete(map_row, change.post_row)
                pre_ok = self._row_passes(view, base_table, pre)
                post_ok = self._row_passes(view, base_table, post)
                changes.append(
                    (pre if pre_ok else None, post if post_ok else None)
                )
        del_keys = [k for k, c in per_key.items() if c.kind == DELETE]
        if del_keys:
            rel = fetch(shape.spj, hybrid, Bindings(tuple(key_cols), del_keys))
            changes.extend((r, None) for r in rel.rows)
        return changes

    def _insert_changes(
        self, view: SdbtView, base_table: str, per_key, hybrid
    ) -> list[tuple]:
        """Insert deltas, fetched from the hybrid state *after* applying
        this table's changes (sequential first-order semantics)."""
        shape = view.shape
        key_cols = shape.key_columns[base_table]
        ins_keys = [k for k, c in per_key.items() if c.kind == INSERT]
        if not ins_keys:
            return []
        rel = fetch(shape.spj, hybrid, Bindings(tuple(key_cols), ins_keys))
        return [(None, r) for r in rel.rows]

    def _row_passes(self, view: SdbtView, base_table: str, spj_row: tuple) -> bool:
        """Re-check the selection conditions over *base_table*'s own
        attributes (they were dropped when building the map)."""
        shape = view.shape
        own_cols = shape.table_columns.get(base_table, set())
        positions = {c: i for i, c in enumerate(shape.spj.columns)}
        from ..expr import matches

        for node in shape.spj.walk():
            if isinstance(node, Select) and (columns_of(node.predicate) & own_cols):
                if not matches(node.predicate, positions, spj_row):
                    return False
        return True

    # ------------------------------------------------------------------
    def _maintain_maps(self, view: SdbtView, base_table: str, per_key, hybrid) -> None:
        """Bring every map embedding *base_table*'s data up to date."""
        shape = view.shape
        key_cols = tuple(shape.key_columns[base_table])
        origins = _origins(shape.spj)
        own = {
            c: next(iter(sources))[1]
            for c, sources in origins.items()
            if len(sources) == 1 and next(iter(sources))[0] == base_table
        }
        for target, map_table in view.maps.items():
            map_cols = view.map_columns[target]
            if target == base_table and all(
                c.kind == UPDATE for c in per_key.values()
            ):
                continue  # own attributes are projected away of this map
            embeds = {c for c in map_cols if c in own and c not in key_cols}
            base_schema = self.db.table(base_table).schema
            for key, change in per_key.items():
                if change.kind == UPDATE:
                    if not embeds:
                        continue
                    new_values = {
                        c: change.post_row[base_schema.position(own[c])]
                        for c in embeds
                    }
                    for map_key in map_table.locate(key_cols, key):
                        map_table.write_at(map_key, new_values)
                elif change.kind == DELETE:
                    for map_key in map_table.locate(key_cols, key):
                        map_table.delete_at(map_key)
                else:  # INSERT: recompute the new map rows (relaxed plan)
                    rel = fetch(
                        view.relaxed[target], hybrid, Bindings(key_cols, [key])
                    )
                    idx = [rel.position(c) for c in map_cols]
                    seen: set[tuple] = set()
                    for row in rel.rows:
                        projected = tuple(row[i] for i in idx)
                        if projected in seen:
                            continue
                        seen.add(projected)
                        if map_table.get_uncounted(
                            map_table.schema.key_of(projected)
                        ) is None:
                            map_table.insert_checked(projected)


def _advance_hybrid(hybrid: Database, base_table: str, per_key) -> None:
    """Apply one table's net changes to the hybrid state (uncounted)."""
    table = hybrid.table(base_table)
    for key, change in per_key.items():
        if change.kind == INSERT:
            table.insert_uncounted(change.post_row)
        elif change.kind == DELETE:
            table.delete_uncounted(key)
        else:
            table.delete_uncounted(key)
            table.insert_uncounted(change.post_row)
