"""Ad-hoc querying: run one-off SQL against a database.

Materialized views are for queries you keep; for everything else::

    from repro import Database, query

    rows = query(db, "SELECT did, SUM(price) AS cost FROM ... GROUP BY did")

Returns the result :class:`~repro.algebra.Relation` (columns + rows).
"""

from __future__ import annotations

from .algebra import Relation, evaluate_plan
from .sql import sql_to_plan
from .storage import Database


def query(db: Database, sql: str) -> Relation:
    """Parse, translate and evaluate *sql* against *db*."""
    return evaluate_plan(sql_to_plan(db, sql), db)
