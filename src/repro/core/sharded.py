"""Shard-parallel maintenance: :class:`ShardedEngine`.

A drop-in :class:`~repro.core.engine.IdIvmEngine` that runs each
maintenance round across N shard workers when the round's ∆-script is
provably shard-local (see :mod:`repro.shard.router`), and falls back to
a single global execution (*broadcast* — bit-for-bit the base engine's
behaviour) otherwise.

The sharding model is **shared-database**: there is exactly one live
:class:`~repro.storage.Database`; what gets partitioned is the round's
i-diff *instance rows*, split by anchor key.  Every worker executes the
full ∆-script over its row subset in a private :class:`IrContext`.
Because the router proved every counted operation anchor-local, the
workers read and write disjoint rows of the shared caches and view,
the union of their outputs equals the single-shard result, and their
access counts — routed into per-shard :class:`CounterSet`\\ s by
:class:`~repro.shard.ShardRoutingCounters` — sum *exactly* to the
single-shard counts.

Thread-safety notes: counted table writes and index builds take the
table's lock; span-id allocation is locked; per-shard counters are
thread-private.  Metric counter increments from workers may race (a
lost increment of a monitoring gauge), which is accepted — access
counts, the paper's metric, never travel that path.
"""

from __future__ import annotations

import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SchemaError, UnknownTableError
from ..obs import metrics
from ..obs import spans as obs
from ..obs.hist import LogHistogram
from ..shard.counters import ShardRoutingCounters
from ..shard.router import RoutePlan, describe_plan, plan_route, split_instances
from ..storage import CounterSet, Database
from .engine import IdIvmEngine, MaintenanceReport, MaterializedView, _reconstruct_pre
from .ir_exec import IrContext
from .modlog import populate_instances
from .script import execute_script


@dataclass
class ShardedMaintenanceReport(MaintenanceReport):
    """A round report plus how it was routed.

    ``phase_counts`` holds the *merged* per-phase counts (shard sums in
    shard order for parallel rounds); ``shard_reports`` keeps each
    worker's own report for critical-path analysis.
    """

    parallel: bool = False
    anchor: Optional[str] = None
    broadcast_reason: Optional[str] = None
    shard_reports: list[MaintenanceReport] = field(default_factory=list)
    #: distribution of per-shard total cost for parallel rounds (one
    #: observation per worker); its sum reconciles *exactly* with
    #: :attr:`total_cost` — shard counters are complete, no tolerance.
    shard_cost_hist: Optional[LogHistogram] = None

    def critical_path(self) -> int:
        """The busiest shard's cost — the parallel wall-clock proxy.

        For broadcast rounds this is the whole round's cost (one worker
        did everything).
        """
        if not self.shard_reports:
            return self.total_cost
        return max(r.total_cost for r in self.shard_reports)


class ShardedEngine(IdIvmEngine):
    """ID-based IVM with hash-partitioned parallel ∆-script execution."""

    def __init__(
        self,
        db: Database,
        shards: int = 2,
        max_workers: Optional[int] = None,
        **kwargs,
    ):
        if shards < 1:
            raise SchemaError(f"need at least one shard, got {shards}")
        self.shards = shards
        self.max_workers = max_workers
        # Install the routing counter facade BEFORE the base constructor
        # so every table created from here on (caches, opcaches) counts
        # through it.
        self._router = ShardRoutingCounters.install(db)
        super().__init__(db, **kwargs)

    # ------------------------------------------------------------------
    def maintain(self, name: Optional[str] = None) -> dict[str, MaintenanceReport]:
        """Bring the named view (default: all) up to date, routing each
        round to parallel shard workers when provably safe."""
        targets = [name] if name is not None else list(self.views)
        entries = self.log.take()
        counters = self.db.counters
        round_started = time.perf_counter()
        metrics.counter("engine.maintain_rounds").inc()
        metrics.histogram("engine.log_entries").observe(len(entries))
        with obs.span(
            "maintain",
            kind="engine",
            counters=counters,
            engine=type(self).__name__,
            n_log_entries=len(entries),
            views=",".join(targets),
            shards=self.shards,
        ):
            with obs.span("reconstruct_pre", kind="engine", counters=counters):
                db_pre = _reconstruct_pre(self.db, entries)
            reports: dict[str, MaintenanceReport] = {}
            for view_name in targets:
                view = self.views.get(view_name)
                if view is None:
                    raise UnknownTableError(f"no view named {view_name!r}")
                view_started = time.perf_counter()
                with obs.span(
                    f"view:{view_name}", kind="view", counters=counters,
                    view=view_name,
                ) as vsp:
                    instances = populate_instances(
                        view.generated.base_schemas, entries, db_pre
                    )
                    plan = plan_route(
                        view.generated.script, instances, self.db, self.shards
                    )
                    if plan.parallel:
                        metrics.counter("shard.rounds_parallel").inc()
                        report = self._maintain_parallel(
                            view, view_name, instances, db_pre, entries, plan
                        )
                    else:
                        metrics.counter("shard.rounds_broadcast").inc()
                        report = self._maintain_broadcast(
                            view, view_name, instances, db_pre, entries, plan
                        )
                    reports[view_name] = report
                    vsp.set(
                        total_cost=report.total_cost,
                        route=describe_plan(plan),
                        phase_counts={
                            phase: counts.as_dict()
                            for phase, counts in report.phase_counts.items()
                            if phase != "__total__"
                        },
                    )
                metrics.histogram("engine.round_cost").observe(report.total_cost)
                metrics.loghist(
                    f"view.round_seconds.{view_name}", unit="seconds"
                ).observe(time.perf_counter() - view_started)
        self._finish_round(reports, entries, round_started)
        return reports

    # ------------------------------------------------------------------
    def _fresh_context(
        self, view: MaterializedView, instances, db_pre: Database, entries
    ) -> IrContext:
        ctx = IrContext(
            db_pre, self.db, diffs=instances, caches=view.caches
        )
        ctx.operator_caches = view.operator_caches
        modified = {entry.table for entry in entries}
        ctx.unchanged_tables = set(self.db.table_names()) - modified
        return ctx

    def _maintain_broadcast(
        self,
        view: MaterializedView,
        view_name: str,
        instances,
        db_pre: Database,
        entries,
        plan: RoutePlan,
    ) -> ShardedMaintenanceReport:
        """One global execution — exactly the base engine's round."""
        counters = self.db.counters
        ctx = self._fresh_context(view, instances, db_pre, entries)
        before = counters.snapshot()
        execute_script(view.generated.script, ctx, counters)
        after = counters.snapshot()
        report = ShardedMaintenanceReport(
            view_name, parallel=False, broadcast_reason=plan.reason
        )
        for phase, counts in after.items():
            prior = before.get(phase)
            report.phase_counts[phase] = (
                counts - prior if prior is not None else counts
            )
        report.diff_sizes = {k: len(v) for k, v in ctx.diffs.items()}
        if view.cost_model is not None:
            report.predicted_counts = view.cost_model.predict_from_diff_sizes(
                report.diff_sizes
            )
        return report

    def _maintain_parallel(
        self,
        view: MaterializedView,
        view_name: str,
        instances,
        db_pre: Database,
        entries,
        plan: RoutePlan,
    ) -> ShardedMaintenanceReport:
        """Split instance rows by anchor key; one worker per shard."""
        router = self._router
        n = self.shards
        script = view.generated.script
        shard_instances = split_instances(plan, instances, n)
        shard_counters = [CounterSet() for _ in range(n)]
        contexts = [
            self._fresh_context(view, shard_instances[i], db_pre, entries)
            for i in range(n)
        ]

        # Pre-create the worker-observed metrics from the coordinator so
        # shard threads only ever hit the registry's read path.
        apply_seconds = metrics.loghist("shard.apply_seconds", unit="seconds")
        shard_cost = metrics.loghist("shard.cost", unit="accesses")

        def run_shard(i: int) -> None:
            sc = shard_counters[i]
            started = time.perf_counter()
            with router.activate(sc):
                with obs.span(
                    f"shard:{i}", kind="shard", counters=sc,
                    shard=i, view=view_name, anchor=plan.anchor,
                ):
                    execute_script(script, contexts[i], sc)
            apply_seconds.observe(time.perf_counter() - started)
            shard_cost.observe(sc.total.total)

        workers = min(self.max_workers or n, n)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # copy_context() per submission: each worker's spans parent
            # under the current view span.
            futures = [
                pool.submit(contextvars.copy_context().run, run_shard, i)
                for i in range(n)
            ]
            for future in futures:
                future.result()

        report = ShardedMaintenanceReport(
            view_name, parallel=True, anchor=plan.anchor
        )
        report.shard_cost_hist = LogHistogram("shard.round_cost", unit="accesses")
        merged_sizes: dict[str, int] = {}
        for i, sc in enumerate(shard_counters):
            report.shard_cost_hist.observe(sc.total.total)
            snapshot = sc.snapshot()
            shard_report = MaintenanceReport(f"{view_name}@shard{i}")
            shard_report.phase_counts = snapshot
            shard_report.diff_sizes = {
                k: len(v) for k, v in contexts[i].diffs.items()
            }
            report.shard_reports.append(shard_report)
            for phase, counts in snapshot.items():
                bucket = report.phase_counts.get(phase)
                if bucket is None:
                    report.phase_counts[phase] = counts.copy()
                else:
                    bucket.add(counts)
            for k, v in shard_report.diff_sizes.items():
                merged_sizes[k] = merged_sizes.get(k, 0) + v
            # Keep the database-wide totals truthful: fold each worker's
            # counts into the base counter set.
            ShardRoutingCounters.fold(router.base, sc)
        report.diff_sizes = merged_sizes
        # Shard counts sum exactly to the single-shard counts, so the
        # merged diff sizes reconcile against the same global prediction.
        if view.cost_model is not None:
            report.predicted_counts = view.cost_model.predict_from_diff_sizes(
                report.diff_sizes
            )
        return report
