"""Shard-parallel maintenance: :class:`ShardedEngine`.

A drop-in :class:`~repro.core.engine.IdIvmEngine` that runs each
maintenance round across N shard workers when the round's ∆-script is
provably shard-local (see :mod:`repro.shard.router`), and falls back to
a single global execution (*broadcast* — bit-for-bit the base engine's
behaviour) otherwise.

The sharding model is **shared-database**: there is exactly one live
:class:`~repro.storage.Database`; what gets partitioned is the round's
i-diff *instance rows*, split by anchor key.  Every worker executes the
full ∆-script over its row subset in a private :class:`IrContext`.
Because the router proved every counted operation anchor-local, the
workers read and write disjoint rows of the shared caches and view,
the union of their outputs equals the single-shard result, and their
access counts — routed into per-shard :class:`CounterSet`\\ s by
:class:`~repro.shard.ShardRoutingCounters` — sum *exactly* to the
single-shard counts.

That disjointness claim is *checked*, twice, rather than trusted: the
static interference pass (``repro.analysis.interference``, rules
RACE6xx) re-proves the per-round write-footprint disjointness at lint /
define time, and the **dynamic race detector** — ``race_check=True`` on
this engine — verifies it at run time by collecting every worker's
captured write-set per parallel round and asserting pairwise
key-disjointness before the round's effects are merged.  Under
``race_check="strict"`` an overlap raises
:class:`~repro.errors.ShardRaceError` (naming the table, key and
shards); under plain ``True`` it records a ``shard.race_overlaps``
metric and the overlap list on the round report.  Both worker backends
honor it, at different points of the same contract: the thread backend
routes each shared table's capture stream to the writing worker via a
context variable, the process backend checks the per-worker write-sets
it already receives before replaying them onto the coordinator.

Two worker backends share that contract:

* ``backend="thread"`` (default) — workers on a thread pool over the
  shared tables.  Access counts scale; wall-clock time does not (the
  GIL serializes the interpreters).
* ``backend="process"`` — long-lived worker processes, each owning a
  replica of the database and view caches (:mod:`repro.shard.workers`).
  Per-round inputs travel in the compact columnar wire format of
  :mod:`repro.core.wire`; workers return exact counter snapshots plus
  replayable write-sets that the coordinator merges back, so counts
  still reconcile exactly while the ∆-scripts execute on separate
  cores.  Call :meth:`ShardedEngine.close` (or use the engine as a
  context manager) to shut the workers down.

Thread-safety notes: counted table writes and index builds take the
table's lock; span-id allocation is locked; per-shard counters are
thread-private; metric counters and histograms accumulate into
per-thread cells that fold losslessly on read (no lost increments —
see :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SchemaError, ShardRaceError, UnknownTableError
from ..obs import metrics
from ..obs import spans as obs
from ..obs.hist import LogHistogram
from ..shard.counters import ShardRoutingCounters
from ..shard.router import (
    RoutePlan,
    describe_plan,
    force_route,
    plan_route,
    split_instances,
)
from ..shard.workers import ProcessShardPool, build_blueprint, tagged_tables
from ..storage import CounterSet, Database
from . import wire
from .engine import IdIvmEngine, MaintenanceReport, MaterializedView, _reconstruct_pre
from .ir_exec import IrContext
from .modlog import populate_instances
from .script import execute_script

BACKENDS = ("thread", "process")

#: Shard index of the currently-executing thread-backend worker; the
#: routed capture sinks read it to attribute a shared table's write
#: stream to the worker that produced it.
_CURRENT_SHARD: contextvars.ContextVar[Optional[int]] = contextvars.ContextVar(
    "repro_current_shard", default=None
)


class _RoutedSink:
    """Capture sink for shared tables under the thread backend.

    ``Table.begin_capture`` appends every counted write to one sink; with
    N workers on the *same* table object that stream interleaves.  This
    sink de-interleaves it at the source: each append lands in the
    per-shard list of the worker doing the write (read from
    :data:`_CURRENT_SHARD`), so each list has a single writer thread and
    needs no locking.  Coordinator writes outside any worker are dropped
    — between arming and disarming the coordinator performs none.
    """

    __slots__ = ("per_shard",)

    def __init__(self, n_shards: int):
        self.per_shard: list[list[tuple]] = [[] for _ in range(n_shards)]

    def append(self, op: tuple) -> None:
        shard = _CURRENT_SHARD.get()
        if shard is not None:
            self.per_shard[shard].append(op)


def _writeset_overlaps(
    per_shard: list[dict[str, list[tuple]]],
) -> list[tuple[str, tuple, tuple[int, ...]]]:
    """Pairwise key-disjointness check over per-shard write-sets.

    *per_shard* maps, per shard index, capture tag -> replayable ops.
    Returns every (tag, key, shard indices) written by more than one
    shard.  Index builds (``"x"`` ops) are idempotent DDL, not row
    writes, and are excluded.
    """
    owners: dict[tuple[str, tuple], set[int]] = {}
    for shard, writes in enumerate(per_shard):
        for tag, ops in writes.items():
            for op in ops:
                if op[0] == "x":
                    continue
                owners.setdefault((tag, op[1]), set()).add(shard)
    overlaps = [
        (tag, key, tuple(sorted(shards)))
        for (tag, key), shards in owners.items()
        if len(shards) > 1
    ]
    overlaps.sort(key=lambda item: (item[0], repr(item[1])))
    return overlaps


@dataclass
class ShardedMaintenanceReport(MaintenanceReport):
    """A round report plus how it was routed.

    ``phase_counts`` holds the *merged* per-phase counts (shard sums in
    shard order for parallel rounds); ``shard_reports`` keeps each
    worker's own report for critical-path analysis.
    """

    parallel: bool = False
    anchor: Optional[str] = None
    broadcast_reason: Optional[str] = None
    backend: str = "thread"
    shard_reports: list[MaintenanceReport] = field(default_factory=list)
    #: distribution of per-shard total cost for parallel rounds (one
    #: observation per worker); its sum reconciles *exactly* with
    #: :attr:`total_cost` — shard counters are complete, no tolerance.
    shard_cost_hist: Optional[LogHistogram] = None
    #: distribution of per-worker wall clocks for parallel rounds (one
    #: observation per worker, seconds).  Durations are measured inside
    #: each worker (``perf_counter`` deltas), so they are comparable
    #: across processes — raw monotonic readings never cross the wire.
    shard_wall_hist: Optional[LogHistogram] = None
    #: (table tag, key, shard indices) triples the dynamic race detector
    #: found (``race_check`` rounds only; empty means the round's
    #: write-sets were pairwise disjoint, as the router's proof claims).
    race_overlaps: list = field(default_factory=list)
    #: tables whose counted writes escaped capture during a checked
    #: round (the dynamic face of RACE604); empty on healthy rounds.
    uncaptured_tables: list = field(default_factory=list)

    def critical_path(self) -> int:
        """The busiest shard's cost — the parallel wall-clock proxy.

        For broadcast rounds this is the whole round's cost (one worker
        did everything).
        """
        if not self.shard_reports:
            return self.total_cost
        return max(r.total_cost for r in self.shard_reports)


class ShardedEngine(IdIvmEngine):
    """ID-based IVM with hash-partitioned parallel ∆-script execution."""

    def __init__(
        self,
        db: Database,
        shards: int = 2,
        max_workers: Optional[int] = None,
        backend: str = "thread",
        race_check: "bool | str" = False,
        **kwargs,
    ):
        if shards < 1:
            raise SchemaError(f"need at least one shard, got {shards}")
        if backend not in BACKENDS:
            raise SchemaError(
                f"unknown shard backend {backend!r}; expected one of {BACKENDS}"
            )
        if race_check not in (False, True, "strict"):
            raise SchemaError(
                f"race_check must be False, True or 'strict', got {race_check!r}"
            )
        self.shards = shards
        self.max_workers = max_workers
        self.backend = backend
        #: dynamic race detector: False (off), True (record overlaps as
        #: the ``shard.race_overlaps`` metric + on the round report) or
        #: "strict" (raise :class:`ShardRaceError` before merging).
        self.race_check = race_check
        #: lazily spawned process pool (``backend="process"`` only): the
        #: first provably-parallel round pays the spawn + bootstrap cost,
        #: broadcast-only workloads never do.
        self._pool: Optional[ProcessShardPool] = None
        # Install the routing counter facade BEFORE the base constructor
        # so every table created from here on (caches, opcaches) counts
        # through it.
        self._router = ShardRoutingCounters.install(db)
        super().__init__(db, **kwargs)

    # ------------------------------------------------------------------
    # worker-process lifecycle (backend="process")
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker processes (no-op for the thread backend
        or before the first parallel round).  Idempotent."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def define_view(self, name: str, plan) -> MaterializedView:
        # A new view invalidates the workers' bootstrap blueprint; the
        # next parallel round respawns them with the full catalog.
        self.close()
        return super().define_view(name, plan)

    def _ensure_pool(self, entries) -> ProcessShardPool:
        """Spawn + bootstrap the workers on the first parallel round.

        The blueprint snapshots the coordinator's *current* state — base
        tables already at post-state (deferred IVM applies modifications
        at DML time) and cache tables as of this round's start — so the
        bootstrap round message passes ``sync=False``.
        """
        if self._pool is None or self._pool.closed:
            pool = ProcessShardPool(self.shards)
            try:
                pool.boot(
                    build_blueprint(
                        self.db, self.views, exec_backend=self.exec_backend
                    )
                )
                pool.begin_round(wire.encode_log_batch(entries), sync=False)
            except BaseException:
                pool.close()
                raise
            self._pool = pool
        return self._pool

    # ------------------------------------------------------------------
    def maintain(self, name: Optional[str] = None) -> dict[str, MaintenanceReport]:
        """Bring the named view (default: all) up to date, routing each
        round to parallel shard workers when provably safe."""
        targets = [name] if name is not None else list(self.views)
        entries = self.log.take()
        counters = self.db.counters
        round_started = time.perf_counter()
        metrics.counter("engine.maintain_rounds").inc()
        metrics.histogram("engine.log_entries").observe(len(entries))
        if self._pool is not None and not self._pool.closed:
            # Workers already ran earlier rounds: bring their base-table
            # replicas to this round's post-state before anything else.
            self._pool.begin_round(wire.encode_log_batch(entries), sync=True)
        with obs.span(
            "maintain",
            kind="engine",
            counters=counters,
            engine=type(self).__name__,
            n_log_entries=len(entries),
            views=",".join(targets),
            shards=self.shards,
        ):
            with obs.span("reconstruct_pre", kind="engine", counters=counters):
                db_pre = _reconstruct_pre(self.db, entries)
            reports: dict[str, MaintenanceReport] = {}
            for view_name in targets:
                view = self.views.get(view_name)
                if view is None:
                    raise UnknownTableError(f"no view named {view_name!r}")
                view_started = time.perf_counter()
                with obs.span(
                    f"view:{view_name}", kind="view", counters=counters,
                    view=view_name,
                ) as vsp:
                    instances = populate_instances(
                        view.generated.base_schemas, entries, db_pre
                    )
                    plan = plan_route(
                        view.generated.script, instances, self.db, self.shards
                    )
                    override = getattr(view.generated, "route_override", None)
                    if (
                        not plan.parallel
                        and override is not None
                        and self.shards > 1
                        and any(diff.rows for diff in instances.values())
                    ):
                        # Ablation / race-fixture knob: run the round
                        # parallel on the forced anchor WITHOUT the
                        # router's proof.  The race detector exists to
                        # catch exactly what this can cause.
                        plan = force_route(
                            view.generated.script, instances, self.db, override
                        )
                    if plan.parallel and self.backend == "process":
                        metrics.counter("shard.rounds_parallel").inc()
                        report = self._maintain_parallel_process(
                            view, view_name, instances, entries, plan
                        )
                    elif plan.parallel:
                        metrics.counter("shard.rounds_parallel").inc()
                        report = self._maintain_parallel(
                            view, view_name, instances, db_pre, entries, plan
                        )
                    else:
                        metrics.counter("shard.rounds_broadcast").inc()
                        report = self._maintain_broadcast_synced(
                            view, view_name, instances, db_pre, entries, plan
                        )
                    reports[view_name] = report
                    stamped_phases = {
                        phase: counts.as_dict()
                        for phase, counts in report.phase_counts.items()
                        if phase != "__total__"
                    }
                    if report.parallel and report.backend == "process":
                        # The counted work ran in worker processes, so no
                        # phase spans exist in this trace to reconcile
                        # against; stamp the merged counts under a
                        # different key so the validator stays honest.
                        vsp.set(
                            total_cost=report.total_cost,
                            route=describe_plan(plan),
                            phase_counts_remote=stamped_phases,
                        )
                    else:
                        vsp.set(
                            total_cost=report.total_cost,
                            route=describe_plan(plan),
                            phase_counts=stamped_phases,
                        )
                metrics.histogram("engine.round_cost").observe(report.total_cost)
                metrics.loghist(
                    f"view.round_seconds.{view_name}", unit="seconds"
                ).observe(time.perf_counter() - view_started)
        self._finish_round(reports, entries, round_started)
        return reports

    # ------------------------------------------------------------------
    def _fresh_context(
        self, view: MaterializedView, instances, db_pre: Database, entries
    ) -> IrContext:
        ctx = IrContext(
            db_pre, self.db, diffs=instances, caches=view.caches
        )
        ctx.operator_caches = view.operator_caches
        modified = {entry.table for entry in entries}
        ctx.unchanged_tables = set(self.db.table_names()) - modified
        return ctx

    def _maintain_broadcast(
        self,
        view: MaterializedView,
        view_name: str,
        instances,
        db_pre: Database,
        entries,
        plan: RoutePlan,
    ) -> ShardedMaintenanceReport:
        """One global execution — exactly the base engine's round."""
        counters = self.db.counters
        ctx = self._fresh_context(view, instances, db_pre, entries)
        before = counters.snapshot()
        execute_script(view.script_for(self.exec_backend), ctx, counters)
        after = counters.snapshot()
        report = ShardedMaintenanceReport(
            view_name, parallel=False, broadcast_reason=plan.reason,
            backend=self.backend,
        )
        for phase, counts in after.items():
            prior = before.get(phase)
            report.phase_counts[phase] = (
                counts - prior if prior is not None else counts
            )
        report.diff_sizes = {k: len(v) for k, v in ctx.diffs.items()}
        if view.cost_model is not None:
            report.predicted_counts = view.cost_model.predict_from_diff_sizes(
                report.diff_sizes
            )
        return report

    def _maintain_broadcast_synced(
        self,
        view: MaterializedView,
        view_name: str,
        instances,
        db_pre: Database,
        entries,
        plan: RoutePlan,
    ) -> ShardedMaintenanceReport:
        """Broadcast, shipping the write-set to live worker replicas.

        Without a process pool this is plain :meth:`_maintain_broadcast`.
        With one, the coordinator's writes are captured and replayed on
        every worker so their view/cache replicas stay current for the
        next parallel round.
        """
        pool = self._pool
        if pool is None or pool.closed:
            return self._maintain_broadcast(
                view, view_name, instances, db_pre, entries, plan
            )
        tables = list(tagged_tables(view.caches, view.operator_caches))
        sinks = {tag: table.begin_capture() for tag, table in tables}
        try:
            report = self._maintain_broadcast(
                view, view_name, instances, db_pre, entries, plan
            )
        finally:
            for _, table in tables:
                table.end_capture()
        writes = {tag: ops for tag, ops in sinks.items() if ops}
        if writes:
            pool.apply_writes(view_name, wire.encode_writeset(writes))
        return report

    def _maintain_parallel_process(
        self,
        view: MaterializedView,
        view_name: str,
        instances,
        entries,
        plan: RoutePlan,
    ) -> ShardedMaintenanceReport:
        """Split instance rows by anchor key; one worker *process* per
        shard (see :mod:`repro.shard.workers` for the protocol).

        The merge below is deliberately identical to the thread path's:
        per-shard counter sets (decoded exactly from the wire) sum into
        the report phase by phase and fold into the database totals, so
        both backends reconcile against the same single-shard counts.
        """
        router = self._router
        n = self.shards
        pool = self._ensure_pool(entries)
        shard_instances = split_instances(plan, instances, n)
        instance_docs = [wire.encode_instances(shard_instances[i]) for i in range(n)]
        apply_seconds = metrics.loghist("shard.apply_seconds", unit="seconds")
        shard_cost = metrics.loghist("shard.cost", unit="accesses")

        results = pool.exec_view(view_name, instance_docs)

        report = ShardedMaintenanceReport(
            view_name, parallel=True, anchor=plan.anchor, backend="process"
        )
        report.shard_cost_hist = LogHistogram("shard.round_cost", unit="accesses")
        report.shard_wall_hist = LogHistogram("shard.round_seconds", unit="seconds")
        merged_sizes: dict[str, int] = {}
        merged_writes: dict[str, list[tuple]] = {}
        decoded_writes: list[dict[str, list[tuple]]] = []
        for i, result in enumerate(results):
            sc = wire.decode_counters(result["counters"])
            seconds = result["seconds"]
            with obs.span(
                f"shard:{i}", kind="shard",
                shard=i, view=view_name, anchor=plan.anchor,
                worker_seconds=seconds, cost=sc.total.total,
            ):
                pass  # bookkeeping span: the work ran in the worker
            report.shard_cost_hist.observe(sc.total.total)
            report.shard_wall_hist.observe(seconds)
            apply_seconds.observe(seconds)
            shard_cost.observe(sc.total.total)
            snapshot = sc.snapshot()
            shard_report = MaintenanceReport(f"{view_name}@shard{i}")
            shard_report.phase_counts = snapshot
            shard_report.diff_sizes = dict(result["diff_sizes"])
            report.shard_reports.append(shard_report)
            for phase, counts in snapshot.items():
                bucket = report.phase_counts.get(phase)
                if bucket is None:
                    report.phase_counts[phase] = counts.copy()
                else:
                    bucket.add(counts)
            for k, v in shard_report.diff_sizes.items():
                merged_sizes[k] = merged_sizes.get(k, 0) + v
            decoded_writes.append(wire.decode_writeset(result["writes"]))
            # Keep the database-wide totals truthful, exactly like the
            # thread backend.
            ShardRoutingCounters.fold(router.base, sc)
        if self.race_check:
            # Check pairwise disjointness of the per-worker write-sets
            # BEFORE any of them reaches the coordinator's tables: under
            # "strict" a racy round leaves the authoritative state
            # untouched.
            self._handle_race(
                view_name, report, _writeset_overlaps(decoded_writes), ()
            )
        for writes in decoded_writes:
            for tag, ops in writes.items():
                merged_writes.setdefault(tag, []).extend(ops)
        # The counted writes happened on the worker replicas; replay them
        # (uncounted — the cost is already in the folded counters) onto
        # the coordinator's authoritative tables, then onto every worker
        # so all replicas converge.  Replay is idempotent, so the merged
        # set going back to its originating shard is safe.
        coordinator_tables = dict(tagged_tables(view.caches, view.operator_caches))
        for tag, ops in merged_writes.items():
            coordinator_tables[tag].replay_writes(ops)
        if merged_writes:
            pool.apply_writes(view_name, wire.encode_writeset(merged_writes))
        report.diff_sizes = merged_sizes
        if view.cost_model is not None:
            report.predicted_counts = view.cost_model.predict_from_diff_sizes(
                report.diff_sizes
            )
        return report

    def _maintain_parallel(
        self,
        view: MaterializedView,
        view_name: str,
        instances,
        db_pre: Database,
        entries,
        plan: RoutePlan,
    ) -> ShardedMaintenanceReport:
        """Split instance rows by anchor key; one worker per shard."""
        router = self._router
        n = self.shards
        script = view.script_for(self.exec_backend)
        shard_instances = split_instances(plan, instances, n)
        shard_counters = [CounterSet() for _ in range(n)]
        contexts = [
            self._fresh_context(view, shard_instances[i], db_pre, entries)
            for i in range(n)
        ]

        # Pre-create the worker-observed metrics from the coordinator so
        # shard threads only ever hit the registry's read path.
        apply_seconds = metrics.loghist("shard.apply_seconds", unit="seconds")
        shard_cost = metrics.loghist("shard.cost", unit="accesses")

        shard_seconds = [0.0] * n

        def run_shard(i: int) -> None:
            # Attribute this worker's capture stream (race_check rounds)
            # to its shard; the set is local to the copied context.
            _CURRENT_SHARD.set(i)
            sc = shard_counters[i]
            started = time.perf_counter()
            with router.activate(sc):
                with obs.span(
                    f"shard:{i}", kind="shard", counters=sc,
                    shard=i, view=view_name, anchor=plan.anchor,
                ):
                    execute_script(script, contexts[i], sc)
            shard_seconds[i] = time.perf_counter() - started
            apply_seconds.observe(shard_seconds[i])
            shard_cost.observe(sc.total.total)

        # Dynamic race detector: arm a shard-routed capture on every
        # shared cache/view table, and the coverage audit on every base
        # table (counted writes landing outside the tagged set would
        # escape a process-backend write-set merge — dynamic RACE604).
        race_tables: list = []
        routed_sinks: dict[str, _RoutedSink] = {}
        audit_hits: set[str] = set()
        if self.race_check:
            race_tables = list(tagged_tables(view.caches, view.operator_caches))
            for tag, table in race_tables:
                sink = _RoutedSink(n)
                routed_sinks[tag] = sink
                table.begin_capture(sink)  # type: ignore[arg-type]
            for tname in self.db.table_names():
                self.db.table(tname).audit_uncaptured(audit_hits.add)

        try:
            workers = min(self.max_workers or n, n)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                # copy_context() per submission: each worker's spans parent
                # under the current view span.
                futures = [
                    pool.submit(contextvars.copy_context().run, run_shard, i)
                    for i in range(n)
                ]
                for future in futures:
                    future.result()
        finally:
            for _, table in race_tables:
                table.end_capture()
            if self.race_check:
                for tname in self.db.table_names():
                    self.db.table(tname).audit_uncaptured(None)

        report = ShardedMaintenanceReport(
            view_name, parallel=True, anchor=plan.anchor, backend="thread"
        )
        report.shard_cost_hist = LogHistogram("shard.round_cost", unit="accesses")
        report.shard_wall_hist = LogHistogram("shard.round_seconds", unit="seconds")
        merged_sizes: dict[str, int] = {}
        for i, sc in enumerate(shard_counters):
            report.shard_cost_hist.observe(sc.total.total)
            report.shard_wall_hist.observe(shard_seconds[i])
            snapshot = sc.snapshot()
            shard_report = MaintenanceReport(f"{view_name}@shard{i}")
            shard_report.phase_counts = snapshot
            shard_report.diff_sizes = {
                k: len(v) for k, v in contexts[i].diffs.items()
            }
            report.shard_reports.append(shard_report)
            for phase, counts in snapshot.items():
                bucket = report.phase_counts.get(phase)
                if bucket is None:
                    report.phase_counts[phase] = counts.copy()
                else:
                    bucket.add(counts)
            for k, v in shard_report.diff_sizes.items():
                merged_sizes[k] = merged_sizes.get(k, 0) + v
            # Keep the database-wide totals truthful: fold each worker's
            # counts into the base counter set.
            ShardRoutingCounters.fold(router.base, sc)
        report.diff_sizes = merged_sizes
        if self.race_check:
            per_shard = [
                {tag: sink.per_shard[i] for tag, sink in routed_sinks.items()}
                for i in range(n)
            ]
            self._handle_race(
                view_name, report, _writeset_overlaps(per_shard),
                sorted(audit_hits),
            )
        # Shard counts sum exactly to the single-shard counts, so the
        # merged diff sizes reconcile against the same global prediction.
        if view.cost_model is not None:
            report.predicted_counts = view.cost_model.predict_from_diff_sizes(
                report.diff_sizes
            )
        return report

    # ------------------------------------------------------------------
    def _handle_race(
        self,
        view_name: str,
        report: ShardedMaintenanceReport,
        overlaps: list[tuple[str, tuple, tuple[int, ...]]],
        uncaptured,
    ) -> None:
        """Surface what the dynamic detector found for one checked round."""
        if uncaptured:
            metrics.counter("shard.uncaptured_writes").inc(len(uncaptured))
            report.uncaptured_tables = list(uncaptured)
        if not overlaps:
            return
        metrics.counter("shard.race_overlaps").inc(len(overlaps))
        report.race_overlaps = overlaps
        if self.race_check == "strict":
            shown = "; ".join(
                f"{tag} key {key!r} written by shards {list(shards)}"
                for tag, key, shards in overlaps[:5]
            )
            more = f" (+{len(overlaps) - 5} more)" if len(overlaps) > 5 else ""
            raise ShardRaceError(
                f"parallel round for view {view_name!r} produced "
                f"overlapping per-shard write-sets — the shard-disjointness "
                f"claim is violated: {shown}{more}",
                overlaps=overlaps,
            )
