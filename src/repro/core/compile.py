"""Codegen: lower stored ∆-script IR trees into specialized closures.

The interpreter (:mod:`repro.core.ir_exec`) walks the IR tree per
execution and dispatches per node — and, inside expressions, per row.
For a *stored* ∆-script all of that dispatch is invariant across
maintenance rounds: the tree shape, the column positions, the probe
attributes, the residual predicates.  :func:`compile_script` resolves
every one of those decisions once at view-definition time and emits one
Python closure per :class:`~repro.core.script.ComputeDiffStep` —
pre-resolved attribute offsets, fused filter/probe loops, compiled
predicate closures, direct counted ``Table.lookup`` loops against valid
caches and base-table scans — producing :class:`ColumnarDiff` batches.

Count invariance is the contract: a compiled closure performs *exactly*
the counted accesses (``index_lookups`` / ``tuple_reads`` /
``tuple_writes``) its interpreted twin performs, per phase.  The fused
probe loops replicate :func:`repro.algebra.delta_eval._fetch_from_table`
(one counted lookup per distinct probe value, order-preserving dedup)
and fall back to :meth:`IrContext.resolve_subview` — the interpreter's
own resolution — whenever the probed subview is neither a valid cache
nor a bare scan, so deep recomputation stays count-identical by
construction.  ``tests/test_compiled.py`` pins per-phase equality on
the devices and BSMA workloads; the crosscheck fuzzer runs the compiled
engine differentially against the recompute oracle.

What compiled execution deliberately does *not* reproduce: the per-IR-op
and per-fetch trace spans (the whole point is eliding that per-node
bookkeeping).  Phase and statement spans still wrap every step, so
per-phase span/counter reconciliation is unaffected.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Optional

from ..algebra.delta_eval import Bindings
from ..algebra.evaluate import aggregate_rows
from ..algebra.plan import PlanNode, Scan
from ..algebra.relation import Relation
from ..errors import ScriptError
from ..expr import evaluate as eval_expr
from ..expr.ast import (
    NULL_TOLERANT_FUNCTIONS,
    SCALAR_FUNCTIONS,
    And,
    Arith,
    Call,
    Cmp,
    Col,
    Expr,
    InList,
    Lit,
    Not,
    Or,
)
from ..expr.eval import _ARITH_OPS, compare
from .diffs import ColumnarDiff
from .ir import (
    PRE,
    SUB_PREFIX,
    AppliedSource,
    Compute,
    DiffSource,
    Distinct,
    Empty,
    Filter,
    GroupAgg,
    IrNode,
    ProbeJoin,
    ProbeSemi,
    SubviewSource,
    UnionRows,
)
from .ir_exec import IrContext, _resolve_probe
from .script import ComputeDiffStep, DeltaScript

#: A compiled IR fragment: context in, diff-shaped row tuples out.
RowsFn = Callable[[IrContext], list]


class _Fallback(Exception):
    """Raised during expression lowering when a node form is unknown;
    the compiler then falls back to the interpreter for that expression
    (behavior stays identical, only the speedup is lost)."""


# ----------------------------------------------------------------------
# expression lowering
# ----------------------------------------------------------------------
def compile_expr(expr: Expr, positions: dict[str, int]) -> Callable[[tuple], object]:
    """Lower *expr* to ``fn(row) -> value`` mirroring
    :func:`repro.expr.evaluate` exactly (3VL, NULL propagation, the
    UNKNOWN tracking of ``IN`` lists, NULL-tolerant calls)."""
    try:
        return _compile_expr(expr, positions)
    except _Fallback:
        return lambda row: eval_expr(expr, positions, row)


def _compile_expr(expr: Expr, positions: dict[str, int]) -> Callable[[tuple], object]:
    if isinstance(expr, Lit):
        value = expr.value
        return lambda row: value
    if isinstance(expr, Col):
        if expr.name not in positions:
            # Let the interpreter raise its UnknownColumnError at run time.
            raise _Fallback
        i = positions[expr.name]
        return lambda row: row[i]
    if isinstance(expr, Arith):
        left = _compile_expr(expr.left, positions)
        right = _compile_expr(expr.right, positions)
        op = _ARITH_OPS[expr.op]

        def arith(row):
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            return op(a, b)

        return arith
    if isinstance(expr, Cmp):
        left = _compile_expr(expr.left, positions)
        right = _compile_expr(expr.right, positions)
        op = expr.op
        return lambda row: compare(op, left(row), right(row))
    if isinstance(expr, And):
        items = [_compile_expr(e, positions) for e in expr.items]

        def conj(row):
            result: object = True
            for item in items:
                value = item(row)
                if value is False:
                    return False
                if value is None:
                    result = None
            return result

        return conj
    if isinstance(expr, Or):
        items = [_compile_expr(e, positions) for e in expr.items]

        def disj(row):
            result: object = False
            for item in items:
                value = item(row)
                if value is True:
                    return True
                if value is None:
                    result = None
            return result

        return disj
    if isinstance(expr, Not):
        item = _compile_expr(expr.item, positions)

        def negation(row):
            value = item(row)
            if value is None:
                return None
            return not value

        return negation
    if isinstance(expr, InList):
        item = _compile_expr(expr.item, positions)
        values = tuple(expr.values)

        def in_list(row):
            value = item(row)
            if value is None:
                return None
            unknown = False
            for candidate in values:
                verdict = compare("=", value, candidate)
                if verdict is True:
                    return True
                if verdict is None:
                    unknown = True
            return None if unknown else False

        return in_list
    if isinstance(expr, Call):
        args = [_compile_expr(a, positions) for a in expr.args]
        fn = SCALAR_FUNCTIONS[expr.func]
        if expr.func in NULL_TOLERANT_FUNCTIONS:
            return lambda row: fn(*[a(row) for a in args])

        def call(row):
            values = [a(row) for a in args]
            if any(v is None for v in values):
                return None
            return fn(*values)

        return call
    raise _Fallback


def compile_predicate(expr: Expr, positions: dict[str, int]) -> Callable[[tuple], bool]:
    """Filter-boundary form of :func:`compile_expr`: UNKNOWN is False.

    Lowered directly to boolean-returning closures: under ``is True``
    semantics, 3VL ``And`` is True iff every conjunct is True and ``Or``
    iff any disjunct is — so conjunctions short-circuit without tracking
    UNKNOWN at all.
    """
    try:
        return _compile_bool(expr, positions)
    except _Fallback:
        return lambda row: eval_expr(expr, positions, row) is True


def _compile_bool(expr: Expr, positions: dict[str, int]) -> Callable[[tuple], bool]:
    if isinstance(expr, Cmp):
        left = _compile_expr(expr.left, positions)
        right = _compile_expr(expr.right, positions)
        op = expr.op
        return lambda row: compare(op, left(row), right(row)) is True
    if isinstance(expr, And):
        items = [_compile_bool(e, positions) for e in expr.items]
        if len(items) == 2:
            first, second = items
            return lambda row: first(row) and second(row)

        def conj_true(row):
            for item in items:
                if not item(row):
                    return False
            return True

        return conj_true
    if isinstance(expr, Or):
        items = [_compile_bool(e, positions) for e in expr.items]
        if len(items) == 2:
            first, second = items
            return lambda row: first(row) or second(row)

        def disj_true(row):
            for item in items:
                if item(row):
                    return True
            return False

        return disj_true
    if isinstance(expr, Not):
        # NOT x is True exactly when x is False (UNKNOWN stays UNKNOWN).
        item = _compile_expr(expr.item, positions)
        return lambda row: item(row) is False
    if isinstance(expr, InList):
        item = _compile_expr(expr.item, positions)
        values = tuple(expr.values)

        def in_list_true(row):
            value = item(row)
            if value is None:
                return False
            for candidate in values:
                if compare("=", value, candidate) is True:
                    return True
            return False

        return in_list_true
    fn = _compile_expr(expr, positions)
    return lambda row: fn(row) is True


def _tuple_getter(idx) -> Callable[[tuple], tuple]:
    """``lambda r: tuple(r[i] for i in idx)`` without the genexpr frame."""
    if not idx:
        return lambda row: ()
    if len(idx) == 1:
        i = idx[0]
        return lambda row: (row[i],)
    return itemgetter(*idx)


# ----------------------------------------------------------------------
# subview readers (the counted access paths)
# ----------------------------------------------------------------------
def _compile_subview_reader(
    sub_node: PlanNode, state: str, sub_attrs: Optional[tuple[str, ...]]
) -> Callable[[IrContext, Optional[list]], list]:
    """``reader(ctx, probe_values) -> rows`` in ``sub_node.columns`` order.

    Fast path — the node's own cache is valid for *state*, or the node
    is a bare scan: fused counted ``lookup``/``scan`` loops replicating
    ``_fetch_from_table`` access-for-access (Bindings-style ordered
    dedup of probe values, reorder only when the stored column order
    differs).  Everything else delegates to ``ctx.resolve_subview``,
    the interpreter's exact resolution (counts identical by
    construction).  ``probe_values=None`` means fetch-all.
    """
    node_id = sub_node.node_id
    columns = tuple(sub_node.columns)
    is_scan = isinstance(sub_node, Scan)
    table_name = sub_node.table if is_scan else None
    is_pre = state == PRE

    def reader(ctx: IrContext, probe_values: Optional[list]) -> list:
        table = ctx.caches.get(node_id)
        if table is not None and ctx.cache_state.get(node_id, PRE) != state:
            table = None
        if table is None:
            if is_scan:
                db = ctx.db_pre if is_pre else ctx.db_post
                table = db.table(table_name)
            elif probe_values is None:
                return ctx.resolve_subview(sub_node, state).rows
            else:
                return ctx.resolve_subview(
                    sub_node, state, Bindings(sub_attrs, probe_values)
                ).rows
        if probe_values is None:
            rows = list(table.scan())
        else:
            lookup = table.lookup
            rows = []
            seen = set()
            for value in probe_values:
                if value not in seen:
                    seen.add(value)
                    rows.extend(lookup(sub_attrs, value))
        schema = table.schema
        if columns != schema.columns:
            getter = _tuple_getter(schema.positions(columns))
            rows = [getter(r) for r in rows]
        return rows

    return reader


# ----------------------------------------------------------------------
# IR node lowering
# ----------------------------------------------------------------------
def _compile_node(node: IrNode) -> RowsFn:
    if isinstance(node, DiffSource):
        name = node.name

        def diff_source(ctx: IrContext) -> list:
            diff = ctx.diffs.get(name)
            if diff is None:
                raise ScriptError(f"diff {name!r} has not been computed yet")
            return diff.rows

        return diff_source
    if isinstance(node, SubviewSource):
        reader = _compile_subview_reader(node.node, node.state, None)
        return lambda ctx: reader(ctx, None)
    if isinstance(node, AppliedSource):
        apply_name = node.apply_name
        attrs = node.attrs
        columns = node.columns

        def applied_source(ctx: IrContext) -> list:
            applied = ctx.expansions.get(apply_name)
            if applied is None:
                raise ScriptError(f"APPLY {apply_name!r} has not run yet")
            expansion = applied.expansion(attrs)
            if expansion.columns != columns:
                raise ScriptError(
                    f"expansion columns {expansion.columns} != declared {columns}"
                )
            return expansion.rows

        return applied_source
    if isinstance(node, Empty):
        return lambda ctx: []
    if isinstance(node, Filter):
        child = _compile_node(node.child)
        positions = {c: i for i, c in enumerate(node.child.columns)}
        predicate = compile_predicate(node.predicate, positions)
        return lambda ctx: [r for r in child(ctx) if predicate(r)]
    if isinstance(node, Compute):
        child = _compile_node(node.child)
        positions = {c: i for i, c in enumerate(node.child.columns)}
        if all(isinstance(e, Col) for _, e in node.items):
            getter = _tuple_getter(tuple(positions[e.name] for _, e in node.items))
            return lambda ctx: [getter(r) for r in child(ctx)]
        exprs = [compile_expr(e, positions) for _, e in node.items]
        return lambda ctx: [tuple(fn(r) for fn in exprs) for r in child(ctx)]
    if isinstance(node, Distinct):
        child = _compile_node(node.child)
        # dict.fromkeys == Relation.distinct: first occurrence wins, order kept.
        return lambda ctx: list(dict.fromkeys(child(ctx)))
    if isinstance(node, UnionRows):
        parts = [_compile_node(p) for p in node.parts]

        def union(ctx: IrContext) -> list:
            rows: list = []
            for part in parts:
                rows.extend(part(ctx))
            return rows

        return union
    if isinstance(node, GroupAgg):
        child = _compile_node(node.child)
        child_columns = tuple(node.child.columns)
        keys, aggs = node.keys, node.aggs
        return lambda ctx: aggregate_rows(
            Relation(child_columns, child(ctx)), keys, aggs
        ).rows
    if isinstance(node, ProbeJoin):
        return _compile_probe_join(node)
    if isinstance(node, ProbeSemi):
        return _compile_probe_semi(node)
    raise ScriptError(f"cannot compile IR node {node!r}")


def _compile_probe_join(node: ProbeJoin) -> RowsFn:
    left_fn = _compile_node(node.left)
    left_columns = tuple(node.left.columns)
    sub_columns = tuple(node.node.columns)
    keep = _tuple_getter(tuple(sub_columns.index(c) for _, c in node.keep))
    out_positions = {c: i for i, c in enumerate(node.columns)}
    residual = (
        compile_predicate(node.residual, out_positions)
        if node.residual is not None
        else None
    )
    if not node.on:
        reader = _compile_subview_reader(node.node, node.state, None)

        def cross(ctx: IrContext) -> list:
            left_rows = left_fn(ctx)
            if not left_rows:
                return []
            sub_rows = reader(ctx, None)
            rows: list = []
            for lr in left_rows:
                for sr in sub_rows:
                    combined = lr + keep(sr)
                    if residual is None or residual(combined):
                        rows.append(combined)
            return rows

        return cross
    lget = _tuple_getter(tuple(left_columns.index(a) for a, _ in node.on))
    sub_attrs = tuple(b for _, b in node.on)
    sget = _tuple_getter(tuple(sub_columns.index(b) for b in sub_attrs))
    reader = _compile_subview_reader(node.node, node.state, sub_attrs)

    def probe_join(ctx: IrContext) -> list:
        left_rows = left_fn(ctx)
        if not left_rows:
            return []
        probe_values = [lget(r) for r in left_rows]
        if node.via_output is not None:
            # Section 9 view-reuse hint: delegate to the interpreter's
            # own hit-or-fallback resolution (shared helper, identical
            # counts and metrics).
            sub_rows = _resolve_probe(node, ctx, sub_attrs, probe_values).rows
        else:
            sub_rows = reader(ctx, probe_values)
        buckets: dict[tuple, list] = {}
        for sr in sub_rows:
            key = sget(sr)
            if None in key:
                continue  # SQL: NULL never equi-joins
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [sr]
            else:
                bucket.append(sr)
        rows: list = []
        empty: tuple = ()
        if residual is None:
            for lr, probe in zip(left_rows, probe_values):
                for sr in buckets.get(probe, empty):
                    rows.append(lr + keep(sr))
        else:
            for lr, probe in zip(left_rows, probe_values):
                for sr in buckets.get(probe, empty):
                    combined = lr + keep(sr)
                    if residual(combined):
                        rows.append(combined)
        return rows

    return probe_join


def _compile_probe_semi(node: ProbeSemi) -> RowsFn:
    left_fn = _compile_node(node.left)
    left_columns = tuple(node.left.columns)
    sub_columns = tuple(node.node.columns)
    negated = node.negated
    residual = None
    if node.residual is not None:
        combined_positions = {c: i for i, c in enumerate(left_columns)}
        offset = len(left_columns)
        for i, c in enumerate(sub_columns):
            combined_positions[SUB_PREFIX + c] = offset + i
        residual = compile_predicate(node.residual, combined_positions)
    if not node.on:
        reader = _compile_subview_reader(node.node, node.state, None)

        def semi_all(ctx: IrContext) -> list:
            left_rows = left_fn(ctx)
            if not left_rows:
                return []
            sub_rows = reader(ctx, None)
            if residual is None:
                has = bool(sub_rows)
                return [lr for lr in left_rows if has != negated]
            out: list = []
            for lr in left_rows:
                matched = any(residual(lr + sr) for sr in sub_rows)
                if matched != negated:
                    out.append(lr)
            return out

        return semi_all
    lget = _tuple_getter(tuple(left_columns.index(a) for a, _ in node.on))
    sub_attrs = tuple(b for _, b in node.on)
    sget = _tuple_getter(tuple(sub_columns.index(b) for b in sub_attrs))
    reader = _compile_subview_reader(node.node, node.state, sub_attrs)

    def probe_semi(ctx: IrContext) -> list:
        left_rows = left_fn(ctx)
        if not left_rows:
            return []
        probe_values = [lget(r) for r in left_rows]
        sub_rows = reader(ctx, probe_values)
        buckets: dict[tuple, list] = {}
        for sr in sub_rows:
            key = sget(sr)
            if None in key:
                continue  # SQL: NULL never equi-joins
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [sr]
            else:
                bucket.append(sr)
        if residual is None:
            if negated:
                return [
                    lr
                    for lr, probe in zip(left_rows, probe_values)
                    if probe not in buckets
                ]
            return [
                lr for lr, probe in zip(left_rows, probe_values) if probe in buckets
            ]
        out: list = []
        empty: tuple = ()
        for lr, probe in zip(left_rows, probe_values):
            matched = any(residual(lr + sr) for sr in buckets.get(probe, empty))
            if matched != negated:
                out.append(lr)
        return out

    return probe_semi


# ----------------------------------------------------------------------
# step + script compilation
# ----------------------------------------------------------------------
class CompiledComputeDiffStep(ComputeDiffStep):
    """A :class:`ComputeDiffStep` whose IR tree has been lowered.

    Subclassing keeps every isinstance-based consumer working unchanged
    — the analysis passes (script-safety, typecheck, shard routing), the
    symbolic cost walker, tracing labels and ``describe()`` all read the
    retained ``name`` / ``schema`` / ``ir`` attributes.  Only ``run``
    changes: it invokes the closure and validates the produced rows into
    a :class:`ColumnarDiff` with ``Diff``'s exact dedup semantics.

    Not picklable (it closes over bound methods and local state); shard
    workers recompile locally from the shipped interpretable script.
    """

    def __init__(self, base: ComputeDiffStep, fn: RowsFn):
        super().__init__(base.name, base.schema, base.ir, base.phase)
        self._fn = fn

    def run(self, ctx: IrContext) -> None:
        ctx.diffs[self.name] = ColumnarDiff.from_rows(self.schema, self._fn(ctx))


def _driving_sources(node: IrNode) -> Optional[set[str]]:
    """Diff names that *drive* the tree, or ``None`` if it has a source
    that is read regardless of diff contents.

    A tree is diff-driven when every counted access is reached through
    rows originating in a :class:`DiffSource` — probe joins/semis read
    their subview side only for a non-empty left (both backends return
    early on an empty probe side), so only the left child drives.  For a
    diff-driven tree whose driving diffs are all empty this round, the
    result is empty and no counted access happens; the interpreter walks
    the IR to discover that, a compiled step can skip the walk outright.
    """
    if isinstance(node, DiffSource):
        return {node.name}
    if isinstance(node, Empty):
        return set()
    if isinstance(node, (Filter, Compute, Distinct, GroupAgg)):
        return _driving_sources(node.child)
    if isinstance(node, UnionRows):
        names: set[str] = set()
        for part in node.parts:
            sub = _driving_sources(part)
            if sub is None:
                return None
            names |= sub
        return names
    if isinstance(node, (ProbeJoin, ProbeSemi)):
        return _driving_sources(node.left)
    # SubviewSource / AppliedSource (and anything unknown): read
    # unconditionally, so the step can produce rows and counted accesses
    # even when every diff is empty.
    return None


def compile_step(step: ComputeDiffStep) -> CompiledComputeDiffStep:
    """Lower one compute step's IR tree into a specialized closure."""
    fn = _compile_node(step.ir)
    drivers = _driving_sources(step.ir)
    if drivers:
        inner_fn = fn
        names = tuple(drivers)

        def fn(ctx: IrContext, _fn=inner_fn, _names=names) -> list:
            diffs = ctx.diffs
            for name in _names:
                diff = diffs.get(name)
                # Missing diff: fall through so DiffSource raises its
                # usual ScriptError with the proper message.
                if diff is None or len(diff):
                    return _fn(ctx)
            return []
    ir_columns = tuple(step.ir.columns)
    want = step.schema.columns
    if ir_columns != want:
        # Diff.from_relation's reorder, resolved once at compile time.
        getter = _tuple_getter(tuple(ir_columns.index(c) for c in want))
        inner = fn
        fn = lambda ctx: [getter(r) for r in inner(ctx)]  # noqa: E731
    return CompiledComputeDiffStep(step, fn)


def compile_script(generated) -> DeltaScript:
    """Compile a :class:`~repro.core.generator.GeneratedPlan`'s ∆-script.

    Returns a new :class:`DeltaScript` sharing every non-compute step
    object (APPLY, cache marks, the blocking aggregate steps — they are
    already direct table code with no per-row IR dispatch) and replacing
    each plain :class:`ComputeDiffStep` with its compiled form.  The
    original script is left untouched, so one view can serve both
    backends.
    """
    steps = []
    for step in generated.script.steps:
        if type(step) is ComputeDiffStep:
            steps.append(compile_step(step))
        else:
            steps.append(step)
    return DeltaScript(steps, generated.script.view_node_id)
