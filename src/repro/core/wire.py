"""Compact wire format for cross-process shard maintenance.

The process-backed :class:`~repro.core.sharded.ShardedEngine` ships
per-round ∆-script inputs to long-lived worker processes and receives
diffs, counters and write-sets back.  Pickling the natural in-memory
shapes (dicts of :class:`~repro.core.diffs.Diff` objects, lists of
:class:`~repro.core.modlog.LoggedModification`) is wasteful — every row
would carry per-object pickle framing — and hash-order dependent.  This
module instead encodes batches *columnar*:

* one list per attribute (all values of a diff column travel together),
* column/table/phase names interned once into a string table and
  referenced by index,
* primitive values only (``None``/``bool``/``int``/``float``/``str``) —
  anything else raises :class:`~repro.errors.WireError` at encode time
  instead of silently pickling an unbounded object graph.

Determinism contract: encoding never iterates a ``set`` and sorts every
map whose order is not semantically meaningful, so the same logical
batch produces byte-identical :func:`canonical_bytes` in every process
regardless of ``PYTHONHASHSEED``.  ``tests/test_wire.py`` pins this with
subprocess round-trips under different hash seeds.

Clock domains: :func:`encode_log_batch` deliberately does **not** ship
``logged_at``.  That field is a coordinator-clock ``time.monotonic()``
reading; monotonic clocks are not comparable across processes, so a
worker must never see (or re-stamp) one.  Workers report *durations*
(``perf_counter`` deltas, a span length measured within one process),
which are clock-domain free.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Sequence

from ..errors import WireError
from ..storage.counters import AccessCounts, CounterSet
from .diffs import ColumnarDiff, Diff, DiffSchema
from .modlog import LoggedModification

WIRE_VERSION = 1

#: Write-set opcodes (see :meth:`repro.storage.table.Table.replay_writes`).
OP_SET = 0     # upsert: key -> full row
OP_DELETE = 1  # delete: key
OP_INDEX = 2   # secondary index created on columns

_OPCODES = {"s": OP_SET, "d": OP_DELETE, "x": OP_INDEX}
_OPNAMES = {v: k for k, v in _OPCODES.items()}


class _Interner:
    """String table builder: each distinct string is stored once and
    referenced by its (stable, first-seen) index."""

    __slots__ = ("strings", "_index")

    def __init__(self) -> None:
        self.strings: list[str] = []
        self._index: dict[str, int] = {}

    def intern(self, value: str) -> int:
        if type(value) is not str:
            raise WireError(
                f"wire string table accepts str only, got {type(value).__name__}"
            )
        idx = self._index.get(value)
        if idx is None:
            idx = len(self.strings)
            self._index[value] = idx
            self.strings.append(value)
        return idx


def check_primitive(value: Any, context: str = "value") -> Any:
    """Validate that *value* is wire-safe; return it unchanged.

    Exact-type check (no subclasses): the wire format must stay a closed
    vocabulary, or decode on the far side would not reproduce the value.
    """
    if value is None or type(value) in (bool, int, float, str):
        return value
    raise WireError(
        f"non-primitive {context}: {type(value).__name__} ({value!r}); "
        "the wire format carries None/bool/int/float/str only"
    )


def _check_values(values: Sequence[Any], context: str) -> list:
    return [check_primitive(v, context) for v in values]


# ----------------------------------------------------------------------
# i-diff instance batches (coordinator -> worker, per round and view)
# ----------------------------------------------------------------------
def encode_instances(instances: Mapping[str, Diff]) -> dict:
    """Encode named i-diff instances columnar (one list per diff column).

    Instances are sorted by name so the document is canonical; decode
    returns them in that order (execution looks instances up by name, so
    order is semantically irrelevant).
    """
    interner = _Interner()
    diffs = []
    for name in sorted(instances):
        diff = instances[name]
        schema = diff.schema
        n_cols = len(schema.columns)
        if isinstance(diff, ColumnarDiff):
            # Already in the wire layout: validate column-wise, no row
            # tuples materialized.
            n_rows = len(diff)
            columns = [
                _check_values(col, f"diff {name!r} column {schema.columns[i]!r}")
                for i, col in enumerate(diff.column_data())
            ]
        else:
            n_rows = len(diff.rows)
            columns = [[] for _ in range(n_cols)]
            for row in diff.rows:
                for i in range(n_cols):
                    columns[i].append(
                        check_primitive(row[i], f"diff {name!r} column {schema.columns[i]!r}")
                    )
        diffs.append(
            {
                "name": interner.intern(name),
                "kind": interner.intern(schema.kind),
                "target": interner.intern(schema.target),
                "id": [interner.intern(a) for a in schema.id_attrs],
                "pre": [interner.intern(a) for a in schema.pre_attrs],
                "post": [interner.intern(a) for a in schema.post_attrs],
                "rows": n_rows,
                "cols": columns,
            }
        )
    return {
        "v": WIRE_VERSION,
        "kind": "idiff-batch",
        "strings": interner.strings,
        "diffs": diffs,
    }


def decode_instances(doc: Mapping, columnar: bool = False) -> dict[str, Diff]:
    """Rebuild named :class:`Diff` instances from :func:`encode_instances`.

    With ``columnar=True`` the wire column lists are adopted directly as
    :class:`ColumnarDiff` batches — no row tuples are materialized and
    the encoder-side validation is trusted (the shard workers' hot
    path); the default re-validates through ``Diff``'s constructor.
    """
    _expect_kind(doc, "idiff-batch")
    strings = doc["strings"]
    out: dict[str, Diff] = {}
    for entry in doc["diffs"]:
        schema = DiffSchema(
            strings[entry["kind"]],
            strings[entry["target"]],
            tuple(strings[i] for i in entry["id"]),
            tuple(strings[i] for i in entry["pre"]),
            tuple(strings[i] for i in entry["post"]),
        )
        n_rows = entry["rows"]
        columns = entry["cols"]
        if columnar:
            out[strings[entry["name"]]] = ColumnarDiff.from_wire_columns(schema, columns)
        else:
            rows = [tuple(col[r] for col in columns) for r in range(n_rows)]
            out[strings[entry["name"]]] = Diff(schema, rows)
    return out


# ----------------------------------------------------------------------
# modification-log batches (coordinator -> worker, once per round)
# ----------------------------------------------------------------------
def encode_log_batch(entries: Sequence[LoggedModification]) -> dict:
    """Encode a round's log entries as struct-of-arrays.

    ``logged_at`` is intentionally absent (see the module docstring's
    clock-domain note); ``seq`` travels so replicas keep the coordinator's
    ordering.  Entry order is the log order and is preserved.
    """
    interner = _Interner()
    kinds: list[int] = []
    tables: list[int] = []
    seqs: list[int] = []
    keys: list[list] = []
    rows: list = []
    changes: list = []
    for entry in entries:
        kinds.append(interner.intern(entry.kind))
        tables.append(interner.intern(entry.table))
        seqs.append(entry.seq)
        keys.append(_check_values(entry.key, f"log key of {entry.table!r}"))
        rows.append(
            None
            if entry.row is None
            else _check_values(entry.row, f"log row of {entry.table!r}")
        )
        if entry.changes is None:
            changes.append(None)
        else:
            changes.append(
                [
                    [
                        interner.intern(column),
                        check_primitive(value, f"log change {column!r}"),
                    ]
                    for column, value in entry.changes.items()
                ]
            )
    return {
        "v": WIRE_VERSION,
        "kind": "modlog-batch",
        "strings": interner.strings,
        "n": len(entries),
        "kinds": kinds,
        "tables": tables,
        "seqs": seqs,
        "keys": keys,
        "rows": rows,
        "changes": changes,
    }


def decode_log_batch(doc: Mapping) -> list[LoggedModification]:
    """Rebuild log entries from :func:`encode_log_batch`.

    ``logged_at`` stays 0.0 on the decoded entries: the worker never
    participates in freshness accounting (coordinator-clock domain).
    """
    _expect_kind(doc, "modlog-batch")
    strings = doc["strings"]
    out: list[LoggedModification] = []
    for i in range(doc["n"]):
        row = doc["rows"][i]
        change_pairs = doc["changes"][i]
        entry = LoggedModification(
            strings[doc["kinds"][i]],
            strings[doc["tables"][i]],
            tuple(doc["keys"][i]),
            row=None if row is None else tuple(row),
            changes=(
                None
                if change_pairs is None
                else {strings[c]: v for c, v in change_pairs}
            ),
        )
        entry.seq = doc["seqs"][i]
        out.append(entry)
    return out


# ----------------------------------------------------------------------
# counter snapshots (worker -> coordinator, per shard execution)
# ----------------------------------------------------------------------
_COUNT_FIELDS = ("index_lookups", "tuple_reads", "tuple_writes", "index_maintenance")


def encode_counters(counters: CounterSet) -> dict:
    """Encode per-phase access counts (fixed field order, sorted phases)."""
    phases = [
        [name] + [getattr(counters.phases[name], f) for f in _COUNT_FIELDS]
        for name in sorted(counters.phases)
    ]
    return {"v": WIRE_VERSION, "kind": "counters", "phases": phases}


def decode_counters(doc: Mapping) -> CounterSet:
    """Rebuild an exact :class:`CounterSet` from :func:`encode_counters`."""
    _expect_kind(doc, "counters")
    phases = {
        entry[0]: AccessCounts(*entry[1:]) for entry in doc["phases"]
    }
    return CounterSet.from_phase_counts(phases)


# ----------------------------------------------------------------------
# write-sets (worker -> coordinator -> all workers)
# ----------------------------------------------------------------------
def encode_writeset(ops_by_table: Mapping[str, Sequence[tuple]]) -> dict:
    """Encode captured table write-sets (see ``Table.replay_writes``).

    Per-table op order is preserved (replay must apply writes in capture
    order); tables themselves sort by tag — the router's disjointness
    proof makes cross-table order irrelevant.
    """
    interner = _Interner()
    tables = []
    for tag in sorted(ops_by_table):
        ops = []
        for op in ops_by_table[tag]:
            code = _OPCODES.get(op[0])
            if code == OP_SET:
                ops.append(
                    [
                        code,
                        _check_values(op[1], f"write key in {tag!r}"),
                        _check_values(op[2], f"write row in {tag!r}"),
                    ]
                )
            elif code == OP_DELETE:
                ops.append([code, _check_values(op[1], f"delete key in {tag!r}")])
            elif code == OP_INDEX:
                ops.append([code, [interner.intern(c) for c in op[1]]])
            else:
                raise WireError(f"unknown write op {op[0]!r} in {tag!r}")
        tables.append([interner.intern(tag), ops])
    return {
        "v": WIRE_VERSION,
        "kind": "writeset",
        "strings": interner.strings,
        "tables": tables,
    }


def decode_writeset(doc: Mapping) -> dict[str, list[tuple]]:
    """Rebuild ``{table_tag: [op, ...]}`` from :func:`encode_writeset`."""
    _expect_kind(doc, "writeset")
    strings = doc["strings"]
    out: dict[str, list[tuple]] = {}
    for tag_idx, ops in doc["tables"]:
        decoded = []
        for op in ops:
            name = _OPNAMES.get(op[0])
            if name == "s":
                decoded.append(("s", tuple(op[1]), tuple(op[2])))
            elif name == "d":
                decoded.append(("d", tuple(op[1])))
            elif name == "x":
                decoded.append(("x", tuple(strings[i] for i in op[1])))
            else:
                raise WireError(f"unknown write opcode {op[0]!r}")
        out[strings[tag_idx]] = decoded
    return out


# ----------------------------------------------------------------------
# canonical bytes (determinism pinning)
# ----------------------------------------------------------------------
#: Tags for the canonical form.  Floats serialize as ``["~f", repr(v)]``
#: so that every distinct float value gets distinct bytes: plain JSON
#: would emit non-standard tokens for NaN/Infinity, and an int and a
#: float of equal value (``1`` vs ``1.0``) compare equal as dict keys,
#: so any value-keyed canonicalization downstream must be able to rely
#: on the byte form keeping them apart.  Genuine lists whose first
#: element is a tag string are escaped with ``"~l"`` to keep the
#: encoding injective.
_FLOAT_TAG = "~f"
_LIST_ESCAPE_TAG = "~l"


def _canonical_transform(value: Any) -> Any:
    if type(value) is float:
        return [_FLOAT_TAG, repr(value)]
    if isinstance(value, (list, tuple)):
        items = [_canonical_transform(v) for v in value]
        if items and (items[0] == _FLOAT_TAG or items[0] == _LIST_ESCAPE_TAG):
            return [_LIST_ESCAPE_TAG, *items]
        return items
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if type(key) is not str:
                raise WireError(
                    f"wire documents use str keys only, got {type(key).__name__} ({key!r})"
                )
            out[key] = _canonical_transform(item)
        return out
    return value


def canonical_bytes(doc: Mapping) -> bytes:
    """Canonical serialized form of a wire document.

    Used by determinism tests (and available for content-addressing):
    the same logical batch yields identical bytes in every process, and
    distinct primitive values always yield distinct bytes.  Floats are
    rendered via ``repr`` under a ``"~f"`` tag, which keeps ``1`` vs
    ``1.0``, ``0.0`` vs ``-0.0``, and ``True`` vs ``1`` apart and gives
    NaN/±Infinity a deterministic strict-JSON representation
    (``allow_nan=False`` guards against untagged leaks).
    """
    return json.dumps(
        _canonical_transform(doc),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    ).encode("utf-8")


def _expect_kind(doc: Mapping, kind: str) -> None:
    if not isinstance(doc, Mapping) or doc.get("kind") != kind or doc.get("v") != WIRE_VERSION:
        raise WireError(
            f"malformed wire document: expected kind={kind!r} v={WIRE_VERSION}, "
            f"got kind={doc.get('kind')!r} v={doc.get('v')!r}"
            if isinstance(doc, Mapping)
            else f"malformed wire document: expected a mapping, got {type(doc).__name__}"
        )
