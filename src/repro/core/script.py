"""∆-scripts: the executable output of the 4-pass generator (Section 4).

A ∆-script is an ordered list of steps:

* :class:`ComputeDiffStep` — evaluate a diff-query IR tree and bind the
  result to a name (the queries of Figure 7);
* :class:`ApplyDiffStep` — APPLY a named diff to a materialized target
  (a cache or the view), capturing the ``UPDATE ... RETURNING``
  expansion;
* :class:`MarkCacheUpdatedStep` — record that a cache now holds the
  post-state (subview references switch from recompute to cache read);
* aggregate steps (:mod:`repro.core.rules.aggregate`) — the blocking
  rules of Tables 7, 9, 11, 12.

Steps carry a *phase* label so the harness can attribute access counts to
the paper's Figure 12 cost components (cache update / view diff
computation / view update).
"""

from __future__ import annotations

import time
from typing import Optional

from ..errors import ScriptError
from ..obs import metrics
from ..obs import spans as obs
from ..storage import CounterSet
from .apply import apply_diff
from .diffs import Diff, DiffSchema
from .ir import IrNode
from .ir_exec import IrContext, run_ir

PHASE_CACHE_DIFF = "cache_diff"
PHASE_CACHE_UPDATE = "cache_update"
PHASE_VIEW_DIFF = "view_diff"
PHASE_VIEW_UPDATE = "view_update"


class Step:
    """Base class for ∆-script steps."""

    phase: str = PHASE_VIEW_DIFF

    def run(self, ctx: IrContext) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class ComputeDiffStep(Step):
    """``name := <IR>`` — compute a diff and bind it in the environment."""

    def __init__(self, name: str, schema: DiffSchema, ir: IrNode, phase: str):
        self.name = name
        self.schema = schema
        self.ir = ir
        self.phase = phase

    def run(self, ctx: IrContext) -> None:
        relation = run_ir(self.ir, ctx)
        ctx.diffs[self.name] = Diff.from_relation(self.schema, relation)

    def describe(self) -> str:
        return f"{self.name} := {self.schema!r}\n{self.ir.pretty(1)}"


class ApplyDiffStep(Step):
    """``APPLY name`` against a cache or the view (Section 2 DML)."""

    def __init__(
        self,
        diff_name: str,
        target_node_id: int,
        target_label: str,
        phase: str,
        returning_name: Optional[str] = None,
    ):
        self.diff_name = diff_name
        self.target_node_id = target_node_id
        self.target_label = target_label
        self.phase = phase
        self.returning_name = returning_name

    def run(self, ctx: IrContext) -> None:
        diff = ctx.diffs.get(self.diff_name)
        if diff is None:
            raise ScriptError(f"diff {self.diff_name!r} was never computed")
        table = ctx.caches.get(self.target_node_id)
        if table is None:
            raise ScriptError(
                f"no materialization registered for node {self.target_node_id}"
            )
        applied = apply_diff(table, diff)
        if self.returning_name is not None:
            ctx.expansions[self.returning_name] = applied

    def describe(self) -> str:
        tail = f" RETURNING {self.returning_name}" if self.returning_name else ""
        return f"APPLY {self.diff_name} TO {self.target_label}{tail}"


class MarkCacheUpdatedStep(Step):
    """Flip a cache's state to post (all its diffs have been applied)."""

    def __init__(self, node_id: int, label: str):
        self.node_id = node_id
        self.label = label
        self.phase = PHASE_CACHE_UPDATE

    def run(self, ctx: IrContext) -> None:
        ctx.mark_cache_updated(self.node_id)

    def describe(self) -> str:
        return f"-- {self.label} is now post-state"


class DeltaScript:
    """An ordered ∆-script plus the metadata needed to execute it."""

    def __init__(self, steps: list[Step], view_node_id: int):
        self.steps = steps
        self.view_node_id = view_node_id
        self._exec_plan: Optional[list] = None

    def exec_plan(self) -> list:
        """Per-step ``(run, phase, cardinality_fn)`` triples, bound once.

        Scripts are immutable after construction and re-executed every
        round, so the per-step isinstance dispatch and attribute lookups
        of the hot loop are resolved here a single time.
        """
        plan = self._exec_plan
        if plan is None:
            plan = []
            for step in self.steps:
                if isinstance(step, ComputeDiffStep):
                    card = _diff_len(step.name)
                elif isinstance(step, ApplyDiffStep):
                    card = _diff_len(step.diff_name)
                else:
                    card = None
                plan.append((step.run, step.phase, card))
            self._exec_plan = plan
        return plan

    def __getstate__(self) -> dict:
        # The exec plan caches bound methods and local closures — process
        # local and unpicklable.  A worker process that receives this
        # script (shard bootstrap blueprint) rebuilds it lazily.
        state = self.__dict__.copy()
        state["_exec_plan"] = None
        return state

    def describe(self) -> str:
        """Human-readable rendering (the Figure 7 shape)."""
        lines = []
        for i, step in enumerate(self.steps, start=1):
            lines.append(f"{i:3d}. [{step.phase}] {step.describe()}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.steps)


def _diff_len(name: str):
    """Cardinality probe for a named diff; runs right after its step."""

    def card(ctx: IrContext) -> int:
        return len(ctx.diffs[name])

    return card


def _step_cardinality(step: Step, ctx: IrContext) -> Optional[int]:
    """Diff rows produced/applied by *step*, where that is meaningful."""
    if isinstance(step, ComputeDiffStep):
        diff = ctx.diffs.get(step.name)
        return len(diff) if diff is not None else None
    if isinstance(step, ApplyDiffStep):
        diff = ctx.diffs.get(step.diff_name)
        return len(diff) if diff is not None else None
    return None


def execute_script(
    script: DeltaScript, ctx: IrContext, counters: CounterSet
) -> dict[str, Diff]:
    """Run every step under its phase label; returns the diff environment."""
    recorder = obs.current_recorder()
    if recorder is None:
        from contextlib import ExitStack

        # Steps of one phase are contiguous, so the counter phase (a
        # generator context manager) is entered once per phase run, not
        # once per statement — attribution is identical and a 500-step
        # script stops paying ~500 context switches per round.
        stmt_hist = metrics.histogram("script.stmt_diff_rows")
        observe = stmt_hist.observe
        stack = ExitStack()
        open_phase: Optional[str] = None
        phase_started = 0.0
        try:
            for run, phase, card in script.exec_plan():
                if phase != open_phase:
                    now = time.perf_counter()
                    if open_phase is not None:
                        _observe_phase_seconds(open_phase, now - phase_started)
                    stack.close()
                    stack = ExitStack()
                    stack.enter_context(counters.phase(phase))
                    open_phase = phase
                    phase_started = now
                run(ctx)
                if card is not None:
                    observe(card(ctx))
        finally:
            stack.close()
            if open_phase is not None:
                _observe_phase_seconds(
                    open_phase, time.perf_counter() - phase_started
                )
        return ctx.diffs
    return _execute_script_traced(script, ctx, counters, recorder)


def _observe_phase_seconds(phase: str, seconds: float) -> None:
    """Latency of one contiguous phase run (safe from shard workers)."""
    metrics.loghist(f"script.phase_seconds.{phase}", unit="seconds").observe(seconds)


def _execute_script_traced(
    script: DeltaScript,
    ctx: IrContext,
    counters: CounterSet,
    recorder: "obs.SpanRecorder",
) -> dict[str, Diff]:
    """Traced execution: one span per contiguous phase run, one per statement.

    Each phase span's access-count delta equals exactly what the
    counters attribute to that phase over the same statements, so
    per-phase sums over a round's phase spans reconcile with the
    engine's ``MaintenanceReport.phase_counts``.
    """
    from contextlib import ExitStack

    stack = ExitStack()
    open_phase: Optional[str] = None
    phase_started = 0.0
    try:
        for i, step in enumerate(script.steps, start=1):
            if step.phase != open_phase:
                now = time.perf_counter()
                if open_phase is not None:
                    _observe_phase_seconds(open_phase, now - phase_started)
                stack.close()
                stack = ExitStack()
                stack.enter_context(
                    recorder.span(
                        f"phase:{step.phase}",
                        kind="phase",
                        counters=counters,
                        phase_of=step.phase,
                        phase=step.phase,
                    )
                )
                open_phase = step.phase
                phase_started = now
            with counters.phase(step.phase):
                label = (
                    step.name
                    if isinstance(step, ComputeDiffStep)
                    else step.describe().splitlines()[0]
                )
                with recorder.span(
                    f"stmt[{i}]",
                    kind="stmt",
                    counters=counters,
                    phase=step.phase,
                    step=type(step).__name__,
                    stmt=label,
                ) as sp:
                    step.run(ctx)
                    cardinality = _step_cardinality(step, ctx)
                    if cardinality is not None:
                        sp.set(diff_rows=cardinality)
                        metrics.histogram("script.stmt_diff_rows").observe(
                            cardinality
                        )
    finally:
        stack.close()
        if open_phase is not None:
            _observe_phase_seconds(
                open_phase, time.perf_counter() - phase_started
            )
    return ctx.diffs
