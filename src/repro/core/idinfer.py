"""Pass 1 of the ∆-script generator: ID inference (paper Section 4, Table 1).

Because i-diffs identify the view tuples to modify through their IDs, every
subview must carry a set of ID attributes forming its key.  The rules of
Table 1 derive each operator's IDs from its children's:

=====================  =============================
Operator               Output ID attributes
=====================  =============================
SCAN(R)                key(R)
σ_φ(R)                 ID(R)
π_D̄(R)                 ID(R)
R × S, R ⋈φ S          ID(R) ∪ ID(S)
R ▷φ S, R ⋉φ S         ID(R)
bag union R ∪ S        ID(R) ∪ ID(S) ∪ {b}
γ_{Ḡ, f(M̄)}(R)          Ḡ
=====================  =============================

When a projection (the only QSPJADU operator that drops columns besides γ,
whose keys are its IDs by construction) does not retain the inferred IDs,
the plan is *extended* with passthrough items — this widens the view but
never changes its cardinality (Section 4, Pass 1 discussion).

:func:`annotate_plan` rebuilds the plan tree with ``ids`` computed for
every node and stable preorder ``node_id`` identifiers attached.
"""

from __future__ import annotations

from ..algebra.plan import (
    AntiJoin,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Scan,
    SemiJoin,
    Select,
    UnionAll,
)
from ..errors import PlanError
from ..expr import Col, col, equi_join_pairs


def annotate_plan(root: PlanNode) -> PlanNode:
    """Return a copy of *root* with ``ids`` inferred and ``node_id`` set.

    Projections are extended where needed so that every subview's output
    schema contains its ID attributes.  Raises :class:`PlanError` when an
    extension would collide with an existing computed column.
    """
    annotated = _infer(root)
    _number(annotated)
    return annotated


def _infer(node: PlanNode) -> PlanNode:
    if isinstance(node, Scan):
        new = Scan(node.schema, alias=node.alias)
        new.ids = tuple(node.schema.key)
        return new
    if isinstance(node, Select):
        child = _infer(node.child)
        new = Select(child, node.predicate)
        new.ids = child.ids
        return new
    if isinstance(node, Project):
        return _infer_project(node)
    if isinstance(node, Join):
        left = _infer(node.left)
        right = _infer(node.right)
        new = Join(left, right, node.condition)
        new.ids = _join_ids(left, right, node.condition)
        return new
    if isinstance(node, (AntiJoin, SemiJoin)):
        left = _infer(node.left)
        right = _infer(node.right)
        new = type(node)(left, right, node.condition)
        new.ids = left.ids
        return new
    if isinstance(node, UnionAll):
        left = _infer(node.left)
        right = _infer(node.right)
        new = UnionAll(left, right, branch_column=node.branch_column)
        merged = list(left.ids)
        for i in right.ids:
            if i not in merged:
                merged.append(i)
        new.ids = tuple(merged) + (node.branch_column,)
        return new
    if isinstance(node, GroupBy):
        child = _infer(node.child)
        new = GroupBy(child, node.keys, node.aggs)
        new.ids = tuple(node.keys)
        return new
    raise PlanError(f"cannot infer IDs for plan node {node!r}")


def _join_ids(left: PlanNode, right: PlanNode, condition) -> tuple[str, ...]:
    """Table 1 for joins: ID(L) ∪ ID(R), pruned with equality awareness.

    An equi conjunct ``c = d`` makes the two columns identical on every
    output row, so an ID can be substituted by the column it is equated
    to.  This keeps natural-join IDs minimal (the paper's running example
    view has IDs exactly {did, pid}, not four columns) while preserving
    every key *component* (Section 2: an i-diff may identify view rows
    through any component, so projections must retain them all — which is
    why no stronger key-join reduction is applied here).
    """
    if condition is None:
        return left.ids + right.ids
    pairs, _ = equi_join_pairs(condition, left.columns, right.columns)
    canon: dict[str, str] = {}
    for lcol, rcol in pairs:
        canon[rcol] = canon.get(lcol, lcol)
    ids = []
    for id_col in left.ids + right.ids:
        representative = canon.get(id_col, id_col)
        if representative not in ids:
            ids.append(representative)
    return tuple(ids)


def _infer_project(node: Project) -> PlanNode:
    child = _infer(node.child)
    # Map each passthrough child column to its (first) output name.
    passthrough: dict[str, str] = {}
    for name, expr in node.items:
        if isinstance(expr, Col) and expr.name not in passthrough:
            passthrough[expr.name] = name
    items = list(node.items)
    output_names = {name for name, _ in items}
    ids: list[str] = []
    for id_col in child.ids:
        if id_col in passthrough:
            ids.append(passthrough[id_col])
            continue
        # Extend the projection with the missing ID (Pass 1 extension).
        if id_col in output_names:
            raise PlanError(
                f"cannot extend projection with ID column {id_col!r}: the name "
                f"is already bound to a computed column"
            )
        items.append((id_col, col(id_col)))
        output_names.add(id_col)
        ids.append(id_col)
    new = Project(child, items)
    new.ids = tuple(ids)
    return new


def _number(root: PlanNode) -> None:
    """Assign stable preorder node identifiers."""
    for i, node in enumerate(root.walk()):
        node.node_id = i


def node_by_id(root: PlanNode, node_id: int) -> PlanNode:
    """Find the node with the given identifier (post-annotation)."""
    for node in root.walk():
        if node.node_id == node_id:
            return node
    raise PlanError(f"no node with id {node_id}")
