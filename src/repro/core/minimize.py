"""Pass 4: semantic minimization of ∆-script queries — paper Figure 8.

The propagation rules of Pass 2 are written in their general form: when a
rule needs attribute values it cannot read off the diff, it probes the
operator's input subview (``∆ ⋈Ī Input``).  Composition (Pass 3) stacks
these probes, many of which are redundant given the i-diff constraints

* C1: ∆+R ⊆ R (post-state),
* C2: πĪ ∆−R ∩ πĪ R = ∅ (post-state),
* C3: updated tuples still present carry the diff's post values,

so this pass rewrites them away (the Figure 8 rules, expressed on the IR):

* ``∆+ ⋈Ī R → π(∆+)``, ``∆u ⋈Ī R → π(∆u)`` when the probed columns are
  derivable from the diff (if Ā″ covers them, in the table's terms);
* ``∆− ⋈Ī R(post) → ∅``;
* ``∆+ ⋉Ī σφ R → σφ(post) ∆+``, ``∆− ⋉Ī R(post) → ∅``,
  ``∆− ▷Ī R(post) → ∆−``, etc. for the (anti)semijoin variants;

plus standard cleanups: TRUE-filter elimination, empty-result
propagation, adjacent filter merging and identity projections.

Pre-state probes are left untouched: the constraints C1–C3 speak about
the post-state only, and pre-state probes also realize multiplicity
expansion (partial-ID diffs), which a projection cannot.
"""

from __future__ import annotations

from typing import Optional

from ..expr import TRUE, Col, all_of, rename_columns
from .diffs import DELETE, INSERT, DiffSchema
from .ir import (
    POST,
    SUB_PREFIX,
    Compute,
    DiffSource,
    Distinct,
    Empty,
    Filter,
    GroupAgg,
    IrNode,
    ProbeJoin,
    ProbeSemi,
    UnionRows,
)
from .rules.base import state_mapping, target_name


def minimize_ir(node: IrNode) -> IrNode:
    """Rewrite *node* bottom-up until no rule applies."""
    previous = None
    current = node
    # The rewrites strictly shrink the tree, so a short fixpoint loop
    # suffices (each pass is linear in tree size).
    while previous is not current:
        previous = current
        current = _rewrite(current)
    return current


def _rewrite(node: IrNode) -> IrNode:
    if isinstance(node, (DiffSource, Empty)):
        return node
    if isinstance(node, Filter):
        child = _rewrite(node.child)
        if isinstance(child, Empty):
            return Empty(node.columns)
        if node.predicate == TRUE:
            return child
        if isinstance(child, Filter):
            return Filter(child.child, all_of(child.predicate, node.predicate))
        return node if child is node.child else Filter(child, node.predicate)
    if isinstance(node, Compute):
        child = _rewrite(node.child)
        if isinstance(child, Empty):
            return Empty(node.columns)
        if _is_identity(node, child):
            return child
        return node if child is node.child else Compute(child, node.items)
    if isinstance(node, Distinct):
        child = _rewrite(node.child)
        if isinstance(child, Empty):
            return Empty(node.columns)
        return node if child is node.child else Distinct(child)
    if isinstance(node, UnionRows):
        parts = [_rewrite(p) for p in node.parts]
        live = [p for p in parts if not isinstance(p, Empty)]
        if not live:
            return Empty(node.columns)
        if len(live) == 1:
            return live[0]
        return UnionRows(live)
    if isinstance(node, GroupAgg):
        child = _rewrite(node.child)
        if isinstance(child, Empty):
            return Empty(node.columns)
        return node if child is node.child else GroupAgg(child, node.keys, node.aggs)
    if isinstance(node, ProbeJoin):
        return _rewrite_probe_join(node)
    if isinstance(node, ProbeSemi):
        return _rewrite_probe_semi(node)
    return node


def _is_identity(node: Compute, child: IrNode) -> bool:
    if node.columns != child.columns:
        return False
    return all(
        isinstance(expr, Col) and expr.name == name for name, expr in node.items
    )


def _chain_schema(node: IrNode) -> Optional[DiffSchema]:
    """The diff schema feeding *node* through a filter-only chain.

    Filters and Distinct preserve columns and row identity, so the Figure
    8 patterns look through them; anything else breaks the chain.
    """
    while isinstance(node, (Filter, Distinct)):
        node = node.child
    if isinstance(node, DiffSource):
        return node.schema
    return None


def _probe_matches_own_input(
    schema: DiffSchema, on: tuple[tuple[str, str], ...], probed_node
) -> bool:
    """True when the probe rejoins the diff with the subview it targets,
    on the diff's own ID attributes (the ``∆ ⋈Ī Input`` shape).

    Partial-ID probes qualify too: eliding them changes multiplicity
    (one diff row instead of the m matching subview rows) and keeps
    dummy rows, but every kept column the rewrite substitutes is
    functionally determined by the diff row, duplicates collapse at
    diff construction, and dummies are absorbed by APPLY
    (overestimation, Example 4.8) — so the value semantics is preserved
    wherever rules place these probes."""
    if schema.target != target_name(probed_node):
        return False
    if any(lcol != sub for lcol, sub in on):
        return False
    return set(schema.id_attrs) == {sub for _, sub in on}


def _rewrite_probe_join(node: ProbeJoin) -> IrNode:
    left = _rewrite(node.left)
    if isinstance(left, Empty):
        return Empty(node.columns)
    rebuilt = (
        node
        if left is node.left
        else ProbeJoin(left, node.node, node.state, node.on, node.keep, node.residual)
    )
    schema = _chain_schema(left)
    if schema is None or node.state != POST:
        return rebuilt
    if not _probe_matches_own_input(schema, node.on, node.node):
        return rebuilt
    if schema.kind == DELETE:
        # Figure 8: ∆− ⋈Ī R → ∅ (C2: deleted IDs are absent post-state).
        return Empty(node.columns)
    mapping = state_mapping(schema, POST)
    if not all(sub in mapping for _, sub in node.keep):
        return rebuilt
    # Figure 8: ∆+ ⋈Ī R → ∆+ and ∆u ⋈Ī R → ∆u (projected/renamed).
    items = [(c, Col(c)) for c in left.columns]
    items += [(out, Col(mapping[sub])) for out, sub in node.keep]
    result: IrNode = Compute(left, items)
    if node.residual is not None:
        result = Filter(result, node.residual)
    return result


def _rewrite_probe_semi(node: ProbeSemi) -> IrNode:
    left = _rewrite(node.left)
    if isinstance(left, Empty):
        return Empty(node.columns)
    rebuilt = (
        node
        if left is node.left
        else ProbeSemi(left, node.node, node.state, node.on, node.residual, node.negated)
    )
    schema = _chain_schema(left)
    if schema is None or node.state != POST:
        return rebuilt
    if not _probe_matches_own_input(schema, node.on, node.node):
        return rebuilt
    if schema.kind == DELETE:
        # ∆− ⋉Ī R(post) → ∅ ; ∆− ▷Ī R(post) → ∆− (Figure 8).
        return left if node.negated else Empty(node.columns)
    if node.negated:
        # ∆+ ▷Ī R(post) → ∅ only for inserts without residual (C1).
        if schema.kind == INSERT and node.residual is None:
            return Empty(node.columns)
        return rebuilt
    if node.residual is None:
        # ∆+ ⋉Ī R → ∆+, ∆u ⋉Ī R → ∆u (C1 / C3, overestimation-safe).
        return left
    # ⋉ with a residual over sub__ columns: evaluable from the diff when
    # the referenced attributes are derivable post-state.
    mapping = state_mapping(schema, POST)
    sub_mapping = {SUB_PREFIX + a: m for a, m in mapping.items()}
    from ..expr import columns_of

    referenced = {
        c for c in columns_of(node.residual) if c.startswith(SUB_PREFIX)
    }
    if not referenced <= set(sub_mapping):
        return rebuilt
    return Filter(left, rename_columns(node.residual, sub_mapping))


def estimate_probe_count(node: IrNode) -> int:
    """Number of subview probes in the tree (for tests and the bench)."""
    return sum(1 for n in node.walk() if isinstance(n, (ProbeJoin, ProbeSemi)))
