"""APPLY semantics: executing an i-diff against a materialized table.

Implements the three DML statements of Section 2 (APPLY ∆u / ∆+ / ∆−)
against :class:`~repro.storage.Table`, with the access accounting of
Appendix A, and returns the *expansion* of the application — the per-row
changes actually made.  The expansion is the paper's
``UPDATE ... RETURNING`` optimization (Appendix A.2.1): after applying a
cache diff, downstream rules read the expanded rows instead of re-probing
the cache.
"""

from __future__ import annotations

from typing import Sequence

from ..algebra.relation import Relation
from ..errors import DiffError
from ..storage import Table
from .diffs import DELETE, INSERT, UPDATE, Diff, DiffSchema, post_col, pre_col


class AppliedChanges:
    """What an APPLY actually did: full pre/post rows per affected tuple.

    ``changes`` holds ``(pre_row, post_row)`` pairs over the target
    table's schema; ``pre_row`` is None for inserts and ``post_row`` is
    None for deletes.
    """

    __slots__ = ("kind", "table_schema", "changes", "updated_attrs")

    def __init__(
        self,
        kind: str,
        table_schema,
        changes: list[tuple],
        updated_attrs: tuple[str, ...] = (),
    ):
        self.kind = kind
        self.table_schema = table_schema
        self.changes = changes
        self.updated_attrs = updated_attrs

    def __len__(self) -> int:
        return len(self.changes)

    def expansion(self, attrs: Sequence[str] | None = None) -> Relation:
        """RETURNING-style relation: full key + pre/post of *attrs*.

        Columns: the table's key, then ``a__pre`` and ``a__post`` for each
        requested attribute (defaults to the diff's updated attributes for
        updates, all non-key attributes otherwise).  For inserts the pre
        columns are None; for deletes the post columns are None.
        """
        schema = self.table_schema
        if attrs is None:
            attrs = self.updated_attrs if self.kind == UPDATE else schema.non_key_columns
        attrs = tuple(attrs)
        columns = (
            schema.key
            + tuple(pre_col(a) for a in attrs)
            + tuple(post_col(a) for a in attrs)
        )
        attr_positions = [schema.position(a) for a in attrs]
        rows: list[tuple] = []
        for pre_row, post_row in self.changes:
            some_row = post_row if post_row is not None else pre_row
            key = schema.key_of(some_row)
            pre_vals = (
                tuple(pre_row[i] for i in attr_positions)
                if pre_row is not None
                else (None,) * len(attrs)
            )
            post_vals = (
                tuple(post_row[i] for i in attr_positions)
                if post_row is not None
                else (None,) * len(attrs)
            )
            rows.append(key + pre_vals + post_vals)
        return Relation(columns, rows)

    def as_full_diff(self) -> Diff:
        """The applied changes as a full-ID effective diff over the table.

        Used when a cache application must be re-expressed as the diff
        feeding the operators above the cache.
        """
        schema = self.table_schema
        non_key = schema.non_key_columns
        if self.kind == INSERT:
            diff_schema = DiffSchema(INSERT, schema.name, schema.key, post_attrs=non_key)
            rows = [
                schema.key_of(post) + schema.project(post, non_key)
                for _, post in self.changes
            ]
            return Diff(diff_schema, rows)
        if self.kind == DELETE:
            diff_schema = DiffSchema(DELETE, schema.name, schema.key, pre_attrs=non_key)
            rows = [
                schema.key_of(pre) + schema.project(pre, non_key)
                for pre, _ in self.changes
            ]
            return Diff(diff_schema, rows)
        attrs = self.updated_attrs
        diff_schema = DiffSchema(
            UPDATE, schema.name, schema.key, pre_attrs=attrs, post_attrs=attrs
        )
        rows = [
            schema.key_of(post) + schema.project(pre, attrs) + schema.project(post, attrs)
            for pre, post in self.changes
        ]
        return Diff(diff_schema, rows)


def apply_diff(table: Table, diff: Diff) -> AppliedChanges:
    """Apply *diff* to *table* per the Section 2 DML semantics."""
    kind = diff.schema.kind
    if kind == UPDATE:
        return _apply_update(table, diff)
    if kind == INSERT:
        return _apply_insert(table, diff)
    if kind == DELETE:
        return _apply_delete(table, diff)
    raise DiffError(f"unknown diff kind {kind!r}")


def _apply_update(table: Table, diff: Diff) -> AppliedChanges:
    """APPLY ∆u: UPDATE V SET Ā″ = Ā″_post WHERE V.Ī′ = ∆.Ī′."""
    schema = diff.schema
    post_attrs = schema.post_attrs
    post_positions = [schema.position(post_col(a)) for a in post_attrs]
    changes: list[tuple] = []
    for diff_row in diff.rows:
        ident = diff.id_of(diff_row)
        new_values = {
            a: diff_row[i] for a, i in zip(post_attrs, post_positions)
        }
        for key in table.locate(schema.id_attrs, ident):
            old_row = table.write_at(key, new_values)
            new_row = table.get_uncounted(key)
            changes.append((old_row, new_row))
    return AppliedChanges(UPDATE, table.schema, changes, updated_attrs=post_attrs)


def _apply_insert(table: Table, diff: Diff) -> AppliedChanges:
    """APPLY ∆+: INSERT ... WHERE ROW NOT IN (SELECT ... FROM V)."""
    schema = diff.schema
    table_columns = schema.id_attrs + schema.post_attrs
    order = [table_columns.index(c) for c in table.schema.columns]
    changes: list[tuple] = []
    for diff_row in diff.rows:
        row = tuple(diff_row[i] for i in order)
        if table.insert_checked(row):
            changes.append((None, row))
    return AppliedChanges(INSERT, table.schema, changes)


def _apply_delete(table: Table, diff: Diff) -> AppliedChanges:
    """APPLY ∆−: DELETE FROM V WHERE ROW(Ī′) IN (SELECT Ī′ FROM ∆−)."""
    schema = diff.schema
    changes: list[tuple] = []
    for diff_row in diff.rows:
        ident = diff.id_of(diff_row)
        for key in table.locate(schema.id_attrs, ident):
            old_row = table.delete_at(key)
            changes.append((old_row, None))
    return AppliedChanges(DELETE, table.schema, changes)
