"""Execution of diff-query IR trees against a maintenance-time context."""

from __future__ import annotations

from typing import Optional

from ..algebra.delta_eval import Bindings, fetch
from ..algebra.evaluate import aggregate_rows
from ..algebra.plan import PlanNode
from ..algebra.relation import Relation
from ..errors import ScriptError
from ..expr import evaluate as eval_expr, matches
from ..obs import metrics
from ..obs import spans as obs
from ..storage import Database, Table
from .apply import AppliedChanges
from .diffs import Diff
from .ir import (
    POST,
    PRE,
    SUB_PREFIX,
    AppliedSource,
    Compute,
    DiffSource,
    Distinct,
    Empty,
    Filter,
    GroupAgg,
    IrNode,
    ProbeJoin,
    ProbeSemi,
    SubviewSource,
    UnionRows,
)


class IrContext:
    """Everything an IR tree may reference while executing.

    * ``db_pre`` / ``db_post`` — the base database before/after the logged
      modifications (deferred IVM: the live database *is* the post state;
      the pre state is implied by the diffs).
    * ``diffs`` — named diff instances (base-table i-diffs and the
      intermediates computed by earlier script steps).
    * ``caches`` — node_id -> materialized table for every cache, plus the
      view at the root.  ``cache_state`` tracks whether each cache still
      holds its pre-state content or has been brought up to date; subview
      references only read a cache whose state matches, and recompute
      through base-table indexes otherwise.
    * ``expansions`` — named ``UPDATE ... RETURNING`` results of APPLY
      steps.
    """

    def __init__(
        self,
        db_pre: Database,
        db_post: Database,
        diffs: Optional[dict[str, Diff]] = None,
        caches: Optional[dict[int, Table]] = None,
    ):
        self.db_pre = db_pre
        self.db_post = db_post
        self.diffs: dict[str, Diff] = dict(diffs) if diffs else {}
        self.caches: dict[int, Table] = dict(caches) if caches else {}
        self.cache_state: dict[int, str] = {nid: PRE for nid in self.caches}
        self.expansions: dict[str, AppliedChanges] = {}
        #: node_id -> hidden bookkeeping table of a γ node (Table 12's
        #: operator caches, generalized); maintained by the aggregate steps.
        self.operator_caches: dict[int, Table] = {}
        #: base tables with no modifications in this batch — gates the
        #: Section 9 view-reuse probes (set by the engine per round).
        self.unchanged_tables: set[str] = set()

    # ------------------------------------------------------------------
    def database_for(self, state: str) -> Database:
        return self.db_pre if state == PRE else self.db_post

    def register_cache(self, node_id: int, table: Table, state: str = PRE) -> None:
        """Attach a materialization for a plan node after construction."""
        self.caches[node_id] = table
        self.cache_state[node_id] = state

    def valid_caches(self, state: str) -> dict[int, Table]:
        return {
            nid: table
            for nid, table in self.caches.items()
            if self.cache_state.get(nid, PRE) == state
        }

    def mark_cache_updated(self, node_id: int) -> None:
        if node_id not in self.caches:
            raise ScriptError(f"no cache registered for node {node_id}")
        self.cache_state[node_id] = POST

    def resolve_subview(
        self, node: PlanNode, state: str, bindings: Optional[Bindings] = None
    ) -> Relation:
        """Rows of the subview at *node* in *state* (optionally filtered).

        Reads the node's own cache when its content matches *state*; other
        matching caches shortcut recomputation below it either way.
        """
        return fetch(
            node,
            self.database_for(state),
            bindings,
            caches=self.valid_caches(state),
        )


def run_ir(node: IrNode, ctx: IrContext) -> Relation:
    """Evaluate an IR tree to a relation of diff-shaped rows.

    With a span recorder installed, every IR operator gets a span
    recording its output (and, derived from its children, input) row
    counts plus the access-count delta it incurred; with tracing off the
    only overhead is one global read per node.
    """
    recorder = obs.current_recorder()
    if recorder is None:
        return _run_ir(node, ctx)
    with recorder.span(
        type(node).__name__,
        kind="ir_op",
        counters=ctx.db_post.counters,
        op=type(node).__name__,
    ) as sp:
        out = _run_ir(node, ctx)
        rows_in = sum(
            child.attrs["rows_out"]
            for child in sp.children
            if "rows_out" in child.attrs
        )
        sp.set(rows_out=len(out.rows), rows_in=rows_in)
        return out


def _run_ir(node: IrNode, ctx: IrContext) -> Relation:
    if isinstance(node, DiffSource):
        diff = ctx.diffs.get(node.name)
        if diff is None:
            raise ScriptError(f"diff {node.name!r} has not been computed yet")
        return Relation(node.columns, diff.rows)
    if isinstance(node, SubviewSource):
        return ctx.resolve_subview(node.node, node.state)
    if isinstance(node, AppliedSource):
        applied = ctx.expansions.get(node.apply_name)
        if applied is None:
            raise ScriptError(f"APPLY {node.apply_name!r} has not run yet")
        expansion = applied.expansion(node.attrs)
        if expansion.columns != node.columns:
            raise ScriptError(
                f"expansion columns {expansion.columns} != declared {node.columns}"
            )
        return expansion
    if isinstance(node, Empty):
        return Relation(node.columns, [])
    if isinstance(node, Filter):
        child = run_ir(node.child, ctx)
        pos = child.positions
        return Relation(
            node.columns, [r for r in child.rows if matches(node.predicate, pos, r)]
        )
    if isinstance(node, Compute):
        from ..expr import Col

        child = run_ir(node.child, ctx)
        pos = child.positions
        if all(isinstance(e, Col) for _, e in node.items):
            idx = [pos[e.name] for _, e in node.items]
            return Relation(
                node.columns, [tuple(r[i] for i in idx) for r in child.rows]
            )
        exprs = [e for _, e in node.items]
        return Relation(
            node.columns,
            [tuple(eval_expr(e, pos, r) for e in exprs) for r in child.rows],
        )
    if isinstance(node, Distinct):
        return run_ir(node.child, ctx).distinct()
    if isinstance(node, UnionRows):
        rows: list[tuple] = []
        for part in node.parts:
            rows.extend(run_ir(part, ctx).rows)
        return Relation(node.columns, rows)
    if isinstance(node, GroupAgg):
        child = run_ir(node.child, ctx)
        return aggregate_rows(child, node.keys, node.aggs)
    if isinstance(node, ProbeJoin):
        return _run_probe_join(node, ctx)
    if isinstance(node, ProbeSemi):
        return _run_probe_semi(node, ctx)
    raise ScriptError(f"cannot execute IR node {node!r}")


def _run_probe_join(node: ProbeJoin, ctx: IrContext) -> Relation:
    left = run_ir(node.left, ctx)
    if not left.rows:
        return Relation(node.columns, [])
    if node.on:
        lpos = [left.position(a) for a, _ in node.on]
        sub_attrs = tuple(b for _, b in node.on)
        probe_values = [tuple(r[i] for i in lpos) for r in left.rows]
        sub = _resolve_probe(node, ctx, sub_attrs, probe_values)
        spos = [sub.position(b) for b in sub_attrs]
        buckets: dict[tuple, list[tuple]] = {}
        for sr in sub.rows:
            key = tuple(sr[i] for i in spos)
            if None in key:
                continue  # SQL: NULL never equi-joins
            buckets.setdefault(key, []).append(sr)
        matches_for = lambda probe: buckets.get(probe, ())  # noqa: E731
    else:
        sub = ctx.resolve_subview(node.node, node.state)
        all_rows = sub.rows
        probe_values = [() for _ in left.rows]
        matches_for = lambda _probe: all_rows  # noqa: E731
    keep_pos = [sub.position(c) for _, c in node.keep]
    out_positions = {c: i for i, c in enumerate(node.columns)}
    rows: list[tuple] = []
    for lr, probe in zip(left.rows, probe_values):
        for sr in matches_for(probe):
            combined = lr + tuple(sr[i] for i in keep_pos)
            if node.residual is None or matches(node.residual, out_positions, combined):
                rows.append(combined)
    return Relation(node.columns, rows)


def _resolve_probe(
    node: ProbeJoin, ctx: IrContext, sub_attrs: tuple, probe_values: list[tuple]
) -> Relation:
    """Fetch the probed subview rows, opportunistically through an
    ancestor materialization (Section 9's insert i-diff extension).

    Applicable only when the hinted guard tables carry no modifications
    in this batch: then every materialization row holds a genuine,
    current row of the probed subview.  Per-value misses (the subview
    row exists but no view row exposes it) fall back to the ordinary
    base probe.
    """
    hint = node.via_output
    usable = (
        hint is not None
        and set(hint.guard_tables) <= ctx.unchanged_tables
        and hint.mat_node_id in ctx.caches
    )
    if not usable:
        return ctx.resolve_subview(
            node.node, node.state, Bindings(sub_attrs, probe_values)
        )
    mat = ctx.caches[hint.mat_node_id]
    mat_attrs = tuple(hint.column_map[a] for a in sub_attrs)
    sub_columns = node.node.columns
    mat_positions = [mat.schema.position(hint.column_map[c]) for c in sub_columns]
    rows: list[tuple] = []
    missed: list[tuple] = []
    # The probe's on-columns cover the target's IDs, so the target
    # portion is functionally determined by the looked-up values: one
    # exemplar materialization row per value suffices (LIMIT 1).
    for value in dict.fromkeys(tuple(v) for v in probe_values):
        mat_row = mat.lookup_one(mat_attrs, value)
        if mat_row is not None:
            rows.append(tuple(mat_row[i] for i in mat_positions))
        else:
            missed.append(value)
    metrics.counter("view_reuse.probe_hits").inc(len(rows))
    metrics.counter("view_reuse.probe_misses").inc(len(missed))
    if missed:
        fallback = ctx.resolve_subview(
            node.node, node.state, Bindings(sub_attrs, missed)
        )
        rows.extend(fallback.rows)
    return Relation(sub_columns, rows)


def _run_probe_semi(node: ProbeSemi, ctx: IrContext) -> Relation:
    left = run_ir(node.left, ctx)
    if not left.rows:
        return Relation(node.columns, [])
    if node.on:
        lpos = [left.position(a) for a, _ in node.on]
        sub_attrs = tuple(b for _, b in node.on)
        probe_values = [tuple(r[i] for i in lpos) for r in left.rows]
        sub = ctx.resolve_subview(
            node.node, node.state, Bindings(sub_attrs, probe_values)
        )
        spos = [sub.position(b) for b in sub_attrs]
        buckets: dict[tuple, list[tuple]] = {}
        for sr in sub.rows:
            key = tuple(sr[i] for i in spos)
            if None in key:
                continue  # SQL: NULL never equi-joins
            buckets.setdefault(key, []).append(sr)
        candidates_for = lambda probe: buckets.get(probe, ())  # noqa: E731
    else:
        sub = ctx.resolve_subview(node.node, node.state)
        all_rows = sub.rows
        probe_values = [() for _ in left.rows]
        candidates_for = lambda _probe: all_rows  # noqa: E731

    if node.residual is not None:
        combined_positions = {c: i for i, c in enumerate(left.columns)}
        offset = len(left.columns)
        for i, c in enumerate(node.node.columns):
            combined_positions[SUB_PREFIX + c] = offset + i

        def has_match(lr: tuple, probe: tuple) -> bool:
            return any(
                matches(node.residual, combined_positions, lr + sr)
                for sr in candidates_for(probe)
            )

    else:

        def has_match(lr: tuple, probe: tuple) -> bool:
            return bool(candidates_for(probe))

    rows = [
        lr
        for lr, probe in zip(left.rows, probe_values)
        if has_match(lr, probe) != node.negated
    ]
    return Relation(node.columns, rows)
