"""The paper's contribution: ID-based incremental view maintenance."""

from .apply import AppliedChanges, apply_diff
from .diffs import (
    DELETE,
    INSERT,
    UPDATE,
    Diff,
    DiffSchema,
    delete_schema_for,
    insert_schema_for,
    is_effective,
    merge_diffs,
    update_schema_for,
)
from .eager import EagerIvmEngine
from .engine import IdIvmEngine, MaintenanceReport, MaterializedView
from .generator import GeneratedPlan, ScriptGenerator, has_mvd_risk
from .idinfer import annotate_plan, node_by_id
from .modlog import ModificationLog, populate_instances, schema_instance_name
from .schema_gen import conditional_attribute_groups, generate_base_schemas
from .script import DeltaScript, execute_script
from .sharded import ShardedEngine, ShardedMaintenanceReport

__all__ = [
    "AppliedChanges",
    "DELETE",
    "Diff",
    "DiffSchema",
    "DeltaScript",
    "EagerIvmEngine",
    "GeneratedPlan",
    "INSERT",
    "IdIvmEngine",
    "MaintenanceReport",
    "MaterializedView",
    "ModificationLog",
    "ScriptGenerator",
    "ShardedEngine",
    "ShardedMaintenanceReport",
    "UPDATE",
    "annotate_plan",
    "apply_diff",
    "conditional_attribute_groups",
    "delete_schema_for",
    "execute_script",
    "generate_base_schemas",
    "has_mvd_risk",
    "insert_schema_for",
    "is_effective",
    "merge_diffs",
    "node_by_id",
    "populate_instances",
    "schema_instance_name",
    "update_schema_for",
]
