"""i-diff propagation rules for selection σ_φ(X̄) — paper Table 6.

* insert: filter the diff by φ over post-state values (always derivable —
  insert i-diffs carry full tuples).
* delete: filter by φ over pre-state values when the diff carries them
  (the table's blue variant), pass through unfiltered otherwise
  (overestimation, Example 4.8).
* update: when the updated attributes are disjoint from X̄ the update can
  only yield updates; otherwise it splits into an update branch (rows
  satisfying φ before and after), an insert branch (rows newly satisfying
  φ — full tuples obtained from ``Input_post``, the general form that
  Pass 4 minimizes when the diff suffices) and a delete branch (rows no
  longer satisfying φ).
"""

from __future__ import annotations

from ...algebra.plan import Select
from ...expr import Expr, Not, all_of, col, columns_of, is_true
from ..diffs import DELETE, INSERT, DiffSchema, pre_col
from ..ir import POST, PRE, Compute, Filter, IrNode
from .base import (
    ValueSource,
    make_insert,
    passthrough_schema,
    subst_state,
    target_name,
    values_via_probe,
)


def propagate_select(
    op: Select, source: IrNode, in_schema: DiffSchema
) -> list[tuple[DiffSchema, IrNode]]:
    """Instantiate the Table 6 rules for one input diff branch."""
    predicate = op.predicate
    condition_attrs = columns_of(predicate)
    if in_schema.kind == INSERT:
        phi_post = subst_state(predicate, in_schema, POST)
        return [(passthrough_schema(op, in_schema), Filter(source, phi_post))]
    if in_schema.kind == DELETE:
        phi_pre = subst_state(predicate, in_schema, PRE)
        ir: IrNode = Filter(source, phi_pre) if phi_pre is not None else source
        return [(passthrough_schema(op, in_schema), ir)]
    return _propagate_update(op, source, in_schema, predicate, condition_attrs)


def _propagate_update(
    op: Select,
    source: IrNode,
    in_schema: DiffSchema,
    predicate: Expr,
    condition_attrs: frozenset[str],
) -> list[tuple[DiffSchema, IrNode]]:
    updated = set(in_schema.post_attrs)
    phi_pre = subst_state(predicate, in_schema, PRE)
    phi_post = subst_state(predicate, in_schema, POST)

    if not (condition_attrs & updated):
        # The condition is untouched: pure update propagation, filtered by
        # φ over pre values when available (rows failing φ are not in the
        # view; their updates are dummies).
        ir: IrNode = Filter(source, phi_pre) if phi_pre is not None else source
        return [(passthrough_schema(op, in_schema), ir)]

    out: list[tuple[DiffSchema, IrNode]] = []

    # --- update branch: satisfied φ before and after ------------------
    conditions = [c for c in (phi_pre, phi_post) if c is not None]
    update_ir: IrNode = Filter(source, all_of(*conditions)) if conditions else source
    out.append((passthrough_schema(op, in_schema), update_ir))

    # --- insert branch: ¬φ(pre) ∧ φ(post); needs full post tuples ------
    seed: IrNode = source
    seed_filters = []
    if phi_post is not None:
        seed_filters.append(phi_post)
    if phi_pre is not None:
        # IS TRUE: a row moving UNKNOWN -> TRUE enters the view too, and
        # plain NOT over an UNKNOWN pre-predicate would drop it here.
        seed_filters.append(Not(is_true(phi_pre)))
    if seed_filters:
        seed = Filter(source, all_of(*seed_filters))
    values = values_via_probe(seed, in_schema, op.child, POST, list(op.child.columns))
    insert_base = values.ir
    if phi_post is None:
        # φ was not derivable from the diff; evaluate it on the probed
        # post-state values instead.
        insert_base = Filter(values.ir, values.rewrite(predicate))
    insert_values = ValueSource(insert_base, values.mapping, values.probed)
    out.append(
        make_insert(op, insert_values, {c: col(c) for c in op.columns})
    )

    # --- delete branch: φ(pre) ∧ ¬φ(post) ------------------------------
    delete_seed: IrNode = source
    delete_filters = []
    if phi_pre is not None:
        delete_filters.append(phi_pre)
    if phi_post is not None:
        # IS TRUE: TRUE -> UNKNOWN also leaves the view.
        delete_filters.append(Not(is_true(phi_post)))
    if delete_filters:
        delete_seed = Filter(source, all_of(*delete_filters))
    if phi_post is None:
        # General form: rows whose post state fails φ (probe Input_post).
        dvalues = values_via_probe(
            delete_seed, in_schema, op.child, POST, sorted(condition_attrs)
        )
        delete_seed = Filter(dvalues.ir, Not(is_true(dvalues.rewrite(predicate))))
    delete_schema = DiffSchema(
        DELETE,
        target_name(op),
        in_schema.id_attrs,
        pre_attrs=in_schema.pre_attrs,
    )
    items = [(a, col(a)) for a in in_schema.id_attrs]
    items += [(pre_col(a), col(pre_col(a))) for a in in_schema.pre_attrs]
    out.append((delete_schema, Compute(delete_seed, items)))
    return out
