"""i-diff propagation rules for generalized projection π — paper Table 8.

The projection computes output columns ``name := expr(child columns)``;
after Pass 1 every child ID is passed through under some output name, so
the diff's ID attributes always survive the projection (possibly renamed).

* insert: recompute every output column from the diff's post values.
* delete: rename the IDs; carry the pre values of whatever output columns
  are derivable from the diff's pre attributes (blue variant).
* update: only output columns whose expression touches an updated
  attribute change.  Their new values are computed from the diff when
  derivable and from ``Input_post`` otherwise (general form; minimized by
  Pass 4).  The σ_isupd filter drops rows whose recomputed outputs did
  not actually change (requires derivable pre values).
"""

from __future__ import annotations

from ...algebra.plan import Project
from ...errors import RuleError
from ...expr import Call, Col, Expr, any_of, col, columns_of
from ..diffs import DELETE, INSERT, UPDATE, DiffSchema, post_col, pre_col
from ..ir import POST, PRE, Compute, Filter, IrNode
from .base import (
    state_mapping,
    target_name,
    values_via_probe,
)


def _passthrough_map(op: Project) -> dict[str, str]:
    """child column -> output name, for bare-column items."""
    mapping: dict[str, str] = {}
    for name, expr in op.items:
        if isinstance(expr, Col) and expr.name not in mapping:
            mapping[expr.name] = name
    return mapping


def _mapped_ids(op: Project, in_schema: DiffSchema) -> tuple[str, ...]:
    passthrough = _passthrough_map(op)
    try:
        return tuple(passthrough[a] for a in in_schema.id_attrs)
    except KeyError as exc:
        raise RuleError(
            f"diff ID {exc.args[0]!r} is not passed through projection "
            f"{target_name(op)}; Pass 1 should have extended the plan"
        ) from None


def propagate_project(
    op: Project, source: IrNode, in_schema: DiffSchema
) -> list[tuple[DiffSchema, IrNode]]:
    """Instantiate the Table 8 rules for one input diff branch."""
    if in_schema.kind == INSERT:
        return _propagate_insert(op, source, in_schema)
    if in_schema.kind == DELETE:
        return _propagate_delete(op, source, in_schema)
    return _propagate_update(op, source, in_schema)


def _propagate_insert(
    op: Project, source: IrNode, in_schema: DiffSchema
) -> list[tuple[DiffSchema, IrNode]]:
    post_map = state_mapping(in_schema, POST)
    out_ids = tuple(op.ids)
    non_ids = tuple(c for c in op.columns if c not in set(out_ids))
    exprs = dict(op.items)
    items = [(a, _rewrite(exprs[a], post_map)) for a in out_ids]
    items += [(post_col(c), _rewrite(exprs[c], post_map)) for c in non_ids]
    schema = DiffSchema(INSERT, target_name(op), out_ids, post_attrs=non_ids)
    return [(schema, Compute(source, items))]


def _propagate_delete(
    op: Project, source: IrNode, in_schema: DiffSchema
) -> list[tuple[DiffSchema, IrNode]]:
    out_ids = _mapped_ids(op, in_schema)
    pre_map = state_mapping(in_schema, PRE)
    items = [(a, col(diff_col)) for a, diff_col in zip(out_ids, in_schema.id_attrs)]
    # Carry pre values for every derivable non-ID output column.
    pre_attrs: list[str] = []
    id_set = set(out_ids)
    for name, expr in op.items:
        if name in id_set:
            continue
        if set(columns_of(expr)) <= set(pre_map):
            pre_attrs.append(name)
            items.append((pre_col(name), _rewrite(expr, pre_map)))
    schema = DiffSchema(
        DELETE, target_name(op), out_ids, pre_attrs=tuple(pre_attrs)
    )
    return [(schema, Compute(source, items))]


def _propagate_update(
    op: Project, source: IrNode, in_schema: DiffSchema
) -> list[tuple[DiffSchema, IrNode]]:
    updated = set(in_schema.post_attrs)
    out_ids = _mapped_ids(op, in_schema)
    id_set = set(out_ids)
    affected = [
        (name, expr)
        for name, expr in op.items
        if name not in id_set and (set(columns_of(expr)) & updated)
    ]
    if not affected:
        # No output column depends on the updated attributes: the view is
        # untouched by this branch (rule not triggered).
        return []

    needed = sorted({c for _, expr in affected for c in columns_of(expr)})
    post_map = state_mapping(in_schema, POST)
    expanded = not all(c in post_map for c in needed)
    if expanded:
        return _propagate_update_expanded(op, source, in_schema, affected, needed)

    values = values_via_probe(source, in_schema, op.child, POST, needed)
    pre_map = state_mapping(in_schema, PRE)

    items = [(a, col(diff_col)) for a, diff_col in zip(out_ids, in_schema.id_attrs)]
    pre_attrs: list[str] = []
    post_attrs: list[str] = []
    isupd_terms: list[Expr] = []
    for name, expr in affected:
        post_attrs.append(name)
        post_expr = values.rewrite(expr)
        items.append((post_col(name), post_expr))
        if set(columns_of(expr)) <= set(pre_map):
            pre_attrs.append(name)
            pre_expr = _rewrite(expr, pre_map)
            items.append((pre_col(name), pre_expr))
            isupd_terms.append(Call("is_distinct", [post_expr, pre_expr]))

    # sigma_isupd: drop rows provably unchanged (only when *every* affected
    # output has a derivable pre value, otherwise a change could hide in
    # the non-derivable ones).
    base: IrNode = values.ir
    if len(pre_attrs) == len(affected) and isupd_terms:
        base = Filter(base, any_of(*isupd_terms))

    # Also pass through derivable pre values of *unaffected* columns --
    # they are free and reduce overestimation upstream (Section 5).
    for name, expr in op.items:
        if name in id_set or name in set(post_attrs):
            continue
        if set(columns_of(expr)) <= set(pre_map):
            pre_attrs.append(name)
            items.append((pre_col(name), _rewrite(expr, pre_map)))

    schema = DiffSchema(
        UPDATE,
        target_name(op),
        out_ids,
        pre_attrs=tuple(pre_attrs),
        post_attrs=tuple(post_attrs),
    )
    # Order items to match the schema layout: ids, pres, posts.
    by_name = dict(items)
    ordered = [(a, by_name[a]) for a in out_ids]
    ordered += [(pre_col(a), by_name[pre_col(a)]) for a in schema.pre_attrs]
    ordered += [(post_col(a), by_name[post_col(a)]) for a in schema.post_attrs]
    return [(schema, Compute(base, ordered))]


def _propagate_update_expanded(
    op: Project,
    source: IrNode,
    in_schema: DiffSchema,
    affected: list[tuple[str, Expr]],
    needed: list[str],
) -> list[tuple[DiffSchema, IrNode]]:
    """Update rule when a recomputed output depends on attributes outside
    the diff.

    Its new value is then NOT functionally determined by the diff's ID
    subset (Section 2's FD requirement for i-diffs), so the Input_post
    probe expands the diff to full child rows and the output diff is
    keyed by the full child IDs.  No pre-state values are emitted: the
    probed post values reflect the whole batch, and mixing them with this
    branch's pre values would let downstream rules filter incorrectly --
    overestimation is the safe direction (Example 4.8).
    """
    child_ids = tuple(op.child.ids)
    passthrough = _passthrough_map(op)
    try:
        out_ids = tuple(passthrough[a] for a in child_ids)
    except KeyError as exc:
        raise RuleError(
            f"child ID {exc.args[0]!r} is not passed through projection "
            f"{target_name(op)}; Pass 1 should have extended the plan"
        ) from None
    request = sorted(set(needed) | set(child_ids))
    values = values_via_probe(source, in_schema, op.child, POST, request)
    id_set = set(out_ids)
    affected = [(n, e) for n, e in affected if n not in id_set]
    if not affected:
        return []
    items = [
        (out_name, values.expr_for(child_id))
        for out_name, child_id in zip(out_ids, child_ids)
    ]
    post_attrs = tuple(name for name, _ in affected)
    items += [
        (post_col(name), values.rewrite(expr)) for name, expr in affected
    ]
    schema = DiffSchema(
        UPDATE, target_name(op), out_ids, post_attrs=post_attrs
    )
    return [(schema, Compute(values.ir, items))]


def _rewrite(expr: Expr, mapping: dict[str, str]) -> Expr:
    from ...expr import rename_columns

    return rename_columns(expr, mapping)
