"""Blocking i-diff rules for grouping γ — paper Tables 7, 9, 11 and 12.

Aggregation is where the paper's cache machinery earns its keep.  Two
strategies are implemented, both *blocking* (they see every diff branch
arriving at the operator before emitting output diffs, Example 4.4):

:class:`AssociativeAggregateStep` (sum / count / avg — Tables 9, 11, 12)
    Converts each incoming branch into row-level changes of the γ input —
    for free from ``UPDATE ... RETURNING`` expansions when an input cache
    exists (Appendix A), via counted ``Input_pre`` probes otherwise — then
    aggregates per-group deltas (the ∆1 ∪ ∆2 ∪ ∆3 union of Table 9),
    applies them to the operator's output materialization in a single
    read-modify-write pass per group, and re-emits the applied changes as
    effective diffs for the operators above.

    An *operator cache* (Table 12's ``Cache_sum`` / ``Cache_count``,
    generalized) tracks group cardinalities and per-aggregate non-null
    counts so group creation/deletion and NULL semantics are handled
    exactly — an extension over the paper, whose rules "do not handle
    group creation/deletion".  The operator cache is only touched when a
    cardinality actually changes, so pure-update workloads (the paper's
    experiments) pay nothing for it.

:class:`GeneralAggregateStep` (min / max, or any function via recompute —
    Table 7)
    Collects the affected group keys, recomputes those groups from
    ``Input_post`` and reconciles them against the output materialization.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...algebra.delta_eval import Bindings
from ...algebra.plan import GroupBy
from ...algebra.relation import Relation
from ...errors import ScriptError
from ...expr import evaluate as eval_expr
from ...storage import Table, TableSchema, sort_rows
from ..apply import AppliedChanges
from ..diffs import DELETE, INSERT, UPDATE, Diff, DiffSchema
from ..ir_exec import IrContext
from ..script import Step


class OpCacheSpec:
    """Schema of a γ node's operator cache (hidden bookkeeping table).

    Columns: the group keys, ``__n`` (group cardinality), and per
    aggregate ``__cnt_<name>`` (non-null argument count) plus
    ``__sum_<name>`` for avg.
    """

    def __init__(self, gnode: GroupBy, name: str):
        self.name = name
        self.gnode = gnode
        columns = list(gnode.keys) + ["__n"]
        for agg in gnode.aggs:
            if agg.func in ("sum", "avg"):
                columns.append(f"__cnt_{agg.name}")
            if agg.func == "avg":
                columns.append(f"__sum_{agg.name}")
        self.columns = tuple(columns)
        self.key = tuple(gnode.keys)

    def build(self, child_rows: Relation, counters) -> Table:
        """Materialize the operator cache from the child's current rows
        (view-definition time; uncounted)."""
        table = Table(TableSchema(self.name, self.columns, self.key), counters=counters)
        pos = child_rows.positions
        key_idx = [child_rows.position(k) for k in self.gnode.keys]
        groups: dict[tuple, dict[str, int]] = {}
        for row in child_rows.rows:
            g = tuple(row[i] for i in key_idx)
            acc = groups.setdefault(g, {"__n": 0})
            acc["__n"] += 1
            for agg in self.gnode.aggs:
                if agg.func not in ("sum", "avg"):
                    continue
                value = eval_expr(agg.arg, pos, row)
                acc.setdefault(f"__cnt_{agg.name}", 0)
                acc.setdefault(f"__sum_{agg.name}", 0)
                if value is not None:
                    acc[f"__cnt_{agg.name}"] += 1
                    acc[f"__sum_{agg.name}"] += value
        for g, acc in groups.items():
            row = list(g)
            for c in self.columns[len(g):]:
                row.append(acc.get(c, 0))
            table.insert_uncounted(tuple(row))
        return table


class _GroupDelta:
    """Accumulated per-group deltas across all incoming branches."""

    __slots__ = ("n", "sums", "cnts")

    def __init__(self, n_aggs: int):
        self.n = 0
        self.sums = [0] * n_aggs
        self.cnts = [0] * n_aggs

    def is_zero(self) -> bool:
        return self.n == 0 and not any(self.sums) and not any(self.cnts)


#: sentinel distinguishing "not touched this round" from "deleted".
_UNTOUCHED = object()


class _ChangeCollector:
    """Turns incoming branches into (pre_row, post_row) child-row changes.

    Branches arriving from different base tables may describe the *same*
    child row — the join rules deliberately overestimate (∆+ ⋈ the other
    side's POST state sees rows another branch also inserts; two updates
    in one batch may touch two attributes of one row).  With an input
    cache the sequential APPLY absorbs that overlap: each branch applies
    against the state the previous branches left behind.  Without a
    cache this collector replays the same discipline in memory: an
    *overlay* of this round's changes (keyed by the child's own IDs)
    shadows the ``Input_pre`` probes, so each branch's changes are
    computed against the current state, not the round's start.  The
    counted probe traffic is exactly the historical per-branch
    ``Input_pre`` lookup — the overlay is pure bookkeeping.
    """

    def __init__(self, gnode: GroupBy, ctx: IrContext):
        self.gnode = gnode
        self.child = gnode.child
        self.ctx = ctx
        positions = {c: i for i, c in enumerate(self.child.columns)}
        self._child_id_idx = tuple(positions[a] for a in self.child.ids)
        #: child-ID -> current row (None = deleted) for rows changed by
        #: branches already collected this round.
        self._overlay: dict[tuple, Optional[tuple]] = {}

    def _child_id(self, row: tuple) -> tuple:
        return tuple(row[i] for i in self._child_id_idx)

    def from_expansion(self, applied: AppliedChanges) -> list[tuple]:
        return list(applied.changes)

    def _probe_current(self, diff: Diff) -> dict[tuple, list[tuple]]:
        """diff-ID -> current child rows: the counted ``Input_pre`` probe
        with this round's overlay folded in (earlier branches win)."""
        schema = diff.schema
        ids = schema.id_attrs
        bindings = Bindings(ids, [diff.id_of(r) for r in diff.rows])
        pre = self.ctx.resolve_subview(self.child, "pre", bindings)
        id_idx = [pre.position(a) for a in ids]
        by_id: dict[tuple, list[tuple]] = {}
        for row in pre.rows:
            if self._child_id(row) in self._overlay:
                continue  # superseded by an earlier branch this round
            by_id.setdefault(tuple(row[i] for i in id_idx), []).append(row)
        if self._overlay:
            # Rows created or rewritten by earlier branches are absent
            # from Input_pre; fold the live overlay rows matching the
            # diff's IDs back in (uncounted: they are in memory already).
            positions = {c: i for i, c in enumerate(self.child.columns)}
            o_idx = [positions[a] for a in ids]
            wanted = {diff.id_of(r) for r in diff.rows}
            for current in self._overlay.values():
                if current is None:
                    continue
                key = tuple(current[i] for i in o_idx)
                if key in wanted:
                    by_id.setdefault(key, []).append(current)
        return by_id

    def from_diff(self, diff: Diff) -> list[tuple]:
        """Row-level changes via counted Input_pre probes (Table 9's
        ∆ ⋈ Input_pre form; exact — dummy diff rows probe to nothing)."""
        schema = diff.schema
        if not diff.rows:
            return []
        if schema.kind == INSERT:
            return self._inserts(diff)
        by_id = self._probe_current(diff)
        changes: list[tuple] = []
        if schema.kind == DELETE:
            for diff_row in diff.rows:
                for row in by_id.get(diff.id_of(diff_row), ()):
                    changes.append((row, None))
                    self._overlay[self._child_id(row)] = None
            return changes
        # UPDATE: post rows are the current rows with updated attrs replaced.
        positions = {c: i for i, c in enumerate(self.child.columns)}
        for diff_row in diff.rows:
            overrides = {
                positions[a]: diff.post_value(diff_row, a) for a in schema.post_attrs
            }
            for row in by_id.get(diff.id_of(diff_row), ()):
                new = list(row)
                for i, v in overrides.items():
                    new[i] = v
                new = tuple(new)
                changes.append((row, new))
                self._overlay[self._child_id(row)] = new
        return changes

    def _inserts(self, diff: Diff) -> list[tuple]:
        """∆+ ▷ Input_pre (Table 9's ∆3): skip rows already present."""
        schema = diff.schema
        order = [
            (schema.id_attrs + schema.post_attrs).index(c)
            for c in self.child.columns
        ]
        bindings = Bindings(schema.id_attrs, [diff.id_of(r) for r in diff.rows])
        pre = self.ctx.resolve_subview(self.child, "pre", bindings)
        id_positions = [
            list(self.child.columns).index(a) for a in schema.id_attrs
        ]
        existing = {tuple(r[i] for i in id_positions) for r in pre.rows}
        changes: list[tuple] = []
        for diff_row in diff.rows:
            row = tuple(diff_row[i] for i in order)
            current = self._overlay.get(self._child_id(row), _UNTOUCHED)
            if current is _UNTOUCHED:
                if diff.id_of(diff_row) in existing:
                    continue
            elif current is not None:
                continue  # inserted or rewritten by an earlier branch
            # (current is None: deleted earlier this round — genuinely new)
            changes.append((None, row))
            self._overlay[self._child_id(row)] = row
        return changes


class AssociativeAggregateStep(Step):
    """Delta maintenance for sum / count / avg (Tables 9, 11, 12)."""

    def __init__(
        self,
        gnode: GroupBy,
        inputs: Sequence[tuple[str, str]],
        opcache_name: str,
        emit_prefix: str,
        phase: str,
    ):
        """*inputs* is a list of ("expansion"|"diff", name) pairs."""
        self.gnode = gnode
        self.inputs = list(inputs)
        self.opcache_name = opcache_name
        self.emit_prefix = emit_prefix
        self.phase = phase
        self.emitted: dict[str, str] = {
            INSERT: f"{self.emit_prefix}_ins",
            DELETE: f"{self.emit_prefix}_del",
            UPDATE: f"{self.emit_prefix}_upd",
        }

    # ------------------------------------------------------------------
    def run(self, ctx: IrContext) -> None:
        gnode = self.gnode
        collector = _ChangeCollector(gnode, ctx)
        changes: list[tuple] = []
        for source_kind, name in self.inputs:
            if source_kind == "expansion":
                applied = ctx.expansions.get(name)
                if applied is None:
                    raise ScriptError(f"expansion {name!r} not available")
                changes.extend(collector.from_expansion(applied))
            else:
                diff = ctx.diffs.get(name)
                if diff is None:
                    raise ScriptError(f"diff {name!r} not available")
                changes.extend(collector.from_diff(diff))
        deltas = group_deltas_from_changes(self.gnode, changes)
        self._apply_deltas(ctx, deltas)

    # ------------------------------------------------------------------
    def _apply_deltas(self, ctx: IrContext, deltas: dict[tuple, _GroupDelta]) -> None:
        gnode = self.gnode
        out_table = ctx.caches.get(gnode.node_id)
        if out_table is None:
            raise ScriptError(
                f"aggregate n{gnode.node_id} has no output materialization"
            )
        opcache = ctx.operator_caches.get(gnode.node_id)
        if opcache is None:
            raise ScriptError(f"aggregate n{gnode.node_id} has no operator cache")
        applied, kinds = apply_group_deltas(gnode, deltas, out_table, opcache)
        self._emit(ctx, out_table, applied, kinds)

    # ------------------------------------------------------------------
    def _emit(
        self,
        ctx: IrContext,
        out_table: Table,
        applied: list[tuple],
        kinds: list[str],
    ) -> None:
        """Re-express the applied changes as effective diffs for the
        operators above (and mark our output as post-state)."""
        grouped = {INSERT: [], DELETE: [], UPDATE: []}
        for change, kind in zip(applied, kinds):
            grouped[kind].append(change)
        for kind, name in self.emitted.items():
            ctx.diffs[name] = _changes_to_diff(
                kind, grouped[kind], out_table.schema, f"n{self.gnode.node_id}"
            )
        ctx.mark_cache_updated(self.gnode.node_id)

    def describe(self) -> str:
        srcs = ", ".join(f"{k}:{n}" for k, n in self.inputs)
        return (
            f"γ-delta n{self.gnode.node_id} [{self.gnode.label()}] "
            f"from {srcs} -> {', '.join(self.emitted.values())}"
        )


def apply_group_deltas(
    gnode: GroupBy,
    deltas: dict[tuple, _GroupDelta],
    out_table: Table,
    opcache: Table,
) -> tuple[list[tuple], list[str]]:
    """Fused read-modify-write of group deltas against *out_table*.

    Per affected group: one index lookup + one tuple access (the Output ⋈
    of Table 9 fused with the UPDATE — this is what makes the Table 3
    view-modification cost |D|pg rather than double).  The *opcache*
    bookkeeping is touched only when a cardinality / non-null count (or
    an avg's running sum) actually changes.

    Returns ``(applied, kinds)``: the (pre, post) full output rows plus
    their change kinds, for re-emission as effective diffs.
    """
    aggs = gnode.aggs
    out_schema = out_table.schema
    agg_positions = [out_schema.position(a.name) for a in aggs]
    applied: list[tuple] = []
    kinds: list[str] = []
    has_avg = any(a.func == "avg" for a in aggs)
    for g, delta in deltas.items():
        if delta.is_zero():
            continue
        touch_opcache = (
            delta.n != 0 or any(delta.cnts) or (has_avg and any(delta.sums))
        )
        book = _read_book(opcache, g, touch_opcache)
        keys = out_table.locate(gnode.keys, g)
        if keys:
            old_row = out_table.get_uncounted(keys[0])
            new_n = book["__n"] + delta.n
            if new_n == 0:
                out_table.delete_at(keys[0])
                _write_book(gnode, opcache, g, None, touch_opcache)
                applied.append((old_row, None))
                kinds.append(DELETE)
                continue
            new_book = _bump_book(gnode, book, delta, new_n)
            new_values = _new_values(gnode, old_row, agg_positions, delta, new_book)
            new_row = list(old_row)
            for pos, value in zip(agg_positions, new_values):
                new_row[pos] = value
            new_row = tuple(new_row)
            if new_row != old_row:
                out_table.write_at(
                    keys[0], {a.name: v for a, v in zip(aggs, new_values)}
                )
                applied.append((old_row, new_row))
                kinds.append(UPDATE)
            _write_book(gnode, opcache, g, new_book, touch_opcache)
        else:
            if delta.n <= 0:
                continue  # dummy deltas for a group that never existed
            new_book = _bump_book(gnode, {"__n": 0}, delta, delta.n)
            values = _insert_values(gnode, delta, new_book)
            row = g + tuple(values)
            out_table.insert_checked(row)
            _write_book(gnode, opcache, g, new_book, True, inserting=True)
            applied.append((None, row))
            kinds.append(INSERT)
    return applied, kinds


def _read_book(opcache: Table, g: tuple, touch: bool) -> dict:
    """Bookkeeping row for group *g* (counted only when touched)."""
    if touch:
        rows = opcache.lookup(opcache.schema.key, g)
    else:
        row = opcache.get_uncounted(g)
        rows = [row] if row is not None else []
    if not rows:
        return {"__n": 0}
    schema = opcache.schema
    return {
        c: rows[0][schema.position(c)]
        for c in schema.columns
        if c.startswith("__")
    }


def _bump_book(gnode: GroupBy, book: dict, delta: _GroupDelta, new_n: int) -> dict:
    new_book = {"__n": new_n}
    for i, agg in enumerate(gnode.aggs):
        if agg.func in ("sum", "avg"):
            new_book[f"__cnt_{agg.name}"] = (
                book.get(f"__cnt_{agg.name}", 0) + delta.cnts[i]
            )
        if agg.func == "avg":
            new_book[f"__sum_{agg.name}"] = (
                book.get(f"__sum_{agg.name}", 0) + delta.sums[i]
            )
    return new_book


def _write_book(
    gnode: GroupBy,
    opcache: Table,
    g: tuple,
    new_book: Optional[dict],
    touch: bool,
    inserting: bool = False,
) -> None:
    if not touch:
        return
    if new_book is None:
        opcache.delete_at(g)
        return
    row = g + tuple(new_book.get(c, 0) for c in opcache.schema.columns[len(g):])
    if inserting or opcache.get_uncounted(g) is None:
        opcache.insert_checked(row)
    else:
        opcache.write_at(
            g,
            {c: new_book.get(c, 0) for c in opcache.schema.columns[len(g):]},
        )


def _new_values(
    gnode: GroupBy,
    old_row: tuple,
    agg_positions: list[int],
    delta: _GroupDelta,
    book: dict,
) -> list:
    values = []
    for i, agg in enumerate(gnode.aggs):
        old = old_row[agg_positions[i]]
        if agg.func == "count":
            if agg.arg is None:
                values.append((old or 0) + delta.n)
            else:
                values.append((old or 0) + delta.cnts[i])
        elif agg.func == "sum":
            cnt = book[f"__cnt_{agg.name}"]
            values.append(None if cnt == 0 else (old or 0) + delta.sums[i])
        elif agg.func == "avg":
            cnt = book[f"__cnt_{agg.name}"]
            total = book[f"__sum_{agg.name}"]
            values.append(None if cnt == 0 else total / cnt)
        else:  # pragma: no cover - generator routes min/max elsewhere
            raise ScriptError(f"associative step got {agg.func!r}")
    return values


def _insert_values(gnode: GroupBy, delta: _GroupDelta, book: dict) -> list:
    values = []
    for i, agg in enumerate(gnode.aggs):
        if agg.func == "count":
            values.append(delta.n if agg.arg is None else delta.cnts[i])
        elif agg.func == "sum":
            values.append(None if delta.cnts[i] == 0 else delta.sums[i])
        elif agg.func == "avg":
            cnt = book[f"__cnt_{agg.name}"]
            total = book[f"__sum_{agg.name}"]
            values.append(None if cnt == 0 else total / cnt)
        else:  # pragma: no cover
            raise ScriptError(f"associative step got {agg.func!r}")
    return values


def group_deltas_from_changes(
    gnode: GroupBy, changes: list[tuple]
) -> dict[tuple, _GroupDelta]:
    """Per-group deltas from (pre_row, post_row) child-row changes.

    Shared by the ID engine's blocking step and the tuple-based baseline
    (whose t-diffs carry the full rows already)."""
    positions = {c: i for i, c in enumerate(gnode.child.columns)}
    key_idx = [positions[k] for k in gnode.keys]
    aggs = gnode.aggs
    deltas: dict[tuple, _GroupDelta] = {}

    def bump(row: tuple, sign: int) -> None:
        g = tuple(row[i] for i in key_idx)
        delta = deltas.get(g)
        if delta is None:
            delta = _GroupDelta(len(aggs))
            deltas[g] = delta
        delta.n += sign
        for i, agg in enumerate(aggs):
            if agg.arg is None:
                continue
            value = eval_expr(agg.arg, positions, row)
            if value is None:
                continue
            delta.cnts[i] += sign
            if agg.func in ("sum", "avg"):
                delta.sums[i] += sign * value

    for pre_row, post_row in changes:
        if pre_row is not None:
            bump(pre_row, -1)
        if post_row is not None:
            bump(post_row, +1)
    return deltas


class GeneralAggregateStep(Step):
    """Recompute-based maintenance for arbitrary aggregates (Table 7)."""

    def __init__(
        self,
        gnode: GroupBy,
        inputs: Sequence[tuple[str, str]],
        emit_prefix: str,
        phase: str,
    ):
        self.gnode = gnode
        self.inputs = list(inputs)
        self.emit_prefix = emit_prefix
        self.phase = phase
        self.emitted: dict[str, str] = {
            INSERT: f"{emit_prefix}_ins",
            DELETE: f"{emit_prefix}_del",
            UPDATE: f"{emit_prefix}_upd",
        }

    def run(self, ctx: IrContext) -> None:
        gnode = self.gnode
        out_table = ctx.caches.get(gnode.node_id)
        if out_table is None:
            raise ScriptError(
                f"aggregate n{gnode.node_id} has no output materialization"
            )
        groups = self._affected_groups(ctx)
        if not groups:
            for kind, name in self.emitted.items():
                ctx.diffs[name] = _changes_to_diff(
                    kind, [], out_table.schema, f"n{gnode.node_id}"
                )
            ctx.mark_cache_updated(gnode.node_id)
            return
        # Recompute the affected groups from Input_post (Table 7's
        # γ(∆ ⋉Ḡ Input_post)).  sort_rows, not sorted: group keys may
        # contain NULLs or mixed types, which Python's < cannot order.
        ordered_groups = sort_rows(groups)
        recomputed = ctx.resolve_subview(
            gnode, "post", Bindings(gnode.keys, ordered_groups)
        )
        key_idx = [recomputed.position(k) for k in gnode.keys]
        new_rows = {tuple(r[i] for i in key_idx): r for r in recomputed.rows}
        applied: list[tuple] = []
        kinds: list[str] = []
        for g in ordered_groups:
            keys = out_table.locate(gnode.keys, g)
            old_row = out_table.get_uncounted(keys[0]) if keys else None
            new_row = new_rows.get(g)
            if old_row is None and new_row is None:
                continue
            if old_row is None:
                out_table.insert_checked(new_row)
                applied.append((None, new_row))
                kinds.append(INSERT)
            elif new_row is None:
                out_table.delete_at(keys[0])
                applied.append((old_row, None))
                kinds.append(DELETE)
            elif old_row != new_row:
                changes = {
                    a.name: new_row[out_table.schema.position(a.name)]
                    for a in gnode.aggs
                }
                out_table.write_at(keys[0], changes)
                applied.append((old_row, new_row))
                kinds.append(UPDATE)
        grouped = {INSERT: [], DELETE: [], UPDATE: []}
        for change, kind in zip(applied, kinds):
            grouped[kind].append(change)
        for kind, name in self.emitted.items():
            ctx.diffs[name] = _changes_to_diff(
                kind, grouped[kind], out_table.schema, f"n{gnode.node_id}"
            )
        ctx.mark_cache_updated(gnode.node_id)

    def _affected_groups(self, ctx: IrContext) -> set[tuple]:
        """Group keys whose membership may have changed, from both states."""
        gnode = self.gnode
        groups: set[tuple] = set()
        positions = {c: i for i, c in enumerate(gnode.child.columns)}
        key_idx = [positions[k] for k in gnode.keys]
        for source_kind, name in self.inputs:
            if source_kind == "expansion":
                # Cached child: the APPLY's RETURNING expansion already
                # carries full (pre, post) child rows — the group keys
                # are right there, no Input probes needed.
                applied = ctx.expansions.get(name)
                if applied is None:
                    raise ScriptError(f"expansion {name!r} not available")
                for pre_row, post_row in applied.changes:
                    for row in (pre_row, post_row):
                        if row is not None:
                            groups.add(tuple(row[i] for i in key_idx))
                continue
            diff = ctx.diffs.get(name)
            if diff is None:
                raise ScriptError(f"diff {name!r} not available")
            if not diff.rows:
                continue
            ids = diff.schema.id_attrs
            bindings = Bindings(ids, [diff.id_of(r) for r in diff.rows])
            for state in ("pre", "post"):
                rel = ctx.resolve_subview(gnode.child, state, bindings)
                k_idx = [rel.position(k) for k in gnode.keys]
                groups.update(tuple(r[i] for i in k_idx) for r in rel.rows)
            # Insert diffs carry their group keys directly.
            if diff.schema.kind == INSERT:
                from .base import state_mapping

                mapping = state_mapping(diff.schema, "post")
                if all(k in mapping for k in gnode.keys):
                    pos = diff.schema.positions
                    groups.update(
                        tuple(r[pos[mapping[k]]] for k in gnode.keys)
                        for r in diff.rows
                    )
        return groups

    def describe(self) -> str:
        srcs = ", ".join(f"{k}:{n}" for k, n in self.inputs)
        return (
            f"γ-recompute n{self.gnode.node_id} [{self.gnode.label()}] "
            f"from {srcs} -> {', '.join(self.emitted.values())}"
        )


def _changes_to_diff(kind: str, changes: list[tuple], table_schema, target: str) -> Diff:
    """Applied (pre, post) output rows as an effective diff on *target*."""
    non_key = table_schema.non_key_columns
    if kind == INSERT:
        schema = DiffSchema(INSERT, target, table_schema.key, post_attrs=non_key)
        rows = [
            table_schema.key_of(post) + table_schema.project(post, non_key)
            for _, post in changes
        ]
    elif kind == DELETE:
        schema = DiffSchema(DELETE, target, table_schema.key, pre_attrs=non_key)
        rows = [
            table_schema.key_of(pre) + table_schema.project(pre, non_key)
            for pre, _ in changes
        ]
    else:
        schema = DiffSchema(
            UPDATE, target, table_schema.key, pre_attrs=non_key, post_attrs=non_key
        )
        rows = [
            table_schema.key_of(post)
            + table_schema.project(pre, non_key)
            + table_schema.project(post, non_key)
            for pre, post in changes
        ]
    return Diff(schema, rows)
