"""i-diff propagation rules for join ⋈_φ and cross product × —
paper Tables 10 and 4.

For a diff arriving from one side ("mine"), the *other* side is consulted
through diff-driven probes of its post-state subview:

* insert: the diff's full tuples join with ``Input_post`` of the other
  side to produce full output tuples (∆+ ⋈φ Input_post).
* delete: passes through — the output IDs contain the diff's IDs, so
  deleting by them removes every joined combination; the other side is
  never accessed (this is where i-diffs shine).  Mine-side conjuncts of φ
  filter the diff when pre values are derivable (blue variant).
* update on attributes not in φ: passes through unchanged.
* update touching φ: splits into (a) a pass-through update branch
  (overestimated — dummy rows are absorbed by APPLY), (b) a delete branch
  for combinations that stop joining (probe the other side with the
  *old* join values, drop those that still join), and (c) an insert
  branch for newly joining combinations (probe with the new values).

A cross product is a join with no condition: inserts pair with the whole
other side, deletes and updates pass through (Table 4).
"""

from __future__ import annotations

from typing import Optional

from ...algebra.plan import Join, PlanNode
from ...expr import (
    Expr,
    Not,
    all_of,
    col,
    columns_of,
    equi_join_pairs,
    is_true,
    rename_columns,
)
from ..diffs import DELETE, INSERT, DiffSchema, post_col, pre_col
from ..ir import POST, PRE, Compute, Filter, IrNode, ProbeJoin
from .base import (
    ValueSource,
    lower_key_update,
    make_insert,
    passthrough_schema,
    split_conjuncts,
    subst_state,
    target_name,
    values_via_probe,
)


def propagate_join(
    op: Join, source: IrNode, in_schema: DiffSchema, side: int
) -> list[tuple[DiffSchema, IrNode]]:
    """Instantiate the Table 10 / Table 4 rules for the diff arriving
    from child *side* (0 = left, 1 = right)."""
    mine = op.children[side]
    other = op.children[1 - side]
    pairs, residual = _oriented_condition(op, side)
    if in_schema.kind == INSERT:
        return [_insert_rule(op, source, in_schema, mine, other, pairs, residual)]
    if in_schema.kind == DELETE:
        return [_delete_rule(op, source, in_schema, mine)]
    return _update_rules(op, source, in_schema, mine, other, pairs, residual)


def _oriented_condition(
    op: Join, side: int
) -> tuple[list[tuple[str, str]], Optional[Expr]]:
    """Equi pairs as (mine_col, other_col) plus the residual condition."""
    if op.condition is None:
        return [], None
    pairs, residual = equi_join_pairs(op.condition, op.left.columns, op.right.columns)
    if side == 1:
        pairs = [(r, l) for l, r in pairs]
    from ...expr import TRUE

    return pairs, (None if residual == TRUE else residual)


def _mine_condition(op: Join, mine: PlanNode) -> Optional[Expr]:
    """Conjuncts of φ referencing only the diff's own side."""
    if op.condition is None:
        return None
    local, _ = split_conjuncts(op.condition, mine.columns)
    from ...expr import TRUE

    return None if local == TRUE else local


def _combined_values(
    probe: IrNode, mine_values: ValueSource, other: PlanNode
) -> ValueSource:
    """ValueSource spanning both sides after an other-side probe.

    The probe keeps the other side's columns under their plain names
    (join children have disjoint column sets, so no collision arises).
    """
    mapping = dict(mine_values.mapping)
    for c in other.columns:
        mapping[c] = c
    return ValueSource(probe, mapping, probed=True)


def _probe_other(
    base: ValueSource,
    other: PlanNode,
    state: str,
    pairs: list[tuple[str, str]],
    residual: Optional[Expr],
) -> IrNode:
    """⋈φ Input_state of the other side, driven by *base*'s join values."""
    on = [(base.mapping[m], o) for m, o in pairs]
    keep = [(c, c) for c in other.columns]
    residual_expr = None
    if residual is not None:
        residual_expr = rename_columns(residual, dict(base.mapping))
    return ProbeJoin(base.ir, other, state, on=on, keep=keep, residual=residual_expr)


def _canonical_map(op: Join) -> dict[str, str]:
    """column -> canonical representative of its join-equality class.

    Must mirror Pass 1's equality-aware ID pruning: a diff keyed by a
    column that the join equates to another (e.g. the renamed copy a
    natural-join lowering introduces) is re-keyed to the representative,
    which Pass 1 guarantees survives any projection above.
    """
    if op.condition is None:
        return {}
    pairs, _ = equi_join_pairs(op.condition, op.left.columns, op.right.columns)
    canon: dict[str, str] = {}
    for lcol, rcol in pairs:
        canon[rcol] = canon.get(lcol, lcol)
    return canon


def _canonized_passthrough(
    op: Join, source: IrNode, in_schema: DiffSchema
) -> tuple[DiffSchema, IrNode]:
    """Pass-through diff with ID attributes renamed to canonical columns."""
    canon = _canonical_map(op)
    if not any(a in canon for a in in_schema.id_attrs):
        return passthrough_schema(op, in_schema), source
    new_ids: list[str] = []
    items: list[tuple[str, object]] = []
    for a in in_schema.id_attrs:
        canonical = canon.get(a, a)
        if canonical in new_ids:
            continue
        new_ids.append(canonical)
        items.append((canonical, col(a)))
    items += [(pre_col(a), col(pre_col(a))) for a in in_schema.pre_attrs]
    items += [(post_col(a), col(post_col(a))) for a in in_schema.post_attrs]
    schema = DiffSchema(
        in_schema.kind,
        target_name(op),
        tuple(new_ids),
        pre_attrs=in_schema.pre_attrs,
        post_attrs=in_schema.post_attrs,
    )
    return schema, Compute(source, items)


def _insert_rule(
    op: Join,
    source: IrNode,
    in_schema: DiffSchema,
    mine: PlanNode,
    other: PlanNode,
    pairs: list[tuple[str, str]],
    residual: Optional[Expr],
) -> tuple[DiffSchema, IrNode]:
    values = values_via_probe(source, in_schema, mine, POST, list(mine.columns))
    probe = _probe_other(values, other, POST, pairs, residual)
    combined = _combined_values(probe, values, other)
    return make_insert(op, combined, {c: col(c) for c in op.columns})


def _delete_rule(
    op: Join, source: IrNode, in_schema: DiffSchema, mine: PlanNode
) -> tuple[DiffSchema, IrNode]:
    ir: IrNode = source
    local = _mine_condition(op, mine)
    if local is not None:
        local_pre = subst_state(local, in_schema, PRE)
        if local_pre is not None:
            ir = Filter(source, local_pre)
    schema, ir = _canonized_passthrough(op, ir, in_schema)
    return schema, ir


def _update_rules(
    op: Join,
    source: IrNode,
    in_schema: DiffSchema,
    mine: PlanNode,
    other: PlanNode,
    pairs: list[tuple[str, str]],
    residual: Optional[Expr],
) -> list[tuple[DiffSchema, IrNode]]:
    updated = set(in_schema.post_attrs)
    problem = sorted(updated & set(op.ids) - set(mine.ids))
    if problem:
        # Equality canonicalization can promote a non-key column of this
        # side to a join-output ID; lower updates on it to delete+insert
        # and re-propagate each part through the ordinary rules.
        out: list[tuple[DiffSchema, IrNode]] = []
        for kind, schema, ir in lower_key_update(source, in_schema, mine, problem):
            if kind == INSERT:
                out.append(_insert_rule(op, ir, schema, mine, other, pairs, residual))
            elif kind == DELETE:
                out.append(_delete_rule(op, ir, schema, mine))
            else:
                out.extend(
                    _update_rules(op, ir, schema, mine, other, pairs, residual)
                )
        return out
    condition_attrs: set[str] = set()
    if op.condition is not None:
        condition_attrs = set(columns_of(op.condition)) & set(mine.columns)

    local = _mine_condition(op, mine)
    if not (condition_attrs & updated):
        # Join behaviour unchanged: pure update pass-through, filtered by
        # the mine-side conjuncts over pre values when derivable.
        ir: IrNode = source
        if local is not None:
            local_pre = subst_state(local, in_schema, PRE)
            if local_pre is not None:
                ir = Filter(source, local_pre)
        schema, ir = _canonized_passthrough(op, ir, in_schema)
        return [(schema, ir)]

    out: list[tuple[DiffSchema, IrNode]] = []

    # (a) pass-through update branch (overestimated; Example 4.8).
    update_ir: IrNode = source
    if local is not None:
        local_both = [
            c
            for c in (
                subst_state(local, in_schema, PRE),
                subst_state(local, in_schema, POST),
            )
            if c is not None
        ]
        if local_both:
            update_ir = Filter(source, all_of(*local_both))
    out.append(_canonized_passthrough(op, update_ir, in_schema))

    mine_condition_cols = sorted(condition_attrs)

    # (b) delete branch: combinations that stop joining.  Old combos are
    # pre-state objects, so probe the other side's PRE state with the OLD
    # (pre) join values — a post-state probe would miss combos whose
    # partner row changed its own condition attributes in the same batch.
    # The filter below keeps only combos no longer satisfying φ with the
    # new mine-side values against the partner's POST values, re-probed by
    # partner IDs: checking against the probed PRE values instead misses
    # combos killed only by the *joint* change (each unilateral change
    # keeps φ true, the combination makes it false).  A partner deleted in
    # the same batch drops out of the re-probe, and its own pass-through
    # delete diff removes the combos.
    pre_values = values_via_probe(
        source, in_schema, mine, PRE, mine_condition_cols, prefix="vpre__"
    )
    stale_probe = _probe_other(pre_values, other, PRE, pairs, residual)
    post_values = values_via_probe(
        stale_probe, in_schema, mine, POST, mine_condition_cols, prefix="vpost__"
    )
    other_condition_cols = [o for _, o in pairs]
    if residual is not None:
        other_condition_cols += [
            c for c in columns_of(residual) if c in set(other.columns)
        ]
    other_condition_cols = list(dict.fromkeys(other_condition_cols))
    repost_probe = ProbeJoin(
        post_values.ir,
        other,
        POST,
        on=[(i, i) for i in other.ids],
        keep=[("opost__" + c, c) for c in other_condition_cols],
    )
    full_mapping = dict(post_values.mapping)
    for c in other_condition_cols:
        full_mapping[c] = "opost__" + c
    still_joins = _full_condition(pairs, residual, full_mapping)
    # IS TRUE: a post-state condition gone UNKNOWN (NULL join value) also
    # stops joining; plain NOT would leave the stale combo undeleted.
    delete_base = Filter(repost_probe, Not(is_true(still_joins)))
    canon = _canonical_map(op)
    delete_ids: list[str] = []
    items = []
    for a in in_schema.id_attrs + tuple(other.ids):
        canonical = canon.get(a, a)
        if canonical in delete_ids:
            continue
        delete_ids.append(canonical)
        items.append((canonical, col(a)))
    # A canonicalized other-side ID may land on one of our non-key
    # attribute names (join on a non-key column); IDs win.
    delete_pre = tuple(a for a in in_schema.pre_attrs if a not in set(delete_ids))
    items += [(pre_col(a), col(pre_col(a))) for a in delete_pre]
    delete_schema = DiffSchema(
        DELETE, target_name(op), tuple(delete_ids), pre_attrs=delete_pre
    )
    out.append((delete_schema, Compute(delete_base, items)))

    # (c) insert branch: newly joining combinations with full post tuples.
    new_values = values_via_probe(source, in_schema, mine, POST, list(mine.columns))
    new_probe = _probe_other(new_values, other, POST, pairs, residual)
    combined = _combined_values(new_probe, new_values, other)
    out.append(make_insert(op, combined, {c: col(c) for c in op.columns}))
    return out


def _full_condition(
    pairs: list[tuple[str, str]],
    residual: Optional[Expr],
    mapping: dict[str, str],
) -> Expr:
    """φ with both sides' values resolved through *mapping* (mine POST
    columns and the partner's re-probed POST columns)."""
    terms: list[Expr] = [
        col(mapping[m]).eq(col(mapping.get(o, o))) for m, o in pairs
    ]
    if residual is not None:
        terms.append(rename_columns(residual, dict(mapping)))
    return all_of(*terms)
