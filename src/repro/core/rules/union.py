"""i-diff propagation rules for bag union (union all) — paper Table 5.

Each branch's diff passes through with the branch attribute *b* appended
as an additional ID (π_{*, b→0/1} in the table): a diff coming from the
left child may only touch rows tagged b = 0, and symmetrically for the
right, so the branch tag keeps the two sides' modifications apart.
"""

from __future__ import annotations

from ...algebra.plan import UnionAll
from ...expr import col, lit
from ..diffs import UPDATE, DiffSchema, post_col, pre_col
from ..ir import Compute, IrNode
from .base import lower_key_update, target_name


def propagate_union(
    op: UnionAll, source: IrNode, in_schema: DiffSchema, side: int
) -> list[tuple[DiffSchema, IrNode]]:
    """Instantiate the Table 5 rules: tag the diff with its branch."""
    branch = op.branch_column
    if in_schema.kind == UPDATE:
        # ID(l) ∪ ID(r) can promote a branch's non-key attribute to a
        # union ID; updates on it must become delete+insert (key update).
        problem = sorted(set(in_schema.post_attrs) & set(op.ids))
        if problem:
            child = op.children[side]
            out: list[tuple[DiffSchema, IrNode]] = []
            for _kind, schema, ir in lower_key_update(
                source, in_schema, child, problem
            ):
                out.extend(_tag_branch(op, ir, schema, side))
            return out
    return _tag_branch(op, source, in_schema, side)


def _tag_branch(
    op: UnionAll, source: IrNode, in_schema: DiffSchema, side: int
) -> list[tuple[DiffSchema, IrNode]]:
    branch = op.branch_column
    schema = DiffSchema(
        in_schema.kind,
        target_name(op),
        in_schema.id_attrs + (branch,),
        pre_attrs=in_schema.pre_attrs,
        post_attrs=in_schema.post_attrs,
    )
    items = [(a, col(a)) for a in in_schema.id_attrs]
    items.append((branch, lit(side)))
    items += [(pre_col(a), col(pre_col(a))) for a in in_schema.pre_attrs]
    items += [(post_col(a), col(post_col(a))) for a in in_schema.post_attrs]
    return [(schema, Compute(source, items))]
