"""i-diff propagation rules for the semijoin L ⋉_φ(X̄,Ȳ) R.

The semijoin is not one of the paper's QSPJADU core operators — it is
the repository's worked example of the operator-extensibility layer
(Section 4: "the supported view definition language can be easily
extended by adding rules for additional relational algebra operators";
see docs/EXTENDING.md).  The rules mirror the antisemijoin's (Table 13)
with the match polarity flipped:

Left-side diffs
    inserts are semi-probed against ``Input_post`` of the right side
    (kept only with a match); deletes and updates pass through; updates
    touching X̄ additionally emit an insert branch (rows whose new values
    now match) and a delete branch (rows that no longer match anything).

Right-side diffs
    an insert on the right *inserts* the left rows it newly matches; a
    delete on the right *deletes* the left rows that matched it and now
    match nothing; an update on Ȳ is treated as delete-then-insert.
"""

from __future__ import annotations

from typing import Optional

from ...algebra.plan import SemiJoin
from ...expr import TRUE, Expr, col, columns_of, equi_join_pairs, rename_columns
from ..diffs import DELETE, INSERT, DiffSchema, pre_col
from ..ir import (
    POST,
    PRE,
    SUB_PREFIX,
    Compute,
    Distinct,
    IrNode,
    ProbeJoin,
    ProbeSemi,
)
from .base import (
    ValueSource,
    make_insert,
    passthrough_schema,
    state_mapping,
    target_name,
    values_via_probe,
)


def propagate_semijoin(
    op: SemiJoin, source: IrNode, in_schema: DiffSchema, side: int
) -> list[tuple[DiffSchema, IrNode]]:
    """Instantiate the semijoin rules (Table 13 with the membership
    polarity flipped) for the diff arriving from child *side*."""
    if side == 0:
        return _left_rules(op, source, in_schema)
    return _right_rules(op, source, in_schema)


def _pairs(op: SemiJoin) -> tuple[list[tuple[str, str]], Optional[Expr]]:
    pairs, residual = equi_join_pairs(op.condition, op.left.columns, op.right.columns)
    return pairs, (None if residual == TRUE else residual)


def _semi_right(
    op: SemiJoin,
    values: ValueSource,
    pairs: list[tuple[str, str]],
    residual: Optional[Expr],
    negated: bool,
) -> ProbeSemi:
    on = [(values.mapping[l], r) for l, r in pairs]
    residual_expr = None
    if residual is not None:
        mapping = dict(values.mapping)
        mapping.update({c: SUB_PREFIX + c for c in op.right.columns})
        residual_expr = rename_columns(residual, mapping)
    return ProbeSemi(
        values.ir, op.right, POST, on=on, residual=residual_expr, negated=negated
    )


# ----------------------------------------------------------------------
# left-side diffs
# ----------------------------------------------------------------------
def _left_rules(
    op: SemiJoin, source: IrNode, in_schema: DiffSchema
) -> list[tuple[DiffSchema, IrNode]]:
    pairs, residual = _pairs(op)
    left_condition_attrs = set(columns_of(op.condition)) & set(op.left.columns)

    if in_schema.kind == INSERT:
        values = ValueSource(source, state_mapping(in_schema, POST), probed=False)
        ir = _semi_right(op, values, pairs, residual, negated=False)
        return [(passthrough_schema(op, in_schema), ir)]

    if in_schema.kind == DELETE:
        return [(passthrough_schema(op, in_schema), source)]

    out: list[tuple[DiffSchema, IrNode]] = [
        (passthrough_schema(op, in_schema), source)
    ]
    if not (left_condition_attrs & set(in_schema.post_attrs)):
        return out

    # Insert branch: new values now match something on the right.
    post_values = values_via_probe(source, in_schema, op.left, POST, list(op.left.columns))
    now_matches = _semi_right(op, post_values, pairs, residual, negated=False)
    insert_values = ValueSource(now_matches, post_values.mapping, post_values.probed)
    out.append(make_insert(op, insert_values, {c: col(c) for c in op.columns}))

    # Delete branch: new values match nothing -> the row leaves V.
    needed = sorted(left_condition_attrs)
    dpost = values_via_probe(source, in_schema, op.left, POST, needed, prefix="vd__")
    no_match = _semi_right(op, dpost, pairs, residual, negated=True)
    delete_schema = DiffSchema(
        DELETE, target_name(op), in_schema.id_attrs, pre_attrs=in_schema.pre_attrs
    )
    items = [(a, col(a)) for a in in_schema.id_attrs]
    items += [(pre_col(a), col(pre_col(a))) for a in in_schema.pre_attrs]
    out.append((delete_schema, Compute(no_match, items)))
    return out


# ----------------------------------------------------------------------
# right-side diffs
# ----------------------------------------------------------------------
def _probe_left(
    op: SemiJoin,
    values: ValueSource,
    pairs: list[tuple[str, str]],
    residual: Optional[Expr],
    state: str,
) -> ProbeJoin:
    on = [(values.mapping[r], l) for l, r in pairs]
    keep = [(c, c) for c in op.left.columns]
    residual_expr = None
    if residual is not None:
        residual_expr = rename_columns(residual, dict(values.mapping))
    return ProbeJoin(values.ir, op.left, state, on=on, keep=keep, residual=residual_expr)


def _right_rules(
    op: SemiJoin, source: IrNode, in_schema: DiffSchema
) -> list[tuple[DiffSchema, IrNode]]:
    pairs, residual = _pairs(op)
    right_condition_attrs = set(columns_of(op.condition)) & set(op.right.columns)
    needed = sorted(right_condition_attrs)
    left_ids = tuple(op.ids)

    if in_schema.kind == INSERT:
        # Newly matched left rows enter the semijoin output (identical
        # inserts for rows already present are absorbed by APPLY).
        values = ValueSource(source, state_mapping(in_schema, POST), probed=False)
        probe = _probe_left(op, values, pairs, residual, POST)
        dedup = _dedupe_left(op, probe)
        insert_values = ValueSource(dedup, {c: c for c in op.left.columns}, probed=True)
        return [make_insert(op, insert_values, {c: col(c) for c in op.columns})]

    if in_schema.kind == DELETE:
        # Left rows that matched the deleted right rows leave the output
        # unless something else on the right still matches them.
        values = values_via_probe(source, in_schema, op.right, PRE, needed)
        probe = _probe_left(op, values, pairs, residual, POST)
        left_values = ValueSource(probe, {c: c for c in op.left.columns}, probed=True)
        gone = _semi_right(op, left_values, pairs, residual, negated=True)
        delete_schema = DiffSchema(DELETE, target_name(op), left_ids)
        ir = Distinct(Compute(gone, [(a, col(a)) for a in left_ids]))
        return [(delete_schema, ir)]

    # UPDATE: delete-then-insert, as for the antisemijoin.
    if not (right_condition_attrs & set(in_schema.post_attrs)):
        return []
    out: list[tuple[DiffSchema, IrNode]] = []

    # Delete branch: left rows matching the OLD values that now match
    # nothing at all.
    pre_values = values_via_probe(source, in_schema, op.right, PRE, needed, prefix="vp__")
    probe_old = _probe_left(op, pre_values, pairs, residual, POST)
    left_values = ValueSource(probe_old, {c: c for c in op.left.columns}, probed=True)
    gone = _semi_right(op, left_values, pairs, residual, negated=True)
    delete_schema = DiffSchema(DELETE, target_name(op), left_ids)
    out.append(
        (delete_schema, Distinct(Compute(gone, [(a, col(a)) for a in left_ids])))
    )

    # Insert branch: left rows matching the NEW values.
    post_values = values_via_probe(source, in_schema, op.right, POST, needed, prefix="vq__")
    probe_new = _probe_left(op, post_values, pairs, residual, POST)
    dedup = _dedupe_left(op, probe_new)
    insert_values = ValueSource(dedup, {c: c for c in op.left.columns}, probed=True)
    out.append(make_insert(op, insert_values, {c: col(c) for c in op.columns}))
    return out


def _dedupe_left(op: SemiJoin, ir: IrNode) -> IrNode:
    """Keep one copy of each left row (several right diff rows may have
    matched the same left row)."""
    return Distinct(Compute(ir, [(c, col(c)) for c in op.left.columns]))
