"""Shared machinery for the operator i-diff propagation rules.

The paper's rule tables (Tables 4–13) reference three kinds of values:

* diff columns — IDs (plain names), ``a__pre``, ``a__post``;
* the operator's input subviews (``Input_{pre,post}``);
* the operator's output (``Output``).

A recurring concern is whether a condition over child attributes ``X̄`` can
be evaluated from the diff alone in a given state.  An attribute ``a`` of
the child is *derivable* from an update diff:

* in post-state, when ``a`` is an ID, an updated attribute (``a__post``)
  or a non-updated attribute with a recorded pre value (pre == post);
* in pre-state, when ``a`` is an ID or has a recorded pre value.

Insert diffs derive everything in post-state and nothing in pre-state;
delete diffs the reverse.  When derivation fails, rules fall back to the
general equation form — a probe of ``Input`` — which Pass 4 later
minimizes away where Figure 8's rewrites apply.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...algebra.plan import PlanNode
from ...errors import RuleError
from ...expr import Expr, all_of, col, columns_of, conjuncts_of, rename_columns
from ..diffs import DELETE, INSERT, UPDATE, DiffSchema, post_col, pre_col
from ..ir import POST, PRE, Compute, DiffSource, IrNode, ProbeJoin

#: Prefix for subview columns pulled in by a value-providing probe.
VALUE_PREFIX = "v__"


def target_name(node: PlanNode) -> str:
    """The logical relation name of the subview rooted at *node*."""
    return f"n{node.node_id}"


# ----------------------------------------------------------------------
# state-specific derivation of child-attribute values from a diff
# ----------------------------------------------------------------------
def state_mapping(schema: DiffSchema, state: str) -> dict[str, str]:
    """Map child attribute -> diff column carrying its *state* value.

    Only contains attributes that are derivable (see module docstring).
    """
    mapping = {a: a for a in schema.id_attrs}
    if state == POST:
        if schema.kind == DELETE:
            return {}
        for a in schema.pre_attrs:
            if a not in schema.post_attrs:
                # Not updated by this diff: post value equals the pre value.
                mapping[a] = pre_col(a)
        for a in schema.post_attrs:
            mapping[a] = post_col(a)
        return mapping
    if state == PRE:
        if schema.kind == INSERT:
            return {}
        for a in schema.pre_attrs:
            mapping[a] = pre_col(a)
        return mapping
    raise RuleError(f"unknown state {state!r}")


def derivable(schema: DiffSchema, attrs: Sequence[str], state: str) -> bool:
    """True when every attribute in *attrs* is derivable in *state*."""
    mapping = state_mapping(schema, state)
    return all(a in mapping for a in attrs)


def subst_state(expr: Expr, schema: DiffSchema, state: str) -> Optional[Expr]:
    """Rewrite *expr* over child attributes into diff columns for *state*.

    Returns None when some referenced attribute is not derivable.
    """
    mapping = state_mapping(schema, state)
    if not set(columns_of(expr)) <= set(mapping):
        return None
    return rename_columns(expr, mapping)


def split_conjuncts(
    predicate: Expr, local_columns: Sequence[str]
) -> tuple[Expr, Expr]:
    """Split into (conjuncts referencing only *local_columns*, the rest)."""
    local_set = set(local_columns)
    local: list[Expr] = []
    rest: list[Expr] = []
    for conjunct in conjuncts_of(predicate):
        if set(columns_of(conjunct)) <= local_set:
            local.append(conjunct)
        else:
            rest.append(conjunct)
    return all_of(*local), all_of(*rest)


# ----------------------------------------------------------------------
# value provisioning: diff columns when derivable, Input probe otherwise
# ----------------------------------------------------------------------
class ValueSource:
    """Access to the *state* values of all child attributes, for each diff
    row — either straight from the diff or via an Input probe.

    ``ir`` is the (possibly extended) tree whose rows carry the values;
    ``mapping`` resolves each child attribute to a column of that tree.
    ``probed`` is True when an Input probe was added (a base-data access
    the minimizer could not avoid).
    """

    __slots__ = ("ir", "mapping", "probed")

    def __init__(self, ir: IrNode, mapping: dict[str, str], probed: bool):
        self.ir = ir
        self.mapping = mapping
        self.probed = probed

    def expr_for(self, attr: str) -> Expr:
        return col(self.mapping[attr])

    def rewrite(self, expr: Expr) -> Expr:
        return rename_columns(expr, self.mapping)

    def covers(self, attrs: Sequence[str]) -> bool:
        return all(a in self.mapping for a in attrs)


def values_via_probe(
    source: IrNode,
    schema: DiffSchema,
    child: PlanNode,
    state: str,
    needed: Sequence[str],
    prefix: str = VALUE_PREFIX,
) -> ValueSource:
    """A :class:`ValueSource` for *needed* child attributes in *state*.

    Always emits the general rule form — ``... ⋈Ī Input_state`` — for
    attributes beyond the diff's IDs.  Pass 4's Figure 8 rewrites replace
    the probe by a projection of the diff's own columns whenever the diff
    provably carries the values, so rules call this unconditionally and
    stay in the general form of Tables 4–13.
    """
    needed = [a for a in dict.fromkeys(needed)]
    non_id = [a for a in needed if a not in schema.id_attrs]
    if not non_id:
        return ValueSource(source, {a: a for a in needed}, probed=False)
    on = [(a, a) for a in schema.id_attrs]
    keep = [(prefix + a, a) for a in non_id]
    probe = ProbeJoin(source, child, state, on=on, keep=keep)
    mapping = {a: (a if a in schema.id_attrs else prefix + a) for a in needed}
    return ValueSource(probe, mapping, probed=True)


# ----------------------------------------------------------------------
# output diff construction helpers
# ----------------------------------------------------------------------
def make_insert(
    op: PlanNode,
    values: ValueSource,
    out_exprs: dict[str, Expr],
) -> tuple[DiffSchema, IrNode]:
    """Build an insert diff over *op*'s output schema.

    *out_exprs* maps each output column to an expression over **child
    attributes**; it is rewritten through *values* to diff/probe columns.
    """
    ids = tuple(op.ids)
    non_ids = tuple(c for c in op.columns if c not in set(ids))
    schema = DiffSchema(INSERT, target_name(op), ids, post_attrs=non_ids)
    items = [(a, values.rewrite(out_exprs[a])) for a in ids]
    items += [(post_col(a), values.rewrite(out_exprs[a])) for a in non_ids]
    return schema, Compute(values.ir, items)


def passthrough_schema(op: PlanNode, in_schema: DiffSchema) -> DiffSchema:
    """The input schema re-targeted at *op*'s subview (columns unchanged)."""
    return in_schema.rename_target(target_name(op))


def diff_source(name: str, schema: DiffSchema) -> DiffSource:
    return DiffSource(name, schema)


def lower_key_update(
    source: IrNode,
    in_schema: DiffSchema,
    child: PlanNode,
    problem_attrs: Sequence[str],
) -> list[tuple[str, DiffSchema, IrNode]]:
    """Lower an update diff that modifies attributes serving as *output*
    IDs of the operator above into key-safe parts.

    A non-key child attribute can become an ID of a union (ID(l) ∪ ID(r))
    or of a join (equality canonicalization); SQL forbids updating key
    columns in place, so rows whose problem attributes actually changed
    are re-expressed as a delete of the old row plus an insert of the new
    one, and the update survives only for rows where they are unchanged
    (with the problem attributes dropped from its post set).

    Returns (kind, schema, ir) triples over the *child* subview, to be fed
    back through the operator's ordinary kind-specific rules.  The
    synthetic delete is sound only under the canonical −/u/+ APPLY order
    (its IDs still exist post-state); Pass 4 never post-probes deletes, so
    the C2 rewrite cannot misfire on it.
    """
    from ..ir import Filter
    from ...expr import Call, Not, any_of

    missing = [a for a in problem_attrs if a not in in_schema.pre_attrs]
    if missing:
        raise RuleError(
            f"update on {sorted(missing)} feeds an operator whose output IDs "
            f"include them, but the diff carries no pre-state values to "
            f"lower the update into delete+insert"
        )
    changed = any_of(
        *[
            Call("is_distinct", [col(post_col(a)), col(pre_col(a))])
            for a in problem_attrs
        ]
    )
    out: list[tuple[str, DiffSchema, IrNode]] = []

    # Rows where the problem attributes did not change: a plain update
    # with those attributes dropped from the post set.
    remaining_posts = tuple(
        a for a in in_schema.post_attrs if a not in set(problem_attrs)
    )
    if remaining_posts:
        reduced = DiffSchema(
            UPDATE,
            in_schema.target,
            in_schema.id_attrs,
            pre_attrs=in_schema.pre_attrs,
            post_attrs=remaining_posts,
        )
        items = [(a, col(a)) for a in in_schema.id_attrs]
        items += [(pre_col(a), col(pre_col(a))) for a in in_schema.pre_attrs]
        items += [(post_col(a), col(post_col(a))) for a in remaining_posts]
        out.append(
            (UPDATE, reduced, Compute(Filter(source, Not(changed)), items))
        )

    changed_rows: IrNode = Filter(source, changed)

    delete_schema = DiffSchema(
        DELETE,
        in_schema.target,
        in_schema.id_attrs,
        pre_attrs=in_schema.pre_attrs,
    )
    d_items = [(a, col(a)) for a in in_schema.id_attrs]
    d_items += [(pre_col(a), col(pre_col(a))) for a in in_schema.pre_attrs]
    out.append((DELETE, delete_schema, Compute(changed_rows, d_items)))

    # Insert of the new row, with full child IDs and full post values.
    values = values_via_probe(
        changed_rows, in_schema, child, POST, list(child.columns)
    )
    child_ids = tuple(child.ids)
    non_ids = tuple(c for c in child.columns if c not in set(child_ids))
    insert_schema = DiffSchema(
        INSERT, in_schema.target, child_ids, post_attrs=non_ids
    )
    i_items = [(a, values.expr_for(a)) for a in child_ids]
    i_items += [(post_col(a), values.expr_for(a)) for a in non_ids]
    out.append((INSERT, insert_schema, Compute(values.ir, i_items)))
    return out
