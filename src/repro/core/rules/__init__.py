"""Operator i-diff propagation rules — the extensibility layer (Figure 4).

One module per operator; support for a new operator = a new module with a
``propagate_<op>`` function plus an ID-inference rule in
:mod:`repro.core.idinfer`.
"""

from .aggregate import AssociativeAggregateStep, GeneralAggregateStep, OpCacheSpec
from .antijoin import propagate_antijoin
from .base import ValueSource, state_mapping, subst_state, target_name, values_via_probe
from .join import propagate_join
from .project import propagate_project
from .select import propagate_select
from .union import propagate_union

__all__ = [
    "AssociativeAggregateStep",
    "GeneralAggregateStep",
    "OpCacheSpec",
    "ValueSource",
    "propagate_antijoin",
    "propagate_join",
    "propagate_project",
    "propagate_select",
    "propagate_union",
    "state_mapping",
    "subst_state",
    "target_name",
    "values_via_probe",
]
