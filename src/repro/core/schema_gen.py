"""Base-table i-diff schema generation — paper Section 5.

Given a view plan, decide which i-diff schemas to create for each base
table.  Inserts and deletes are easy: one full-attribute insert schema and
one all-pre-state delete schema per table (pre values only ever help).
Updates are the interesting case: the number of candidate schemas is
exponential, so idIVM partitions each table's non-key attributes into

* one *conditional* group per operator condition ``C_op`` (attributes
  appearing in that selection/join/antijoin condition — updates on them
  can change whether tuples pass the operator), and
* the *non-conditional* rest ``NC`` (updates on them can only ever yield
  view updates).

One update i-diff schema is generated per non-empty group, always with
all non-key attributes in pre-state form.
"""

from __future__ import annotations

from ..algebra.plan import AntiJoin, GroupBy, Join, PlanNode, Scan, Select
from ..expr import columns_of
from ..storage import Database
from .diffs import DiffSchema, delete_schema_for, insert_schema_for, update_schema_for


def conditional_attribute_groups(plan: PlanNode) -> dict[str, list[tuple[str, ...]]]:
    """For each base table: the list of per-operator conditional groups.

    Attribute names are resolved against the scan columns they descend
    from; computed projections sever the lineage (a condition on a
    computed column conservatively marks the columns it was computed
    from — we track lineage through bare-column projections only, which
    covers QSPJADU plans built by the provided builders).
    """
    # Lineage: for every node, map its output columns to (table, column)
    # origins where the column is a passthrough of a scan column.
    origins = _column_origins(plan)
    groups: dict[str, list[tuple[str, ...]]] = {}
    for node in plan.walk():
        condition = None
        if isinstance(node, Select):
            condition = node.predicate
        elif isinstance(node, (Join, AntiJoin)):
            condition = getattr(node, "condition", None)
        if condition is None:
            continue
        per_table: dict[str, set[str]] = {}
        node_origin = origins[node.node_id]
        for column in columns_of(condition):
            origin = node_origin.get(column)
            if origin is None:
                continue
            table, base_column = origin
            per_table.setdefault(table, set()).add(base_column)
        for table, attrs in per_table.items():
            groups.setdefault(table, []).append(tuple(sorted(attrs)))
    return groups


def _column_origins(plan: PlanNode) -> dict[int, dict[str, tuple[str, str]]]:
    """node_id -> {output column -> (base table, base column)} lineage."""
    from ..algebra.plan import Project, UnionAll
    from ..expr import Col

    result: dict[int, dict[str, tuple[str, str]]] = {}

    def visit(node: PlanNode) -> dict[str, tuple[str, str]]:
        if node.node_id in result:
            return result[node.node_id]
        if isinstance(node, Scan):
            mapping = {c: (node.table, c) for c in node.columns}
        elif isinstance(node, Project):
            child = visit(node.child)
            mapping = {}
            for name, expr in node.items:
                if isinstance(expr, Col) and expr.name in child:
                    mapping[name] = child[expr.name]
        elif isinstance(node, (Join, AntiJoin)):
            mapping = {}
            for child in node.children:
                mapping.update(visit(child))
            # AntiJoin outputs only left columns; restrict.
            if isinstance(node, AntiJoin):
                mapping = {
                    c: o for c, o in mapping.items() if c in set(node.columns)
                }
        elif isinstance(node, UnionAll):
            left = visit(node.left)
            right = visit(node.right)
            # A column's lineage survives a union only when both branches
            # agree on it.
            mapping = {
                c: left[c]
                for c in left
                if right.get(c) == left[c]
            }
        elif isinstance(node, GroupBy):
            child = visit(node.child)
            mapping = {k: child[k] for k in node.keys if k in child}
            # Aggregate outputs have no single-column lineage, but their
            # argument columns still matter for conditional grouping of
            # operators *below*; nothing to do here.
        else:  # Select and others preserve columns
            mapping = dict(visit(node.children[0]))
        # Visit remaining children so their entries are registered too.
        for child in node.children:
            if child.node_id not in result:
                visit(child)
        result[node.node_id] = mapping
        return mapping

    visit(plan)
    return result


def generate_base_schemas(plan: PlanNode, db: Database) -> list[DiffSchema]:
    """All base-table i-diff schemas for maintaining *plan* (Section 5)."""
    tables = sorted({n.table for n in plan.walk() if isinstance(n, Scan)})
    cond_groups = conditional_attribute_groups(plan)
    schemas: list[DiffSchema] = []
    seen: set[tuple] = set()
    for table in tables:
        schema = db.table(table).schema
        for candidate in (insert_schema_for(schema), delete_schema_for(schema)):
            if candidate.signature() not in seen:
                seen.add(candidate.signature())
                schemas.append(candidate)
        non_key = set(schema.non_key_columns)
        conditional: set[str] = set()
        update_count = 0
        for group in cond_groups.get(table, []):
            attrs = tuple(sorted(set(group) & non_key))
            if not attrs:
                continue
            conditional.update(attrs)
            candidate = update_schema_for(schema, attrs)
            if candidate.signature() not in seen:
                seen.add(candidate.signature())
                schemas.append(candidate)
                update_count += 1
        nc = tuple(sorted(non_key - conditional))
        if nc:
            candidate = update_schema_for(schema, nc)
            if candidate.signature() not in seen:
                seen.add(candidate.signature())
                schemas.append(candidate)
                update_count += 1
        # Catch-all schema: a single tuple's folded update may span
        # several groups; the instance generator routes it to ONE schema
        # covering every modified attribute (splitting one tuple-change
        # across instances would entangle them — see modlog).
        if update_count > 1:
            candidate = update_schema_for(schema, tuple(sorted(non_key)))
            if candidate.signature() not in seen:
                seen.add(candidate.signature())
                schemas.append(candidate)
    return schemas
