"""The idIVM engine facade — the Figure 3 architecture.

Ties the pieces together across the three times of the paper:

* **view definition time** — :meth:`IdIvmEngine.define_view` runs the
  base-table i-diff schema generator, the 4-pass ∆-script generator, and
  materializes the view, the intermediate/output caches and the operator
  caches;
* **data modification time** — the engine's :attr:`log` records base
  table modifications (trigger-style) while applying them to the live
  database;
* **view maintenance time** — :meth:`IdIvmEngine.maintain` converts the
  log into effective i-diff instances, executes the stored ∆-script and
  reports per-phase access counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..algebra.evaluate import evaluate_plan, materialize
from ..algebra.plan import PlanNode
from ..errors import ScriptError, UnknownTableError
from ..obs import metrics
from ..obs import spans as obs
from ..obs.drift import DriftMonitor
from ..obs.freshness import FreshnessTracker
from ..storage import AccessCounts, Database, Table
from .generator import GeneratedPlan, ScriptGenerator
from .idinfer import node_by_id
from .ir_exec import IrContext
from .modlog import ModificationLog, populate_instances
from .schema_gen import generate_base_schemas
from .script import DeltaScript, execute_script

#: Supported ∆-script execution backends: the per-node IR interpreter
#: (the paper-faithful reference) and the closure compiler
#: (:mod:`repro.core.compile` — same counted accesses, less dispatch).
EXEC_BACKENDS = ("interp", "compiled")


@dataclass
class MaintenanceReport:
    """What one maintenance round did and what it cost."""

    view_name: str
    phase_counts: dict[str, AccessCounts] = field(default_factory=dict)
    diff_sizes: dict[str, int] = field(default_factory=dict)
    #: per-phase counts the symbolic cost model predicted for this round
    #: (``{phase: {metric: value}}``), bound to the observed diff sizes;
    #: None when no model could be inferred at define time.
    predicted_counts: Optional[dict] = None

    @property
    def total_cost(self) -> int:
        """Combined accesses (the paper's Section 6 metric)."""
        return sum(
            counts.total
            for name, counts in self.phase_counts.items()
            if name != "__total__"
        )

    def cost_of(self, phase: str) -> int:
        counts = self.phase_counts.get(phase)
        return counts.total if counts is not None else 0


class MaterializedView:
    """A defined view: its generated plan plus the materializations."""

    def __init__(
        self,
        generated: GeneratedPlan,
        table: Table,
        caches: dict[int, Table],
        operator_caches: dict[int, Table],
        cost_model=None,
        compiled_script: Optional[DeltaScript] = None,
    ):
        self.generated = generated
        self.table = table
        self.caches = caches
        self.operator_caches = operator_caches
        #: symbolic per-phase cost model (repro.analysis.cost), inferred
        #: at define time; None when inference did not apply.
        self.cost_model = cost_model
        #: closure-compiled twin of ``generated.script``, built at define
        #: time when the engine runs ``exec_backend="compiled"``; shares
        #: the same caches and is invalidated with them (a redefine
        #: rebuilds the MaterializedView wholesale).
        self.compiled_script = compiled_script

    @property
    def name(self) -> str:
        return self.generated.view_name

    @property
    def plan(self) -> PlanNode:
        return self.generated.plan

    def describe_script(self) -> str:
        return self.generated.script.describe()

    def script_for(self, backend: str) -> DeltaScript:
        """The ∆-script to execute under *backend* (compiled when asked
        for and available, the stored interpretable script otherwise)."""
        if backend == "compiled" and self.compiled_script is not None:
            return self.compiled_script
        return self.generated.script


class IdIvmEngine:
    """ID-based incremental view maintenance over a :class:`Database`."""

    def __init__(
        self,
        db: Database,
        optimize: bool = True,
        cache_policy: str = "equi",
        view_reuse: bool = False,
        strict: bool = False,
        exec_backend: str = "interp",
        cost_select: bool = True,
    ):
        if exec_backend not in EXEC_BACKENDS:
            raise ValueError(
                f"unknown exec_backend {exec_backend!r}; expected one of "
                f"{EXEC_BACKENDS}"
            )
        self.db = db
        self.optimize = optimize
        self.cache_policy = cache_policy
        #: how stored ∆-scripts execute: "interp" walks the IR per round,
        #: "compiled" runs the specialized closures (identical counts).
        self.exec_backend = exec_backend
        #: let the generator compare candidate scripts under the symbolic
        #: cost model and keep the cheapest (fixes COST501/COST502).
        #: Disable to study the un-selected pipeline (ablations, drift
        #: demos, the crosscheck "eager" strategy).
        self.cost_select = cost_select
        #: refuse view definitions whose generated plans fail the static
        #: analyzer (repro.analysis) with error-severity diagnostics
        self.strict = strict
        #: Section 9 extension: answer insert probes from the view when
        #: the probed tables are untouched in a batch.  Off by default to
        #: keep the paper's cost profile.
        self.view_reuse = view_reuse
        #: freshness + drift telemetry (repro.obs); the modlog reports
        #: every appended entry so staleness is queryable at any instant.
        self.freshness = FreshnessTracker()
        self.drift = DriftMonitor()
        self.log = ModificationLog(db, freshness=self.freshness)
        self.views: dict[str, MaterializedView] = {}
        #: most recent MaintenanceReport per view (dashboards read this).
        self.last_reports: dict[str, MaintenanceReport] = {}

    # ------------------------------------------------------------------
    # view definition time
    # ------------------------------------------------------------------
    def define_view(self, name: str, plan: PlanNode) -> MaterializedView:
        """Register a view: generate its ∆-script and materialize it."""
        if name in self.views:
            raise ScriptError(f"view {name!r} already defined")
        generator = ScriptGenerator(
            name,
            plan,
            optimize=self.optimize,
            cache_policy=self.cache_policy,
            view_reuse=self.view_reuse,
            strict=self.strict,
            cost_db=self.db if (self.cost_select and self.optimize) else None,
        )
        base_schemas = generate_base_schemas(generator.plan, self.db)
        generated = generator.generate(base_schemas)
        annotated = generated.plan
        view_table = materialize(annotated, self.db, name)
        caches: dict[int, Table] = {annotated.node_id: view_table}
        for spec in generated.cache_specs:
            node = node_by_id(annotated, spec.node_id)
            caches[spec.node_id] = materialize(node, self.db, spec.name)
        operator_caches: dict[int, Table] = {}
        for opspec in generated.opcache_specs:
            child_rows = evaluate_plan(opspec.gnode.child, self.db)
            operator_caches[opspec.gnode.node_id] = opspec.build(
                child_rows, self.db.counters
            )
        cost_model = _infer_cost_model(generated, self.db)
        compiled_script = None
        if self.exec_backend == "compiled":
            from .compile import compile_script

            compiled_script = compile_script(generated)
        # Definition-time evaluation reads (including the cost model's
        # statistics probes) are not maintenance cost.
        self.db.counters.reset()
        view = MaterializedView(
            generated,
            view_table,
            caches,
            operator_caches,
            cost_model=cost_model,
            compiled_script=compiled_script,
        )
        self.views[name] = view
        # A just-materialized view reflects the current database state.
        self.freshness.note_view(name)
        return view

    # ------------------------------------------------------------------
    # data modification time: use engine.log.insert/update/delete
    # ------------------------------------------------------------------

    # ------------------------------------------------------------------
    # view maintenance time
    # ------------------------------------------------------------------
    def maintain(self, name: Optional[str] = None) -> dict[str, MaintenanceReport]:
        """Bring the named view (default: all) up to date.

        The live database already holds the post-state (deferred IVM);
        the pre-state is reconstructed from the log for the rules that
        need ``Input_pre``.
        """
        targets = [name] if name is not None else list(self.views)
        entries = self.log.take()
        db_post = self.db
        counters = self.db.counters
        round_started = time.perf_counter()
        metrics.counter("engine.maintain_rounds").inc()
        metrics.histogram("engine.log_entries").observe(len(entries))
        with obs.span(
            "maintain",
            kind="engine",
            counters=counters,
            engine=type(self).__name__,
            n_log_entries=len(entries),
            views=",".join(targets),
        ):
            with obs.span("reconstruct_pre", kind="engine", counters=counters):
                db_pre = _reconstruct_pre(self.db, entries)
            reports: dict[str, MaintenanceReport] = {}
            for view_name in targets:
                view = self.views.get(view_name)
                if view is None:
                    raise UnknownTableError(f"no view named {view_name!r}")
                view_started = time.perf_counter()
                with obs.span(
                    f"view:{view_name}", kind="view", counters=counters,
                    view=view_name,
                ) as vsp:
                    instances = populate_instances(
                        view.generated.base_schemas, entries, db_pre
                    )
                    ctx = IrContext(
                        db_pre, db_post, diffs=instances, caches=view.caches
                    )
                    ctx.operator_caches = view.operator_caches
                    modified = {entry.table for entry in entries}
                    ctx.unchanged_tables = set(self.db.table_names()) - modified
                    before = counters.snapshot()
                    execute_script(view.script_for(self.exec_backend), ctx, counters)
                    after = counters.snapshot()
                    report = MaintenanceReport(view_name)
                    for phase, counts in after.items():
                        prior = before.get(phase)
                        report.phase_counts[phase] = (
                            counts - prior if prior is not None else counts
                        )
                    report.diff_sizes = {k: len(v) for k, v in ctx.diffs.items()}
                    if view.cost_model is not None:
                        report.predicted_counts = (
                            view.cost_model.predict_from_diff_sizes(
                                report.diff_sizes
                            )
                        )
                    reports[view_name] = report
                    vsp.set(
                        total_cost=report.total_cost,
                        phase_counts={
                            phase: counts.as_dict()
                            for phase, counts in report.phase_counts.items()
                            if phase != "__total__"
                        },
                    )
                metrics.histogram("engine.round_cost").observe(report.total_cost)
                metrics.loghist(
                    f"view.round_seconds.{view_name}", unit="seconds"
                ).observe(time.perf_counter() - view_started)
        self._finish_round(reports, entries, round_started)
        return reports

    # ------------------------------------------------------------------
    def _finish_round(
        self,
        reports: dict[str, MaintenanceReport],
        entries,
        round_started: float,
    ) -> None:
        """Fold one finished round into the telemetry surfaces: round
        latency histograms, per-view freshness, and cost drift."""
        metrics.loghist("engine.round_seconds", unit="seconds").observe(
            time.perf_counter() - round_started
        )
        # The round absorbed everything it took; entries logged by
        # another thread after the take() stay pending.
        stamped = [e.seq for e in entries if e.seq]
        position = max(stamped) if stamped else self.log.position
        entry_times = [e.logged_at for e in entries if e.seq]
        now = self.freshness.clock()
        for view_name, report in reports.items():
            self.freshness.note_maintained(
                view_name, position, entry_times, now=now
            )
            self.drift.update_from_report(report)
            self.last_reports[view_name] = report
            ratio = self.drift.worst_ratio(view_name)
            if ratio is not None:
                metrics.gauge(f"drift.worst_ratio.{view_name}").set(ratio)


def _infer_cost_model(generated: GeneratedPlan, db: Database):
    """Symbolic cost model for a fresh view, or None when inference does
    not apply.  Deferred import: repro.analysis imports core modules."""
    try:
        from ..analysis.cost import infer_script_cost

        return infer_script_cost(generated, db)
    except Exception:
        return None


def _reconstruct_pre(db: Database, entries) -> Database:
    """Rebuild the pre-state database by reverse-applying the log.

    In a real deployment ``Input_pre`` is served by versioning or the
    diff tables themselves; reconstruction here is uncounted (it is not
    part of the maintenance plan's accesses).
    """
    from .diffs import DELETE, INSERT, UPDATE

    pre = db.copy()
    # Counters of the copy are fresh; reads of pre-state during
    # maintenance must count, so share the live counters.
    pre.counters = db.counters
    for table in pre.tables.values():
        table.counters = db.counters
    for entry in reversed(entries):
        table = pre.table(entry.table)
        if entry.kind == INSERT:
            table.delete_uncounted(entry.key)
        elif entry.kind == DELETE:
            table.insert_uncounted(entry.row)
        else:  # UPDATE: restore the captured pre-state row
            table.delete_uncounted(entry.key)
            table.insert_uncounted(entry.row)
    return pre
