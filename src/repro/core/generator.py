"""The ∆-script generator — the paper's Section 4 four-pass algorithm.

Pass 1  ID inference (:mod:`repro.core.idinfer`).
Pass 2  Rule instantiation: for every base-table i-diff schema, climb the
        plan from the matching scan operators, instantiating each
        operator's propagation rules (:mod:`repro.core.rules`).
Pass 3  Composition: the instantiated rules become named
        :class:`ComputeDiffStep`s; blocking aggregate operators collect
        all incoming branches and compile into cache-apply +
        aggregate-step sequences (Figures 6 and 7); final branches become
        APPLY steps against the view, canonically ordered − / u / +.
Pass 4  Semantic minimization (:mod:`repro.core.minimize`) plus dead-step
        elimination.

Cache placement (Section 4 + footnote 6): one intermediate cache is
attempted below every aggregate operator — skipped when the subtree risks
multi-valued dependencies (a join that is not a key-join on either side)
or when the input is a bare scan; the aggregate's output is materialized
too, with the view itself serving at the root (Example 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..algebra.plan import (
    ASSOCIATIVE_AGGS,
    AntiJoin,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Scan,
    SemiJoin,
    Select,
    UnionAll,
)
from ..expr import Col
from ..errors import RuleError
from ..expr import equi_join_pairs
from .diffs import DELETE, INSERT, UPDATE, DiffSchema
from .idinfer import annotate_plan
from .ir import DiffSource, IrNode, OutputHint, ProbeJoin
from .minimize import minimize_ir
from .modlog import schema_instance_name
from .rules.aggregate import (
    AssociativeAggregateStep,
    GeneralAggregateStep,
    OpCacheSpec,
)
from .rules.antijoin import propagate_antijoin
from .rules.base import target_name
from .rules.join import propagate_join
from .rules.project import propagate_project
from .rules.select import propagate_select
from .rules.semijoin import propagate_semijoin
from .rules.union import propagate_union
from .script import (
    PHASE_CACHE_DIFF,
    PHASE_CACHE_UPDATE,
    PHASE_VIEW_DIFF,
    PHASE_VIEW_UPDATE,
    ApplyDiffStep,
    ComputeDiffStep,
    DeltaScript,
    MarkCacheUpdatedStep,
    Step,
)

_KIND_ORDER = {DELETE: 0, UPDATE: 1, INSERT: 2}


@dataclass
class CacheSpec:
    """A materialization the engine must create at view-definition time."""

    node_id: int
    name: str
    kind: str  # "intermediate" (below γ) or "output" (a non-root γ)


@dataclass
class GeneratedPlan:
    """Everything produced at view-definition time for one view."""

    view_name: str
    plan: PlanNode
    script: DeltaScript
    base_schemas: list[DiffSchema]
    cache_specs: list[CacheSpec] = field(default_factory=list)
    opcache_specs: list[OpCacheSpec] = field(default_factory=list)
    #: Force maintenance rounds onto this anchor table even when the
    #: router's proof fails (``repro.shard.router.force_route``).  Exists
    #: for ablation studies and race-detector fixtures; the interference
    #: analysis pass verifies forced routes instead of the router's.
    route_override: Optional[str] = None


#: Cache-placement policies (paper Section 4, footnote 6).  The paper
#: skips intermediate caches when foreign keys cannot rule out
#: multi-valued dependencies.  Under a pure access-count cost model a
#: selective cache probe beats recomputation even through an M:N join
#: (only blow-ups without selective bindings — cross products and pure
#: theta joins — lose), so the default policy only refuses those; the
#: strict key-join variant is kept for ablation
#: (benchmarks/bench_ablation_cache_policy.py).
CACHE_POLICIES = ("equi", "fk", "never")


def has_mvd_risk(node: PlanNode, policy: str = "equi") -> bool:
    """True when materializing *node* is expected to be counterproductive.

    * ``"equi"`` (default): risky only for cross products and joins with
      no equi conjunct (no selective probe path into the cache).
    * ``"fk"``: the paper's stricter reading — additionally risky when a
      join is many-to-many, i.e. neither side is equi-joined on a
      superset of its own IDs.
    * ``"never"``: everything is deemed risky (no intermediate caches).
    """
    if policy not in CACHE_POLICIES:
        raise RuleError(f"unknown cache policy {policy!r}; have {CACHE_POLICIES}")
    if policy == "never":
        return True
    for n in node.walk():
        if isinstance(n, Join):
            if n.condition is None:
                return True
            pairs, _ = equi_join_pairs(n.condition, n.left.columns, n.right.columns)
            if not pairs:
                return True
            if policy == "fk":
                left_cols = {l for l, _ in pairs}
                right_cols = {r for _, r in pairs}
                left_keyed = set(n.left.ids) <= left_cols
                right_keyed = set(n.right.ids) <= right_cols
                if not (left_keyed or right_keyed):
                    return True
    return False


class ScriptGenerator:
    """Generates a :class:`GeneratedPlan` for one view definition."""

    def __init__(
        self,
        view_name: str,
        plan: PlanNode,
        optimize: bool = True,
        cache_policy: str = "equi",
        view_reuse: bool = False,
        strict: bool = False,
        cost_db=None,
    ):
        self.view_name = view_name
        self.plan = annotate_plan(plan)
        self.optimize = optimize
        self.cache_policy = cache_policy
        self.view_reuse = view_reuse
        #: when set (a Database), generate() prices the requested script
        #: against un-minimized / cache-free candidate pipelines under the
        #: symbolic cost model and keeps the cheapest — minimization and
        #: cache placement are heuristics, and on some shapes (BSMA Q7's
        #: minimized script, the negative-benefit intermediate caches on
        #: Q7/Q10/Q11/Q18) they *raise* the predicted maintenance cost.
        self.cost_db = cost_db
        #: run the static analyzer over the output and refuse to hand
        #: back a plan carrying error-severity diagnostics
        self.strict = strict
        self._parents: dict[int, tuple[PlanNode, int]] = {}
        for node in self.plan.walk():
            for side, child in enumerate(node.children):
                self._parents[child.node_id] = (node, side)
        self._steps: list[Step] = []
        self._finals: list[tuple[str, DiffSchema]] = []
        self._parked: dict[int, list[tuple[str, DiffSchema]]] = {}
        self._counter = 0
        self.cache_specs: list[CacheSpec] = []
        self.opcache_specs: list[OpCacheSpec] = []
        self._cached_nodes: set[int] = set()
        self._place_caches()

    # ------------------------------------------------------------------
    def _place_caches(self) -> None:
        self._cached_nodes.add(self.plan.node_id)  # the view itself
        for node in self.plan.walk():
            if not isinstance(node, GroupBy):
                continue
            # Output materialization (the view doubles as it at the root).
            if node.node_id != self.plan.node_id:
                self.cache_specs.append(
                    CacheSpec(node.node_id, f"{self.view_name}__out_n{node.node_id}", "output")
                )
                self._cached_nodes.add(node.node_id)
            # Operator cache (group bookkeeping) for the delta path.
            # Only the associative step consults it; the general
            # (min/max) step recomputes groups and would leave the
            # bookkeeping to rot.
            if all(a.func in ASSOCIATIVE_AGGS for a in node.aggs):
                self.opcache_specs.append(
                    OpCacheSpec(node, f"{self.view_name}__opc_n{node.node_id}")
                )
            # Intermediate cache below the aggregate (footnote 6).
            child = node.child
            if (
                not isinstance(child, Scan)
                and child.node_id not in self._cached_nodes
                and not has_mvd_risk(child, self.cache_policy)
            ):
                self.cache_specs.append(
                    CacheSpec(child.node_id, f"{self.view_name}__in_n{child.node_id}", "intermediate")
                )
                self._cached_nodes.add(child.node_id)

    # ------------------------------------------------------------------
    def generate(self, base_schemas: Sequence[DiffSchema]) -> GeneratedPlan:
        """Run Passes 2-4 for the given base i-diff schemas."""
        base_schemas = list(base_schemas)
        for schema in base_schemas:
            for scan in self.plan.walk():
                if isinstance(scan, Scan) and scan.table == schema.target:
                    branch_schema = schema.rename_target(target_name(scan))
                    self._climb(scan, schema_instance_name(schema), branch_schema)
        self._process_aggregates()
        self._emit_view_applies()
        if self.optimize:
            self._minimize()
        if self.view_reuse:
            self._attach_view_reuse_hints()
        script = DeltaScript(self._steps, self.plan.node_id)
        generated = GeneratedPlan(
            view_name=self.view_name,
            plan=self.plan,
            script=script,
            base_schemas=base_schemas,
            cache_specs=self.cache_specs,
            opcache_specs=self.opcache_specs,
        )
        if self.cost_db is not None:
            generated = self._select_cheapest(generated, base_schemas)
        if self.strict:
            # Deferred import: repro.analysis consumes this module.
            from ..analysis import check_generated

            check_generated(generated, db=self.cost_db)
        return generated

    # ------------------------------------------------------------------
    def _select_cheapest(
        self, generated: GeneratedPlan, base_schemas: list[DiffSchema]
    ) -> GeneratedPlan:
        """Price the requested pipeline against its no-cache alternative
        and keep the cheaper one (the COST502 decision, resolved at
        define time instead of only being linted after the fact).

        The candidate space deliberately varies cache placement ONLY.
        The optimize dimension is excluded: un-minimizing a script is
        never an unambiguous win — the minimizer's pass-through update
        propagation is strictly cheaper on the update rounds it targets,
        whatever the summed working point says about other families.

        The swap happens only when the candidate *dominates*: cheaper at
        the uniform working point and no costlier in any single diff
        family (see :func:`repro.analysis.cost.dominated_by`).  A
        summed-total win alone can hide a family regression — the sum
        weighs every family equally, and a workload concentrated on the
        losing family would pay for the swap every round.

        Ties keep the requested variant; a candidate that fails to
        generate or to cost is skipped (the requested script always
        survives)."""
        if self.cache_policy == "never":
            return generated
        # Deferred import: repro.analysis consumes this module.
        try:
            from ..analysis.cost import dominated_by, infer_script_cost
            from .modlog import schema_instance_name

            current = infer_script_cost(generated, self.cost_db)
            alt = ScriptGenerator(
                self.view_name,
                self.plan,
                optimize=self.optimize,
                cache_policy="never",
                view_reuse=self.view_reuse,
            )
            candidate = alt.generate(list(base_schemas))
            candidate_model = infer_script_cost(candidate, self.cost_db)
            families = [schema_instance_name(s) for s in base_schemas]
            if dominated_by(current, candidate_model, families):
                return candidate
        except Exception:
            return generated
        return generated

    # ------------------------------------------------------------------
    def _fresh(self, hint: str) -> str:
        self._counter += 1
        return f"d{self._counter}_{hint}"

    def _climb(self, node: PlanNode, name: str, schema: DiffSchema) -> None:
        """Propagate the named diff upward from *node* (Pass 2 + 3)."""
        if node.node_id == self.plan.node_id:
            self._finals.append((name, schema))
            return
        parent, side = self._parents[node.node_id]
        if isinstance(parent, GroupBy):
            self._parked.setdefault(parent.node_id, []).append((name, schema))
            return
        source = DiffSource(name, schema)
        outputs = _instantiate(parent, source, schema, side)
        phase = (
            PHASE_CACHE_DIFF
            if self._under_cache(parent)
            else PHASE_VIEW_DIFF
        )
        for out_schema, ir in outputs:
            out_name = self._fresh(f"{out_schema.kind_label()}_{target_name(parent)}")
            self._steps.append(ComputeDiffStep(out_name, out_schema, ir, phase))
            self._climb(parent, out_name, out_schema)

    def _under_cache(self, node: PlanNode) -> bool:
        """True when *node*'s diffs feed a cache rather than the view."""
        current: Optional[PlanNode] = node
        while current is not None and current.node_id != self.plan.node_id:
            if current.node_id in self._cached_nodes:
                return True
            parent = self._parents.get(current.node_id)
            current = parent[0] if parent else None
        return False

    # ------------------------------------------------------------------
    def _process_aggregates(self) -> None:
        while self._parked:
            # Deepest parked aggregate first: its emissions may park at a
            # shallower one.
            depths = {
                node.node_id: depth
                for depth, node in _with_depths(self.plan)
            }
            gid = max(self._parked, key=lambda nid: depths[nid])
            branches = self._parked.pop(gid)
            gnode = _node_by_id(self.plan, gid)
            assert isinstance(gnode, GroupBy)
            self._compile_aggregate(gnode, branches)

    def _compile_aggregate(
        self, gnode: GroupBy, branches: list[tuple[str, DiffSchema]]
    ) -> None:
        child = gnode.child
        child_cached = any(s.node_id == child.node_id for s in self.cache_specs)
        inputs: list[tuple[str, str]] = []
        if child_cached:
            ordered = sorted(branches, key=lambda b: _KIND_ORDER[b[1].kind])
            for name, schema in ordered:
                ret = f"ret_{name}"
                self._steps.append(
                    ApplyDiffStep(
                        name,
                        child.node_id,
                        f"cache[n{child.node_id}]",
                        PHASE_CACHE_UPDATE,
                        returning_name=ret,
                    )
                )
                inputs.append(("expansion", ret))
            self._steps.append(
                MarkCacheUpdatedStep(child.node_id, f"cache[n{child.node_id}]")
            )
        else:
            # Same − / u / + discipline as the cache-APPLY sequence: the
            # collector's overlay replays sequential-apply semantics, so
            # branch order must match what the cached path would do.
            ordered = sorted(branches, key=lambda b: _KIND_ORDER[b[1].kind])
            inputs = [("diff", name) for name, _ in ordered]
        is_root = gnode.node_id == self.plan.node_id
        phase = PHASE_VIEW_UPDATE if is_root else PHASE_CACHE_UPDATE
        prefix = self._fresh(f"agg_n{gnode.node_id}")
        if all(a.func in ASSOCIATIVE_AGGS for a in gnode.aggs):
            opcache = next(
                s for s in self.opcache_specs if s.gnode.node_id == gnode.node_id
            )
            step: Step = AssociativeAggregateStep(
                gnode, inputs, opcache.name, prefix, phase
            )
        else:
            step = GeneralAggregateStep(gnode, inputs, prefix, phase)
        self._steps.append(step)
        if is_root:
            return
        # Continue climbing with the emitted (exact) diffs.
        out_schema_non_ids = tuple(
            c for c in gnode.columns if c not in set(gnode.keys)
        )
        emitted = {
            INSERT: DiffSchema(
                INSERT, target_name(gnode), gnode.keys, post_attrs=out_schema_non_ids
            ),
            DELETE: DiffSchema(
                DELETE, target_name(gnode), gnode.keys, pre_attrs=out_schema_non_ids
            ),
            UPDATE: DiffSchema(
                UPDATE,
                target_name(gnode),
                gnode.keys,
                pre_attrs=out_schema_non_ids,
                post_attrs=out_schema_non_ids,
            ),
        }
        names = (
            step.emitted
            if isinstance(step, (AssociativeAggregateStep, GeneralAggregateStep))
            else {}
        )
        for kind, name in names.items():
            self._climb(gnode, name, emitted[kind])

    # ------------------------------------------------------------------
    def _emit_view_applies(self) -> None:
        ordered = sorted(self._finals, key=lambda b: _KIND_ORDER[b[1].kind])
        for name, _schema in ordered:
            self._steps.append(
                ApplyDiffStep(
                    name,
                    self.plan.node_id,
                    f"view[{self.view_name}]",
                    PHASE_VIEW_UPDATE,
                )
            )

    # ------------------------------------------------------------------
    def _minimize(self) -> None:
        """Pass 4: minimize each query; drop provably-empty steps."""
        from .ir import Empty

        # Iterate: minimizing may prove diffs empty, which empties their
        # downstream references in turn.
        empty_names: set[str] = set()
        changed = True
        while changed:
            changed = False
            for step in self._steps:
                if not isinstance(step, ComputeDiffStep):
                    continue
                ir = _substitute_empty(step.ir, empty_names)
                ir = minimize_ir(ir)
                step.ir = ir
                if isinstance(ir, Empty) and step.name not in empty_names:
                    empty_names.add(step.name)
                    changed = True
        # Dropping an APPLY also drops its RETURNING expansion, so any
        # aggregate input that consumed it must be pruned too.
        dead_expansions = {
            step.returning_name
            for step in self._steps
            if isinstance(step, ApplyDiffStep)
            and step.diff_name in empty_names
            and step.returning_name is not None
        }
        live_steps: list[Step] = []
        for step in self._steps:
            if isinstance(step, ComputeDiffStep) and step.name in empty_names:
                continue
            if isinstance(step, ApplyDiffStep) and step.diff_name in empty_names:
                continue
            if isinstance(step, (AssociativeAggregateStep, GeneralAggregateStep)):
                step.inputs = [
                    (k, n)
                    for k, n in step.inputs
                    if not (k == "diff" and n in empty_names)
                    and not (k == "expansion" and n in dead_expansions)
                ]
            live_steps.append(step)
        self._steps = live_steps


    # ------------------------------------------------------------------
    def _attach_view_reuse_hints(self) -> None:
        """Section 9 extension: annotate POST probes whose target is fully
        exposed by an ancestor materialization, so the executor can
        answer them from the view/cache when the target's base tables are
        untouched in a batch (with per-value fallback)."""
        for step in self._steps:
            if not isinstance(step, ComputeDiffStep):
                continue
            for ir_node in step.ir.walk():
                if not isinstance(ir_node, ProbeJoin) or ir_node.state != "post":
                    continue
                if not ir_node.on:
                    continue
                on_cols = {b for _, b in ir_node.on}
                if not set(ir_node.node.ids) <= on_cols:
                    continue  # multi-match probes cannot use hit-or-fallback
                hint = self._find_output_hint(ir_node.node)
                if hint is not None:
                    ir_node.via_output = hint

    def _find_output_hint(self, target: PlanNode) -> Optional[OutputHint]:
        """Nearest strict-ancestor materialization exposing every column
        of *target* as a bare passthrough, with the column mapping."""
        mapping = {c: c for c in target.columns}
        current = target
        while True:
            parent_info = self._parents.get(current.node_id)
            if current is not target and current.node_id in self._cached_nodes:
                guard = tuple(
                    sorted(
                        {n.table for n in target.walk() if isinstance(n, Scan)}
                    )
                )
                return OutputHint(current.node_id, mapping, guard)
            if parent_info is None:
                return None
            parent, side = parent_info
            if isinstance(parent, (Select, Join)):
                pass  # column names survive unchanged
            elif isinstance(parent, Project):
                passthrough: dict[str, str] = {}
                for name, expr in parent.items:
                    if isinstance(expr, Col):
                        passthrough.setdefault(expr.name, name)
                new_mapping = {}
                for t_col, current_name in mapping.items():
                    if current_name not in passthrough:
                        return None
                    new_mapping[t_col] = passthrough[current_name]
                mapping = new_mapping
            elif isinstance(parent, (AntiJoin, SemiJoin)):
                if side != 0:
                    return None  # right input does not reach the output
            else:  # GroupBy drops columns; UnionAll mixes branches
                return None
            current = parent


def _substitute_empty(node: IrNode, empty_names: set[str]) -> IrNode:
    from .ir import (
        Compute,
        Distinct,
        Empty,
        Filter,
        GroupAgg,
        ProbeJoin,
        ProbeSemi,
        UnionRows,
    )

    if isinstance(node, DiffSource):
        if node.name in empty_names:
            return Empty(node.columns)
        return node
    if isinstance(node, Filter):
        return Filter(_substitute_empty(node.child, empty_names), node.predicate)
    if isinstance(node, Compute):
        return Compute(_substitute_empty(node.child, empty_names), node.items)
    if isinstance(node, Distinct):
        return Distinct(_substitute_empty(node.child, empty_names))
    if isinstance(node, UnionRows):
        return UnionRows([_substitute_empty(p, empty_names) for p in node.parts])
    if isinstance(node, GroupAgg):
        return GroupAgg(
            _substitute_empty(node.child, empty_names), node.keys, node.aggs
        )
    if isinstance(node, ProbeJoin):
        return ProbeJoin(
            _substitute_empty(node.left, empty_names),
            node.node,
            node.state,
            node.on,
            node.keep,
            node.residual,
        )
    if isinstance(node, ProbeSemi):
        return ProbeSemi(
            _substitute_empty(node.left, empty_names),
            node.node,
            node.state,
            node.on,
            node.residual,
            node.negated,
        )
    return node


def _instantiate(
    op: PlanNode, source: DiffSource, schema: DiffSchema, side: int
) -> list[tuple[DiffSchema, IrNode]]:
    """Pass 2: select and instantiate the operator's rules."""
    if isinstance(op, Select):
        return propagate_select(op, source, schema)
    if isinstance(op, Project):
        return propagate_project(op, source, schema)
    if isinstance(op, Join):
        return propagate_join(op, source, schema, side)
    if isinstance(op, UnionAll):
        return propagate_union(op, source, schema, side)
    if isinstance(op, AntiJoin):
        return propagate_antijoin(op, source, schema, side)
    if isinstance(op, SemiJoin):
        return propagate_semijoin(op, source, schema, side)
    raise RuleError(f"no propagation rules for operator {op.label()!r}")


def _with_depths(root: PlanNode, depth: int = 0):
    yield depth, root
    for child in root.children:
        yield from _with_depths(child, depth + 1)


def _node_by_id(root: PlanNode, node_id: int) -> PlanNode:
    for node in root.walk():
        if node.node_id == node_id:
            return node
    raise RuleError(f"no node {node_id}")
