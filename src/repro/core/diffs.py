"""ID-based diffs (i-diffs) — the paper's Section 2 formalism.

An i-diff for a relation ``V(Ī, Ā)`` identifies the tuples to modify
through a *subset* ``Ī′`` of V's IDs and optionally carries pre-state
and/or post-state values of non-ID attributes:

* insert i-diff  ``∆+V(Ī, Ā_post)``  — full IDs, all non-ID attrs post;
* delete i-diff  ``∆−V(Ī′, Ā′_pre)`` — ID subset, optional pre values;
* update i-diff  ``∆uV(Ī′, Ā′_pre, Ā″_post)`` — ID subset, optional pre
  values, post values of the updated attributes.

A single i-diff tuple can describe modifications to *many* view tuples —
that compactness is the paper's central idea.  Tuple-based diffs (t-diffs,
the classic formalism) are represented with the same classes, instantiated
with the full ID set and full attribute sets.

Diff rows are tuples laid out as ``Ī′ + Ā′__pre + Ā″__post`` — pre/post
columns carry ``__pre`` / ``__post`` suffixes so both states of an
attribute can coexist in one row.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..algebra.relation import Relation
from ..errors import DiffError
from ..storage import Table

INSERT = "+"
DELETE = "-"
UPDATE = "u"

DIFF_KINDS = (INSERT, DELETE, UPDATE)

PRE_SUFFIX = "__pre"
POST_SUFFIX = "__post"


def pre_col(attr: str) -> str:
    """Diff-column name carrying the pre-state value of *attr*."""
    return attr + PRE_SUFFIX


def post_col(attr: str) -> str:
    """Diff-column name carrying the post-state value of *attr*."""
    return attr + POST_SUFFIX


class DiffSchema:
    """Schema of an i-diff: kind, target relation, ID / pre / post attrs."""

    __slots__ = (
        "kind", "target", "id_attrs", "pre_attrs", "post_attrs",
        "_positions", "_columns",
    )

    def __init__(
        self,
        kind: str,
        target: str,
        id_attrs: Sequence[str],
        pre_attrs: Sequence[str] = (),
        post_attrs: Sequence[str] = (),
    ):
        if kind not in DIFF_KINDS:
            raise DiffError(f"unknown diff kind {kind!r}; expected one of {DIFF_KINDS}")
        id_attrs = tuple(id_attrs)
        pre_attrs = tuple(pre_attrs)
        post_attrs = tuple(post_attrs)
        if not id_attrs:
            raise DiffError(f"diff on {target!r} must identify tuples through IDs")
        if kind == INSERT and pre_attrs:
            raise DiffError("insert i-diffs carry no pre-state attributes (Section 2)")
        if kind == DELETE and post_attrs:
            raise DiffError("delete i-diffs carry no post-state attributes (Section 2)")
        if kind == UPDATE and not post_attrs:
            raise DiffError("update i-diffs must set at least one post-state attribute")
        overlap = set(id_attrs) & (set(pre_attrs) | set(post_attrs))
        if overlap:
            raise DiffError(f"attributes {sorted(overlap)} are both ID and non-ID")
        self.kind = kind
        self.target = target
        self.id_attrs = id_attrs
        self.pre_attrs = pre_attrs
        self.post_attrs = post_attrs
        self._columns = (
            id_attrs
            + tuple(pre_col(a) for a in pre_attrs)
            + tuple(post_col(a) for a in post_attrs)
        )
        self._positions = {c: i for i, c in enumerate(self._columns)}

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    @property
    def positions(self) -> dict[str, int]:
        return self._positions

    def position(self, column: str) -> int:
        try:
            return self._positions[column]
        except KeyError:
            raise DiffError(f"no diff column {column!r}; have {self.columns}") from None

    def signature(self) -> tuple:
        """Hashable identity, used to dedupe generated schemas."""
        return (self.kind, self.target, self.id_attrs, self.pre_attrs, self.post_attrs)

    def rename_target(self, target: str) -> "DiffSchema":
        return DiffSchema(self.kind, target, self.id_attrs, self.pre_attrs, self.post_attrs)

    def kind_label(self) -> str:
        """Short mnemonic used in generated step names."""
        return {INSERT: "ins", DELETE: "del", UPDATE: "upd"}[self.kind]

    def __repr__(self) -> str:  # pragma: no cover - display helper
        parts = [",".join(self.id_attrs)]
        if self.pre_attrs:
            parts.append(",".join(a + "(pre)" for a in self.pre_attrs))
        if self.post_attrs:
            parts.append(",".join(a + "(post)" for a in self.post_attrs))
        return f"∆{self.kind}_{self.target}({'; '.join(parts)})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DiffSchema) and other.signature() == self.signature()

    def __hash__(self) -> int:
        return hash(self.signature())


class Diff:
    """An i-diff instance: a :class:`DiffSchema` plus rows.

    The ID attributes form the primary key of the diff (Section 2 remark);
    exact duplicate rows are merged, conflicting rows with equal IDs are
    rejected.
    """

    __slots__ = ("schema", "rows")

    def __init__(self, schema: DiffSchema, rows: Iterable[tuple] = ()):
        self.schema = schema
        deduped: dict[tuple, tuple] = {}
        n_ids = len(schema.id_attrs)
        n_cols = len(schema.columns)
        for row in rows:
            row = tuple(row)
            if len(row) != n_cols:
                raise DiffError(
                    f"diff row arity {len(row)} != schema arity {n_cols} for {schema!r}"
                )
            key = row[:n_ids]
            existing = deduped.get(key)
            if existing is not None and existing != row:
                raise DiffError(
                    f"conflicting diff rows for ID {key} in {schema!r}: "
                    f"{existing} vs {row}"
                )
            deduped[key] = row
        self.rows = list(deduped.values())

    def __len__(self) -> int:
        return len(self.rows)

    def is_empty(self) -> bool:
        return not self.rows

    # ------------------------------------------------------------------
    # row accessors
    # ------------------------------------------------------------------
    def id_of(self, row: tuple) -> tuple:
        return row[: len(self.schema.id_attrs)]

    def pre_value(self, row: tuple, attr: str):
        return row[self.schema.position(pre_col(attr))]

    def post_value(self, row: tuple, attr: str):
        return row[self.schema.position(post_col(attr))]

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def as_relation(self) -> Relation:
        return Relation(self.schema.columns, self.rows)

    @classmethod
    def from_relation(cls, schema: DiffSchema, relation: Relation) -> "Diff":
        """Build a diff from any relation with compatible column names."""
        idx = [relation.position(c) for c in schema.columns]
        return cls(schema, (tuple(r[i] for i in idx) for r in relation.rows))

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Diff({self.schema!r}, {len(self.rows)} rows)"


class ColumnarDiff(Diff):
    """An i-diff instance stored columnar: one list per diff column.

    This is the batch representation the compiled execution backend and
    the :mod:`repro.core.wire` shard codec share — a wire document's
    ``cols`` lists can become a diff (and vice versa) without
    re-materializing row tuples.  Row tuples are produced lazily on
    first access and cached, so a diff that a ∆-script never reads
    costs nothing beyond its column lists; a diff built row-first
    (``from_rows``) materializes columns only if it is wire-encoded.

    Duck- and isinstance-compatible with :class:`Diff`: ``schema``,
    ``rows``, the row accessors and ``as_relation`` behave identically.
    """

    __slots__ = ("_cols", "_row_cache", "_n")

    def __init__(self, schema: DiffSchema, columns=None, rows=None):
        # Deliberately does not chain to Diff.__init__: validation is the
        # classmethods' job (from_rows validates, from_wire_columns
        # trusts the encoder, which validated at construction time).
        self.schema = schema
        self._cols = columns
        self._row_cache = rows
        self._n = len(rows) if rows is not None else (len(columns[0]) if columns else 0)

    @property
    def rows(self) -> list[tuple]:
        if self._row_cache is None:
            cols = self._cols
            self._row_cache = list(zip(*cols)) if self._n else []
        return self._row_cache

    def column_data(self) -> list[list]:
        """Per-column value lists (the wire layout), materialized once."""
        if self._cols is None:
            n_cols = len(self.schema.columns)
            cols: list[list] = [[] for _ in range(n_cols)]
            for row in self._row_cache:
                for i in range(n_cols):
                    cols[i].append(row[i])
            self._cols = cols
        return self._cols

    def __len__(self) -> int:
        return self._n

    def is_empty(self) -> bool:
        return not self._n

    @classmethod
    def from_rows(cls, schema: DiffSchema, rows: Iterable[tuple]) -> "ColumnarDiff":
        """Build from row tuples with :class:`Diff`'s exact validation
        (arity check, duplicate merge, conflicting-ID rejection)."""
        if not isinstance(rows, list):
            rows = list(rows)
        if not rows:
            # The dominant case per maintenance round: most steps of a
            # large script see no matching modifications.
            return cls(schema, rows=rows)
        deduped: dict[tuple, tuple] = {}
        lookup = deduped.get
        n_ids = len(schema.id_attrs)
        n_cols = len(schema.columns)
        for row in rows:
            if len(row) != n_cols:
                raise DiffError(
                    f"diff row arity {len(row)} != schema arity {n_cols} for {schema!r}"
                )
            key = row[:n_ids]
            existing = lookup(key)
            if existing is None:
                deduped[key] = row
            elif existing != row:
                raise DiffError(
                    f"conflicting diff rows for ID {key} in {schema!r}: "
                    f"{existing} vs {row}"
                )
        return cls(schema, rows=list(deduped.values()))

    @classmethod
    def from_diff(cls, diff: Diff) -> "ColumnarDiff":
        """Re-wrap an already-validated :class:`Diff` (no copy of rows)."""
        if isinstance(diff, ColumnarDiff):
            return diff
        return cls(diff.schema, rows=diff.rows)

    @classmethod
    def from_wire_columns(cls, schema: DiffSchema, columns: list[list]) -> "ColumnarDiff":
        """Adopt decoded wire column lists directly (trusted: the encoder
        side validated the diff when it was constructed)."""
        return cls(schema, columns=columns)

    def __reduce__(self):
        # The ``rows`` property shadows Diff's slot, which breaks the
        # default slot-state pickling; rebuild from materialized rows.
        return (_rebuild_columnar, (self.schema, self.rows))

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"ColumnarDiff({self.schema!r}, {self._n} rows)"


def _rebuild_columnar(schema: DiffSchema, rows: list[tuple]) -> "ColumnarDiff":
    return ColumnarDiff(schema, rows=rows)


# ----------------------------------------------------------------------
# effectiveness (Section 2)
# ----------------------------------------------------------------------
def is_effective(diff: Diff, post_table: Table) -> bool:
    """Check the paper's effectiveness conditions against the post-state.

    * insert: every inserted tuple exists in the post-state;
    * delete: no tuple with a deleted ID exists in the post-state;
    * update: every updated tuple still present has its updated attributes
      equal to the post-state values recorded in the diff.

    Reads are uncounted (this is a validation oracle, not part of IVM).
    """
    schema = diff.schema
    table_schema = post_table.schema
    post_rows = post_table.rows_uncounted()
    id_positions = [table_schema.position(a) for a in schema.id_attrs]
    by_id: dict[tuple, list[tuple]] = {}
    for row in post_rows:
        by_id.setdefault(tuple(row[i] for i in id_positions), []).append(row)

    if schema.kind == INSERT:
        post_positions = [table_schema.position(a) for a in schema.post_attrs]
        for diff_row in diff.rows:
            ident = diff.id_of(diff_row)
            expected = diff_row[len(schema.id_attrs):]
            found = any(
                tuple(row[i] for i in post_positions) == expected
                for row in by_id.get(ident, ())
            )
            if not found:
                return False
        return True

    if schema.kind == DELETE:
        return all(diff.id_of(row) not in by_id for row in diff.rows)

    # UPDATE: for IDs still present, post values must match.
    post_positions = [table_schema.position(a) for a in schema.post_attrs]
    n_ids = len(schema.id_attrs)
    n_pre = len(schema.pre_attrs)
    for diff_row in diff.rows:
        expected = diff_row[n_ids + n_pre:]
        for row in by_id.get(diff.id_of(diff_row), ()):
            if tuple(row[i] for i in post_positions) != expected:
                return False
    return True


def effective_set(diffs: Sequence[Diff], post_table: Table) -> bool:
    """True when every diff in *diffs* is effective w.r.t. *post_table*."""
    return all(is_effective(d, post_table) for d in diffs)


def merge_diffs(diffs: Sequence[Diff]) -> Diff:
    """Union of same-schema diffs (used when several rule branches feed
    one target); duplicate IDs must agree."""
    if not diffs:
        raise DiffError("cannot merge an empty diff list")
    schema = diffs[0].schema
    for d in diffs[1:]:
        if d.schema != schema:
            raise DiffError(f"cannot merge diffs with schemas {d.schema!r} != {schema!r}")
    rows: list[tuple] = []
    for d in diffs:
        rows.extend(d.rows)
    return Diff(schema, rows)


def insert_schema_for(table_schema) -> DiffSchema:
    """The canonical insert i-diff schema ∆+R(Ī, Ā_post) for a base table."""
    return DiffSchema(
        INSERT,
        table_schema.name,
        table_schema.key,
        post_attrs=table_schema.non_key_columns,
    )


def delete_schema_for(table_schema) -> DiffSchema:
    """The canonical delete i-diff schema ∆−R(Ī, Ā_pre) for a base table."""
    return DiffSchema(
        DELETE,
        table_schema.name,
        table_schema.key,
        pre_attrs=table_schema.non_key_columns,
    )


def update_schema_for(
    table_schema, post_attrs: Sequence[str], pre_attrs: Sequence[str] | None = None
) -> DiffSchema:
    """An update i-diff schema with full key and the given post attrs.

    *pre_attrs* defaults to all non-key attributes (the schema generator's
    choice: pre-state values only ever help — Section 5).
    """
    if pre_attrs is None:
        pre_attrs = table_schema.non_key_columns
    return DiffSchema(
        UPDATE,
        table_schema.name,
        table_schema.key,
        pre_attrs=tuple(pre_attrs),
        post_attrs=tuple(post_attrs),
    )
