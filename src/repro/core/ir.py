"""Diff-query IR: the language in which i-diff propagation rules are written.

The paper expresses rules (Tables 4–13) as algebraic equations over the
input i-diff, the subviews rooted at the operator's children
(``Input_pre`` / ``Input_post``) and the operator's own output
(``Output``).  This module provides those equations as a small, composable
query IR over *diff-shaped* relations — rows whose columns are ID
attributes (plain names) plus ``attr__pre`` / ``attr__post`` value columns.

Sources
-------
* :class:`DiffSource` — a named diff computed earlier in the ∆-script
  (or a base-table i-diff instance).
* :class:`SubviewSource` — the relation of the subview rooted at a plan
  node, in pre- or post-state; resolved through caches when one exists,
  through index-driven recomputation otherwise.
* :class:`AppliedSource` — the ``UPDATE ... RETURNING`` expansion of a
  previous APPLY step (Appendix A optimization).
* :class:`Empty` — the result of a Figure 8 rewrite to ∅.

Transforms
----------
:class:`Filter`, :class:`Compute` (generalized projection),
:class:`Distinct`, :class:`UnionRows`, :class:`GroupAgg`, and the two
subview probes :class:`ProbeJoin` / :class:`ProbeSemi`, which evaluate
with diff-driven loop plans (one index probe per distinct binding).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..algebra.plan import AggSpec, PlanNode
from ..errors import ScriptError
from ..expr import Expr, columns_of
from .diffs import DiffSchema

PRE = "pre"
POST = "post"

#: Prefix under which a probed subview's columns appear inside residual
#: predicates of :class:`ProbeSemi` (to avoid colliding with diff columns).
SUB_PREFIX = "sub__"


class IrNode:
    """Base class; every node knows its output columns statically."""

    columns: tuple[str, ...]

    def children(self) -> tuple["IrNode", ...]:
        return ()

    def walk(self):
        yield self
        for child in self.children():
            yield from child.walk()

    def pretty(self, indent: int = 0) -> str:
        """Multi-line script rendering (used by DeltaScript.describe)."""
        pad = "  " * indent
        head = pad + self._describe()
        parts = [head]
        for child in self.children():
            parts.append(child.pretty(indent + 1))
        return "\n".join(parts)

    def _describe(self) -> str:
        return type(self).__name__


class DiffSource(IrNode):
    """Reference to a named diff in the script environment."""

    def __init__(self, name: str, schema: DiffSchema):
        self.name = name
        self.schema = schema
        self.columns = schema.columns

    def _describe(self) -> str:
        return f"∆[{self.name}] :: {self.schema!r}"


class SubviewSource(IrNode):
    """The relation of the subview rooted at *node*, in *state*.

    The paper's ``Input_{pre,post}`` / ``Output`` keywords.  Standalone use
    fetches all rows; as the right side of a probe it is fetched only for
    the probe bindings.
    """

    def __init__(self, node: PlanNode, state: str):
        if state not in (PRE, POST):
            raise ScriptError(f"subview state must be pre/post, got {state!r}")
        self.node = node
        self.state = state
        self.columns = node.columns

    def _describe(self) -> str:
        return f"Subview[n{self.node.node_id} {self.node.label()}] ({self.state})"


class AppliedSource(IrNode):
    """RETURNING expansion of a named APPLY step.

    Columns: the target table's key, then ``attr__pre`` / ``attr__post``
    for each attribute in *attrs*.
    """

    def __init__(self, apply_name: str, key: Sequence[str], attrs: Sequence[str]):
        from .diffs import post_col, pre_col

        self.apply_name = apply_name
        self.key = tuple(key)
        self.attrs = tuple(attrs)
        self.columns = (
            self.key
            + tuple(pre_col(a) for a in self.attrs)
            + tuple(post_col(a) for a in self.attrs)
        )

    def _describe(self) -> str:
        return f"Returning[{self.apply_name}]"


class Empty(IrNode):
    """∅ — produced by Figure 8 rewrites (e.g. ∆− ⋈Ī R → ∅)."""

    def __init__(self, columns: Sequence[str]):
        self.columns = tuple(columns)

    def _describe(self) -> str:
        return "∅"


class Filter(IrNode):
    """σ over diff-shaped rows; the predicate sees the child's columns."""

    def __init__(self, child: IrNode, predicate: Expr):
        missing = columns_of(predicate) - set(child.columns)
        if missing:
            raise ScriptError(
                f"filter references {sorted(missing)}; child has {child.columns}"
            )
        self.child = child
        self.predicate = predicate
        self.columns = child.columns

    def children(self) -> tuple[IrNode, ...]:
        return (self.child,)

    def _describe(self) -> str:
        return f"σ {self.predicate!r}"


class Compute(IrNode):
    """Generalized projection over diff-shaped rows."""

    def __init__(self, child: IrNode, items: Sequence[tuple[str, Expr]]):
        names = [n for n, _ in items]
        if len(set(names)) != len(names):
            raise ScriptError(f"duplicate computed column names {names}")
        available = set(child.columns)
        for name, expr in items:
            missing = columns_of(expr) - available
            if missing:
                raise ScriptError(
                    f"computed column {name!r} references {sorted(missing)}; "
                    f"child has {child.columns}"
                )
        self.child = child
        self.items = tuple(items)
        self.columns = tuple(names)

    def children(self) -> tuple[IrNode, ...]:
        return (self.child,)

    def _describe(self) -> str:
        return "π " + ", ".join(n for n, _ in self.items)


class Distinct(IrNode):
    """Duplicate elimination (needed when projecting onto an ID subset)."""

    def __init__(self, child: IrNode):
        self.child = child
        self.columns = child.columns

    def children(self) -> tuple[IrNode, ...]:
        return (self.child,)

    def _describe(self) -> str:
        return "δ"


class UnionRows(IrNode):
    """Bag union of same-schema diff fragments (the ∆1 ∪ ∆2 ∪ ∆3 shape)."""

    def __init__(self, parts: Sequence[IrNode]):
        if not parts:
            raise ScriptError("union of zero parts")
        first = parts[0].columns
        for p in parts[1:]:
            if p.columns != first:
                raise ScriptError(
                    f"union parts differ: {p.columns} vs {first}"
                )
        self.parts = tuple(parts)
        self.columns = first

    def children(self) -> tuple[IrNode, ...]:
        return self.parts

    def _describe(self) -> str:
        return "∪"


class GroupAgg(IrNode):
    """Pipelined hash aggregation of diff-shaped rows (no storage cost)."""

    def __init__(self, child: IrNode, keys: Sequence[str], aggs: Sequence[AggSpec]):
        keys = tuple(keys)
        missing = set(keys) - set(child.columns)
        if missing:
            raise ScriptError(f"group keys {sorted(missing)} not in {child.columns}")
        self.child = child
        self.keys = keys
        self.aggs = tuple(aggs)
        self.columns = keys + tuple(a.name for a in self.aggs)

    def children(self) -> tuple[IrNode, ...]:
        return (self.child,)

    def _describe(self) -> str:
        return f"γ {', '.join(self.keys)}; " + ", ".join(repr(a) for a in self.aggs)


class OutputHint:
    """View-reuse annotation for a probe (the paper's Section 9 extension).

    When the probed subview's base tables are untouched in the current
    batch, the probe may be answered from the materialization of an
    ancestor operator (the view itself or a cache): any row of that
    materialization carries a genuine row of the probed subview under the
    *column_map* names.  Soundness requires the probe's ``on`` columns to
    cover the subview's IDs (at most one match, so a hit is complete);
    misses fall back to the ordinary base probe — the run-time dynamism
    Section 9 calls for.
    """

    __slots__ = ("mat_node_id", "column_map", "guard_tables")

    def __init__(
        self,
        mat_node_id: int,
        column_map: dict[str, str],
        guard_tables: Sequence[str],
    ):
        self.mat_node_id = mat_node_id
        #: probed-subview column -> materialization column
        self.column_map = dict(column_map)
        self.guard_tables = tuple(guard_tables)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"OutputHint(n{self.mat_node_id}, guard={self.guard_tables})"


class ProbeJoin(IrNode):
    """Diff-driven join with a subview: ``left ⋈_on Subview(state)``.

    For each distinct combination of the left rows' *on* columns, the
    subview is fetched through indexes (the paper's diff-driven loop
    plan).  ``keep`` renames the subview columns into the output
    (``(out_name, subview_column)``); *residual* is an extra predicate
    over ``left.columns + keep-out-names``.  An optional
    :class:`OutputHint` (set by the generator's view-reuse pass) lets the
    executor satisfy the probe from an ancestor materialization.
    """

    def __init__(
        self,
        left: IrNode,
        node: PlanNode,
        state: str,
        on: Sequence[tuple[str, str]],
        keep: Sequence[tuple[str, str]],
        residual: Optional[Expr] = None,
    ):
        self.via_output: Optional[OutputHint] = None
        if state not in (PRE, POST):
            raise ScriptError(f"probe state must be pre/post, got {state!r}")
        for lcol, _ in on:
            if lcol not in left.columns:
                raise ScriptError(f"probe-on column {lcol!r} not in {left.columns}")
        for _, sub in list(on) + list(keep):
            if sub not in node.columns:
                raise ScriptError(
                    f"subview column {sub!r} not in n{node.node_id} {node.columns}"
                )
        out_names = tuple(n for n, _ in keep)
        overlap = set(out_names) & set(left.columns)
        if overlap:
            raise ScriptError(f"probe keep names {sorted(overlap)} collide with left")
        self.left = left
        self.node = node
        self.state = state
        self.on = tuple(on)
        self.keep = tuple(keep)
        self.residual = residual
        self.columns = left.columns + out_names
        if residual is not None:
            missing = columns_of(residual) - set(self.columns)
            if missing:
                raise ScriptError(f"probe residual references {sorted(missing)}")

    def children(self) -> tuple[IrNode, ...]:
        return (self.left,)

    def _describe(self) -> str:
        on = ", ".join(f"{a}={b}" for a, b in self.on)
        return f"⋈ Subview[n{self.node.node_id}] ({self.state}) on {on}"


class ProbeSemi(IrNode):
    """Diff-driven (anti)semijoin with a subview.

    Keeps left rows that have (``negated=False``) or do not have
    (``negated=True``) a matching subview row.  *residual* may reference
    left columns and subview columns under the ``sub__`` prefix.
    """

    def __init__(
        self,
        left: IrNode,
        node: PlanNode,
        state: str,
        on: Sequence[tuple[str, str]],
        residual: Optional[Expr] = None,
        negated: bool = False,
    ):
        if state not in (PRE, POST):
            raise ScriptError(f"probe state must be pre/post, got {state!r}")
        for lcol, _ in on:
            if lcol not in left.columns:
                raise ScriptError(f"probe-on column {lcol!r} not in {left.columns}")
        for _, sub in on:
            if sub not in node.columns:
                raise ScriptError(
                    f"subview column {sub!r} not in n{node.node_id} {node.columns}"
                )
        self.left = left
        self.node = node
        self.state = state
        self.on = tuple(on)
        self.residual = residual
        self.negated = negated
        self.columns = left.columns
        if residual is not None:
            allowed = set(left.columns) | {SUB_PREFIX + c for c in node.columns}
            missing = columns_of(residual) - allowed
            if missing:
                raise ScriptError(f"semi residual references {sorted(missing)}")

    def children(self) -> tuple[IrNode, ...]:
        return (self.left,)

    def _describe(self) -> str:
        mark = "▷" if self.negated else "⋉"
        on = ", ".join(f"{a}={b}" for a, b in self.on)
        return f"{mark} Subview[n{self.node.node_id}] ({self.state}) on {on}"


def diff_sources_of(root: IrNode) -> list[DiffSource]:
    """All DiffSource leaves (for script dependency ordering)."""
    return [n for n in root.walk() if isinstance(n, DiffSource)]


def applied_sources_of(root: IrNode) -> list[AppliedSource]:
    return [n for n in root.walk() if isinstance(n, AppliedSource)]


def subview_states_of(root: IrNode) -> set[tuple[int, str]]:
    """(node_id, state) pairs of every subview reference in the tree."""
    out: set[tuple[int, str]] = set()
    for n in root.walk():
        if isinstance(n, SubviewSource):
            out.add((n.node.node_id, n.state))
        elif isinstance(n, (ProbeJoin, ProbeSemi)):
            out.add((n.node.node_id, n.state))
    return out
