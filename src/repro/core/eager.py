"""Eager IVM (paper Section 3): maintain the views on every modification.

The paper's architecture supports both eager and deferred maintenance
with the same modification logger; only the timing differs.  This module
wraps :class:`IdIvmEngine` so that each ``insert`` / ``update`` /
``delete`` immediately triggers a maintenance round (batch boundaries
can still be drawn explicitly with :meth:`EagerIvmEngine.transaction`).

Eager mode trades throughput for freshness: per-tuple rounds forgo the
log folding that collapses a tuple's modification chain (Section 5), so
a batch of ``n`` changes costs roughly ``n`` one-change rounds.  The
cost difference is measured in ``benchmarks/bench_eager_vs_deferred.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

from ..algebra.plan import PlanNode
from ..storage import AccessCounts, Database
from .engine import IdIvmEngine, MaintenanceReport, MaterializedView


class EagerIvmEngine:
    """Views stay up to date after every single base-table modification."""

    def __init__(self, db: Database, optimize: bool = True, cache_policy: str = "equi"):
        self._engine = IdIvmEngine(db, optimize=optimize, cache_policy=cache_policy)
        self._in_transaction = False
        #: accumulated maintenance reports (one per triggered round)
        self.rounds: list[dict[str, MaintenanceReport]] = []

    @property
    def db(self) -> Database:
        return self._engine.db

    @property
    def views(self) -> dict[str, MaterializedView]:
        return self._engine.views

    def define_view(self, name: str, plan: PlanNode) -> MaterializedView:
        """Register a view on the wrapped deferred engine."""
        return self._engine.define_view(name, plan)

    # ------------------------------------------------------------------
    # modifications: logged, then maintained immediately
    # ------------------------------------------------------------------
    def insert(self, table: str, row: Sequence) -> None:
        self._engine.log.insert(table, row)
        self._maybe_maintain()

    def update(self, table: str, key: Sequence, changes: Mapping[str, object]) -> None:
        self._engine.log.update(table, key, changes)
        self._maybe_maintain()

    def delete(self, table: str, key: Sequence) -> None:
        self._engine.log.delete(table, key)
        self._maybe_maintain()

    def _maybe_maintain(self) -> None:
        if not self._in_transaction:
            self.rounds.append(self._engine.maintain())

    # ------------------------------------------------------------------
    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Defer maintenance to the end of the block (one folded round).

        Inside a transaction the engine behaves exactly like the deferred
        engine: the log is folded into effective diffs once.
        """
        self._in_transaction = True
        try:
            yield
        finally:
            self._in_transaction = False
            self.rounds.append(self._engine.maintain())

    # ------------------------------------------------------------------
    def total_cost(self) -> int:
        """Accesses spent across all maintenance rounds so far."""
        return sum(
            report.total_cost
            for round_reports in self.rounds
            for report in round_reports.values()
        )

    def phase_totals(self) -> dict[str, AccessCounts]:
        """Accumulated per-phase counts across all rounds."""
        totals: dict[str, AccessCounts] = {}
        for round_reports in self.rounds:
            for report in round_reports.values():
                for phase, counts in report.phase_counts.items():
                    if phase == "__total__":
                        continue
                    bucket = totals.setdefault(phase, AccessCounts())
                    bucket.add(counts)
        return totals
