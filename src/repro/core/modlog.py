"""Modification logger and base-table i-diff instance generator — Section 5.

The logger records raw modifications at data-modification time (the paper
uses triggers; we hook the same three operations).  At view-maintenance
time the instance generator folds the log into *effective* net changes —
multiple modifications of the same tuple are combined (insert∘update →
insert with final values, insert∘delete → nothing, delete∘insert →
update, update∘update → merged) — and routes each net change into the
pre-computed i-diff schemas: inserts into the single insert schema,
deletes into the single delete schema, and each tuple's update into the
*minimal* update schema covering all of its modified attributes (one
instance per tuple — splitting a change across instances would entangle
them; the catch-all schema from :mod:`repro.core.schema_gen` guarantees
a cover exists).
"""

from __future__ import annotations

import time
from typing import Mapping, Optional, Sequence

from ..errors import DiffError, WorkloadError
from ..obs import metrics
from ..obs import spans as obs
from ..storage import Database, Table
from .diffs import DELETE, INSERT, UPDATE, Diff, DiffSchema


class LoggedModification:
    """One raw log record.

    ``seq`` (1-based, monotone per log) and ``logged_at`` are stamped by
    the owning :class:`ModificationLog`; hand-built records default to
    0/0.0 and simply don't participate in freshness accounting.
    """

    __slots__ = ("kind", "table", "key", "row", "changes", "seq", "logged_at")

    def __init__(
        self,
        kind: str,
        table: str,
        key: tuple,
        row: Optional[tuple] = None,
        changes: Optional[dict[str, object]] = None,
    ):
        self.kind = kind
        self.table = table
        self.key = key
        self.row = row
        self.changes = changes
        self.seq = 0
        self.logged_at = 0.0

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Mod({self.kind} {self.table} {self.key})"


class _NetChange:
    """Folded per-tuple state while scanning the log."""

    __slots__ = ("kind", "pre_row", "post_row")

    def __init__(self, kind: str, pre_row: Optional[tuple], post_row: Optional[tuple]):
        self.kind = kind
        self.pre_row = pre_row
        self.post_row = post_row


class ModificationLog:
    """Records base-table modifications and applies them to the database.

    ``log.insert/update/delete`` both mutate the live database (deferred
    IVM: base tables move to post-state immediately) and append to the
    log.  ``take()`` drains the log for a maintenance round.
    """

    def __init__(self, db: Database, freshness=None):
        self.db = db
        self.entries: list[LoggedModification] = []
        #: optional :class:`~repro.obs.freshness.FreshnessTracker`; when
        #: attached, every appended entry advances its log position.
        self.freshness = freshness
        self._seq = 0

    @property
    def position(self) -> int:
        """Sequence number of the newest logged modification."""
        return self._seq

    def _append(self, entry: LoggedModification) -> None:
        self._seq += 1
        entry.seq = self._seq
        if self.freshness is not None:
            entry.logged_at = self.freshness.clock()
            self.freshness.note_logged(entry.seq, entry.logged_at)
        else:
            entry.logged_at = time.monotonic()
        self.entries.append(entry)

    # ------------------------------------------------------------------
    def insert(self, table: str, row: Sequence) -> None:
        """Insert *row* into the live table and log the modification."""
        t = self.db.table(table)
        row = tuple(row)
        t.insert_uncounted(row)
        self._append(
            LoggedModification(INSERT, table, t.schema.key_of(row), row=row)
        )

    def delete(self, table: str, key: Sequence) -> None:
        """Delete the row with *key* and log the modification."""
        t = self.db.table(table)
        key = tuple(key)
        old = t.delete_uncounted(key)
        if old is None:
            raise WorkloadError(f"cannot delete absent key {key} from {table!r}")
        self._append(LoggedModification(DELETE, table, key, row=old))

    def update(self, table: str, key: Sequence, changes: Mapping[str, object]) -> None:
        t = self.db.table(table)
        key = tuple(key)
        immutable = set(changes) & set(t.schema.key)
        if immutable:
            raise WorkloadError(
                f"key columns {sorted(immutable)} of {table!r} are immutable "
                f"(paper Section 5, footnote 7); delete and re-insert instead"
            )
        old = t.update_uncounted(key, changes)
        if old is None:
            raise WorkloadError(f"cannot update absent key {key} in {table!r}")
        if _apply_changes(t, old, changes) == old:
            # The new values equal the old ones: the table is unchanged,
            # so the update folds to a no-op here rather than forcing the
            # next maintenance round to reconstruct the pre-state and run
            # an empty i-diff round (count-neutrality: same cost as not
            # updating at all).  fold_log keeps the equivalent guard for
            # hand-built logs.
            return
        # Trigger-style logging: capture the pre-state row alongside the
        # changed attributes.
        self._append(
            LoggedModification(UPDATE, table, key, row=old, changes=dict(changes))
        )

    def take(self) -> list[LoggedModification]:
        """Drain the log for one maintenance round."""
        entries, self.entries = self.entries, []
        return entries


def fold_log(
    entries: Sequence[LoggedModification], db: Database
) -> dict[str, dict[tuple, _NetChange]]:
    """Fold the log into net per-tuple changes (effective diffs).

    Pre-state rows come from the log entries themselves (the trigger
    captured them); *db* is only consulted for table schemas.
    """
    net: dict[str, dict[tuple, _NetChange]] = {}
    for entry in entries:
        table = db.table(entry.table)
        per_table = net.setdefault(entry.table, {})
        current = per_table.get(entry.key)
        if entry.kind == INSERT:
            if current is None:
                per_table[entry.key] = _NetChange(INSERT, None, entry.row)
            elif current.kind == DELETE:
                # delete then re-insert: net update (or nothing if equal)
                if current.pre_row == entry.row:
                    del per_table[entry.key]
                else:
                    per_table[entry.key] = _NetChange(
                        UPDATE, current.pre_row, entry.row
                    )
            else:
                raise DiffError(f"insert over live tuple {entry.key} in log")
        elif entry.kind == DELETE:
            if current is None:
                per_table[entry.key] = _NetChange(DELETE, entry.row, None)
            elif current.kind == INSERT:
                del per_table[entry.key]
            else:  # UPDATE then DELETE
                per_table[entry.key] = _NetChange(DELETE, current.pre_row, None)
        else:  # UPDATE
            if current is None:
                pre_row = entry.row
                if pre_row is None:
                    raise DiffError(
                        f"log updates unknown tuple {entry.key} of {entry.table!r}"
                    )
                post = _apply_changes(table, pre_row, entry.changes)
                if post == pre_row:
                    continue
                per_table[entry.key] = _NetChange(UPDATE, pre_row, post)
            else:
                base = current.post_row
                if base is None:
                    raise DiffError(f"update of deleted tuple {entry.key} in log")
                post = _apply_changes(table, base, entry.changes)
                if current.kind == INSERT:
                    per_table[entry.key] = _NetChange(INSERT, None, post)
                else:
                    if post == current.pre_row:
                        del per_table[entry.key]
                    else:
                        per_table[entry.key] = _NetChange(
                            UPDATE, current.pre_row, post
                        )
    return net


def _apply_changes(table: Table, row: tuple, changes: Mapping[str, object]) -> tuple:
    new = list(row)
    for column, value in changes.items():
        new[table.schema.position(column)] = value
    return tuple(new)


def populate_instances(
    schemas: Sequence[DiffSchema],
    entries: Sequence[LoggedModification],
    db: Database,
) -> dict[str, Diff]:
    """Build i-diff instances for the pre-computed schemas from the log.

    Returns a mapping from a stable schema name (used as the ∆-script's
    DiffSource name) to the populated instance.  Every schema gets an
    instance (possibly empty) so scripts can reference all of them.
    """
    with obs.span(
        "log_to_idiffs", kind="engine", counters=db.counters,
        n_log_entries=len(entries), n_schemas=len(schemas),
    ) as sp:
        out = _populate_instances(schemas, entries, db)
        total_rows = sum(len(diff) for diff in out.values())
        sp.set(
            idiff_rows=total_rows,
            nonempty_instances=sum(1 for diff in out.values() if diff),
        )
        metrics.histogram("modlog.idiff_rows_per_round").observe(total_rows)
        metrics.loghist("modlog.fold_rows", unit="rows").observe(total_rows)
        if entries:
            metrics.histogram("modlog.fold_ratio").observe(
                total_rows / len(entries)
            )
        return out


def _populate_instances(
    schemas: Sequence[DiffSchema],
    entries: Sequence[LoggedModification],
    db: Database,
) -> dict[str, Diff]:
    net = fold_log(entries, db)
    out: dict[str, Diff] = {}
    update_schemas: dict[str, list[DiffSchema]] = {}
    for schema in schemas:
        if schema.kind == UPDATE:
            update_schemas.setdefault(schema.target, []).append(schema)
    # Route every net tuple-update to exactly ONE schema: the smallest
    # whose post attributes cover all modified attributes.  (Splitting a
    # tuple's change across instances would entangle them: each instance
    # implies its non-post attributes are unchanged — the derivation the
    # rules and Figure 8 rewrites rely on — and aggregate deltas would
    # double-count the shared row.  The per-group schemas of Section 5
    # still serve the common case of updates within one group; the
    # catch-all schema absorbs the rest.)
    routed: dict[tuple[str, tuple], DiffSchema] = {}
    for table, per_table in net.items():
        if table not in update_schemas:
            continue  # the view does not read this table
        table_schema = db.table(table).schema
        for key, change in per_table.items():
            if change.kind != UPDATE:
                continue
            modified = frozenset(
                a
                for a in table_schema.non_key_columns
                if change.pre_row[table_schema.position(a)]
                != change.post_row[table_schema.position(a)]
            )
            candidates = [
                s
                for s in update_schemas.get(table, [])
                if modified <= set(s.post_attrs)
            ]
            if not candidates:
                raise DiffError(
                    f"no update i-diff schema of {table!r} covers modified "
                    f"attributes {sorted(modified)}"
                )
            chosen = min(candidates, key=lambda s: len(s.post_attrs))
            routed[(table, key)] = chosen

    for schema in schemas:
        rows: list[tuple] = []
        table_schema = db.table(schema.target).schema
        per_table = net.get(schema.target, {})
        for key, change in per_table.items():
            if schema.kind == INSERT and change.kind == INSERT:
                rows.append(
                    key + table_schema.project(change.post_row, schema.post_attrs)
                )
            elif schema.kind == DELETE and change.kind == DELETE:
                rows.append(
                    key + table_schema.project(change.pre_row, schema.pre_attrs)
                )
            elif schema.kind == UPDATE and change.kind == UPDATE:
                if routed.get((schema.target, key)) is schema:
                    rows.append(
                        key
                        + table_schema.project(change.pre_row, schema.pre_attrs)
                        + table_schema.project(change.post_row, schema.post_attrs)
                    )
        out[schema_instance_name(schema)] = Diff(schema, rows)
    return out


def schema_instance_name(schema: DiffSchema) -> str:
    """Stable ∆-script name for a base-table i-diff schema."""
    if schema.kind == UPDATE:
        return f"base_u_{schema.target}__{'_'.join(schema.post_attrs)}"
    kind = "ins" if schema.kind == INSERT else "del"
    return f"base_{kind}_{schema.target}"
