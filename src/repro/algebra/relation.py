"""Transient (non-stored) relations: the values flowing between operators."""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from ..errors import SchemaError, UnknownColumnError


class Relation:
    """An ordered bag of rows with named columns.

    Unlike :class:`~repro.storage.Table`, a Relation is not stored, not
    indexed and not instrumented — it is the in-flight result of a query
    fragment (pipelined, in the paper's terms).
    """

    __slots__ = ("columns", "rows", "_positions")

    def __init__(self, columns: Sequence[str], rows: Iterable[tuple] | None = None):
        self.columns = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise SchemaError(f"duplicate columns in relation: {self.columns}")
        self.rows: list[tuple] = list(rows) if rows is not None else []
        self._positions = {c: i for i, c in enumerate(self.columns)}

    @property
    def positions(self) -> dict[str, int]:
        return self._positions

    def position(self, column: str) -> int:
        try:
            return self._positions[column]
        except KeyError:
            raise UnknownColumnError(
                f"column {column!r} not in {self.columns}"
            ) from None

    def project_row(self, row: tuple, columns: Sequence[str]) -> tuple:
        return tuple(row[self._positions[c]] for c in columns)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def as_set(self) -> frozenset[tuple]:
        return frozenset(self.rows)

    def distinct(self) -> "Relation":
        seen: set[tuple] = set()
        out: list[tuple] = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return Relation(self.columns, out)

    def select_columns(self, columns: Sequence[str]) -> "Relation":
        idx = [self.position(c) for c in columns]
        return Relation(columns, [tuple(r[i] for i in idx) for r in self.rows])

    def filtered(self, keep: Callable[[tuple], bool]) -> "Relation":
        return Relation(self.columns, [r for r in self.rows if keep(r)])

    def pretty(self, limit: int = 20) -> str:
        """Aligned table rendering (at most *limit* rows, sorted)."""
        from ..storage.table import sort_rows

        shown = sort_rows(self.rows)[:limit]
        cells = [[_fmt(v) for v in row] for row in shown]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        rule = "  ".join("-" * w for w in widths)
        body = [
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            for row in cells
        ]
        lines = [header, rule] + body
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Relation({self.columns}, {len(self.rows)} rows)"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
