"""Algebraic plan nodes for the QSPJADU view-definition language.

The language (paper Section 2) contains Selection, generalized Projection
(with scalar functions), Join (arbitrary conditions; cross product is a join
with no condition), Grouping with the aggregation functions sum / count /
avg (specialized rules) and min / max / general (recompute rules),
Antisemijoin (hence difference / negation) and bag Union (the special
``union all`` operator that emits a branch attribute *b*).

Plans are immutable trees.  Node identifiers and ID (key) attributes are
attached by Pass 1 of the ∆-script generator (:mod:`repro.core.idinfer`),
which may also *extend* projections so that every subview carries its IDs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import PlanError
from ..expr import Expr, columns_of
from ..storage.schema import TableSchema

AGG_FUNCS = ("sum", "count", "avg", "min", "max")

#: Aggregation functions with specialized *blocking* i-diff rules
#: (Tables 9, 11, 12); min/max fall back to the general recompute rules
#: (Table 7).
ASSOCIATIVE_AGGS = ("sum", "count", "avg")


class AggSpec:
    """One aggregate column: ``func(arg) AS name``.

    ``arg`` is None only for ``count`` (i.e. COUNT(*)).
    """

    __slots__ = ("func", "arg", "name")

    def __init__(self, func: str, arg: Optional[Expr], name: str):
        if func not in AGG_FUNCS:
            raise PlanError(f"unknown aggregate function {func!r}; have {AGG_FUNCS}")
        if arg is None and func != "count":
            raise PlanError(f"aggregate {func!r} requires an argument")
        self.func = func
        self.arg = arg
        self.name = name

    @property
    def arg_columns(self) -> frozenset[str]:
        return columns_of(self.arg) if self.arg is not None else frozenset()

    def __repr__(self) -> str:  # pragma: no cover - display helper
        inner = repr(self.arg) if self.arg is not None else "*"
        return f"{self.func}({inner}) AS {self.name}"


class PlanNode:
    """Base class of all plan operators."""

    #: filled by idinfer.annotate(): stable preorder identifier
    node_id: int
    #: filled by idinfer.annotate(): the subview's ID (key) attributes
    ids: tuple[str, ...]

    def __init__(self) -> None:
        self.node_id = -1
        self.ids = ()

    @property
    def columns(self) -> tuple[str, ...]:
        raise NotImplementedError

    @property
    def children(self) -> tuple["PlanNode", ...]:
        raise NotImplementedError

    @property
    def non_id_columns(self) -> tuple[str, ...]:
        id_set = set(self.ids)
        return tuple(c for c in self.columns if c not in id_set)

    def walk(self):
        """Preorder traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def label(self) -> str:
        """Short operator label for script pretty-printing."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"{self.label()}#{self.node_id}{list(self.columns)}"


class Scan(PlanNode):
    """Leaf: scan of a base table (per alias; see Section 4 footnote 5)."""

    def __init__(self, schema: TableSchema, alias: str | None = None):
        super().__init__()
        self.table = schema.name
        self.schema = schema
        self.alias = alias if alias is not None else schema.name

    @property
    def columns(self) -> tuple[str, ...]:
        return self.schema.columns

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return ()

    def label(self) -> str:
        if self.alias != self.table:
            return f"SCAN {self.table} AS {self.alias}"
        return f"SCAN {self.table}"


class Select(PlanNode):
    """σ_predicate(child)."""

    def __init__(self, child: PlanNode, predicate: Expr):
        super().__init__()
        missing = columns_of(predicate) - set(child.columns)
        if missing:
            raise PlanError(f"selection references unknown columns {sorted(missing)}")
        self.child = child
        self.predicate = predicate

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"σ {self.predicate!r}"


class Project(PlanNode):
    """Generalized projection π: ``items`` is a sequence of (name, Expr).

    Handles plain projection, renaming and computed columns
    (Table 8's π_{D̄, f(X̄)→c}).
    """

    def __init__(self, child: PlanNode, items: Sequence[tuple[str, Expr]]):
        super().__init__()
        names = [n for n, _ in items]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate projection names: {names}")
        available = set(child.columns)
        for name, expr in items:
            missing = columns_of(expr) - available
            if missing:
                raise PlanError(
                    f"projection {name!r} references unknown columns {sorted(missing)}"
                )
        self.child = child
        self.items = tuple(items)

    @property
    def columns(self) -> tuple[str, ...]:
        return tuple(n for n, _ in self.items)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return "π " + ", ".join(n for n, _ in self.items)


class Join(PlanNode):
    """Theta join; ``condition=None`` denotes the cross product ×.

    Children must have disjoint column names (use :func:`Project` to rename
    before joining; the builder's ``natural_join`` does this for you).
    """

    def __init__(self, left: PlanNode, right: PlanNode, condition: Optional[Expr]):
        super().__init__()
        overlap = set(left.columns) & set(right.columns)
        if overlap:
            raise PlanError(
                f"join children share column names {sorted(overlap)}; rename first"
            )
        if condition is not None:
            missing = columns_of(condition) - set(left.columns) - set(right.columns)
            if missing:
                raise PlanError(f"join condition references unknown columns {sorted(missing)}")
        self.left = left
        self.right = right
        self.condition = condition

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns + self.right.columns

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        if self.condition is None:
            return "×"
        return f"⋈ {self.condition!r}"


class AntiJoin(PlanNode):
    """Antisemijoin ▷: left rows with *no* matching right row.

    Captures negation; set difference is the special case of an antijoin
    on all columns (paper footnote 1).
    """

    def __init__(self, left: PlanNode, right: PlanNode, condition: Expr):
        super().__init__()
        missing = columns_of(condition) - set(left.columns) - set(right.columns)
        if missing:
            raise PlanError(f"antijoin condition references unknown columns {sorted(missing)}")
        self.left = left
        self.right = right
        self.condition = condition

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"▷ {self.condition!r}"


class SemiJoin(PlanNode):
    """Semijoin ⋉: left rows with at least one matching right row.

    Not part of the paper's QSPJADU core — added as the worked example of
    the operator-extensibility layer (docs/EXTENDING.md): a new operator
    needs only an ID-inference rule (ID(L), like the antisemijoin) and a
    propagation-rule module.
    """

    def __init__(self, left: PlanNode, right: PlanNode, condition: Expr):
        super().__init__()
        missing = columns_of(condition) - set(left.columns) - set(right.columns)
        if missing:
            raise PlanError(f"semijoin condition references unknown columns {sorted(missing)}")
        self.left = left
        self.right = right
        self.condition = condition

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"⋉ {self.condition!r}"


class UnionAll(PlanNode):
    """Bag union, emitting a branch attribute (paper Section 2, footnote 2).

    Both children must have identical column tuples; the output appends
    *branch_column* with value 0 for left-branch rows and 1 for right.
    """

    def __init__(self, left: PlanNode, right: PlanNode, branch_column: str = "b"):
        super().__init__()
        if left.columns != right.columns:
            raise PlanError(
                f"union branches differ: {left.columns} vs {right.columns}"
            )
        if branch_column in left.columns:
            raise PlanError(f"branch column {branch_column!r} collides with a data column")
        self.left = left
        self.right = right
        self.branch_column = branch_column

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns + (self.branch_column,)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "∪ all"


class GroupBy(PlanNode):
    """γ_{keys; aggs}(child).

    *keys* must be non-empty (they become the output's IDs, Table 1) and a
    subset of the child's columns.
    """

    def __init__(self, child: PlanNode, keys: Sequence[str], aggs: Sequence[AggSpec]):
        super().__init__()
        keys = tuple(keys)
        if not keys:
            raise PlanError("grouping requires at least one key column (it forms the view ID)")
        missing = set(keys) - set(child.columns)
        if missing:
            raise PlanError(f"group keys {sorted(missing)} not in child columns")
        if not aggs:
            raise PlanError("grouping requires at least one aggregate")
        names = list(keys) + [a.name for a in aggs]
        if len(set(names)) != len(names):
            raise PlanError(f"duplicate output names in grouping: {names}")
        for agg in aggs:
            bad = agg.arg_columns - set(child.columns)
            if bad:
                raise PlanError(f"aggregate {agg!r} references unknown columns {sorted(bad)}")
        self.child = child
        self.keys = keys
        self.aggs = tuple(aggs)

    @property
    def columns(self) -> tuple[str, ...]:
        return self.keys + tuple(a.name for a in self.aggs)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        aggs = ", ".join(repr(a) for a in self.aggs)
        return f"γ {', '.join(self.keys)}; {aggs}"


def scans_of(root: PlanNode) -> list[Scan]:
    """All scan leaves of the plan, in preorder."""
    return [n for n in root.walk() if isinstance(n, Scan)]


def validate_plan(root: PlanNode) -> None:
    """Re-run structural checks over the whole tree (defensive)."""
    for node in root.walk():
        # Constructors validate; touching .columns re-validates cheaply.
        _ = node.columns
