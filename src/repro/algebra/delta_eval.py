"""Index-driven ("diff-driven loop") evaluation of plan fragments.

When an i-diff propagation rule joins a diff with a subview
(``Input_post ⋉Ī ∆``), a real DBMS runs a diff-driven loop plan: for every
diff tuple, probe base-table indexes and read only the matching rows
(paper Section 6 / Appendix A — this is what the cost parameter *a*
measures).  :func:`fetch` implements exactly that: it pushes a set of key
*bindings* down the plan, turning scans into index lookups, and only falls
back to counted full scans when no binding can be pushed.

A node that has a materialized cache (or is the view itself) is read from
its cache table instead of being recomputed — that is how intermediate
caches cut base-table accesses (paper Section 4).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..errors import PlanError
from ..expr import equi_join_pairs, evaluate as eval_expr, matches
from ..expr.ast import Col
from ..obs import spans as obs
from ..storage import Database, Table
from .evaluate import aggregate_rows, project_rows
from .plan import (
    AntiJoin,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Scan,
    SemiJoin,
    Select,
    UnionAll,
)
from .relation import Relation


class Bindings:
    """A set of distinct value tuples for a tuple of attributes."""

    __slots__ = ("attrs", "values")

    def __init__(self, attrs: Sequence[str], values: Sequence[tuple]):
        self.attrs = tuple(attrs)
        # Deduplicate while preserving order (deterministic costs).
        seen: set[tuple] = set()
        vals: list[tuple] = []
        for v in values:
            v = tuple(v)
            if v not in seen:
                seen.add(v)
                vals.append(v)
        self.values = vals

    def __len__(self) -> int:
        return len(self.values)

    def is_empty(self) -> bool:
        return not self.values

    def project(self, attrs: Sequence[str]) -> "Bindings":
        """Bindings narrowed to a subset of the attributes."""
        idx = [self.attrs.index(a) for a in attrs]
        return Bindings(attrs, [tuple(v[i] for i in idx) for v in self.values])

    def value_set(self) -> frozenset[tuple]:
        return frozenset(self.values)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"Bindings({self.attrs}, {len(self.values)} values)"


CacheMap = Mapping[int, Table]


def fetch(
    node: PlanNode,
    db: Database,
    bindings: Optional[Bindings] = None,
    caches: Optional[CacheMap] = None,
) -> Relation:
    """Rows of the subview at *node* matching *bindings* (all rows if None).

    Reads from *caches* (node_id -> materialized table) when available,
    otherwise recomputes through indexes on the base tables of *db*.
    """
    recorder = obs.current_recorder()
    if recorder is None:
        return _fetch(node, db, bindings, caches)
    with recorder.span(
        f"fetch:{node.label()}",
        kind="plan_op",
        counters=db.counters,
        op=type(node).__name__,
        node_id=node.node_id,
        cached=bool(caches and node.node_id in caches),
        bindings=len(bindings) if bindings is not None else None,
    ) as sp:
        out = _fetch(node, db, bindings, caches)
        sp.set(rows_out=len(out.rows))
        return out


def _fetch(
    node: PlanNode,
    db: Database,
    bindings: Optional[Bindings] = None,
    caches: Optional[CacheMap] = None,
) -> Relation:
    if bindings is not None:
        unknown = set(bindings.attrs) - set(node.columns)
        if unknown:
            raise PlanError(
                f"bindings reference columns {sorted(unknown)} not produced "
                f"by {node.label()}"
            )
        if bindings.is_empty():
            return Relation(node.columns, [])
    cached = caches.get(node.node_id) if caches else None
    if cached is not None:
        return _fetch_from_table(cached, node.columns, bindings)
    if isinstance(node, Scan):
        return _fetch_from_table(db.table(node.table), node.columns, bindings)
    if isinstance(node, Select):
        child = fetch(node.child, db, bindings, caches)
        pos = child.positions
        return Relation(
            node.columns, [r for r in child.rows if matches(node.predicate, pos, r)]
        )
    if isinstance(node, Project):
        return _fetch_project(node, db, bindings, caches)
    if isinstance(node, Join):
        return _fetch_join(node, db, bindings, caches)
    if isinstance(node, AntiJoin):
        return _fetch_semi_like(node, db, bindings, caches, negated=True)
    if isinstance(node, SemiJoin):
        return _fetch_semi_like(node, db, bindings, caches, negated=False)
    if isinstance(node, UnionAll):
        return _fetch_union(node, db, bindings, caches)
    if isinstance(node, GroupBy):
        return _fetch_groupby(node, db, bindings, caches)
    raise PlanError(f"cannot fetch from plan node {node!r}")


def _fetch_from_table(
    table: Table, columns: tuple[str, ...], bindings: Optional[Bindings]
) -> Relation:
    """Counted reads from a stored table (base table, cache, or view)."""
    reorder = tuple(columns) != table.schema.columns
    if bindings is None:
        rows = list(table.scan())
    else:
        rows = []
        for value in bindings.values:
            rows.extend(table.lookup(bindings.attrs, value))
    if reorder:
        idx = table.schema.positions(columns)
        rows = [tuple(r[i] for i in idx) for r in rows]
    return Relation(columns, rows)


def _filter_by_bindings(rel: Relation, bindings: Bindings) -> Relation:
    idx = [rel.position(a) for a in bindings.attrs]
    allowed = bindings.value_set()
    return Relation(
        rel.columns, [r for r in rel.rows if tuple(r[i] for i in idx) in allowed]
    )


def _fetch_project(
    node: Project, db: Database, bindings: Optional[Bindings], caches: Optional[CacheMap]
) -> Relation:
    exprs = [e for _, e in node.items]
    if bindings is None:
        child = fetch(node.child, db, None, caches)
    else:
        # Push bindings down only when every bound attribute is a bare
        # column passthrough; otherwise fetch-all and filter (counted).
        passthrough: dict[str, str] = {
            name: expr.name for name, expr in node.items if isinstance(expr, Col)
        }
        if all(a in passthrough for a in bindings.attrs):
            child_attrs = tuple(passthrough[a] for a in bindings.attrs)
            child = fetch(node.child, db, Bindings(child_attrs, bindings.values), caches)
        else:
            child = fetch(node.child, db, None, caches)
            return _filter_by_bindings(project_rows(node, child), bindings)
    return project_rows(node, child)


def _fetch_join(
    node: Join, db: Database, bindings: Optional[Bindings], caches: Optional[CacheMap]
) -> Relation:
    if bindings is None:
        left = fetch(node.left, db, None, caches)
        return _probe_and_combine(left, node, db, caches, final_bindings=None)
    left_cols = set(node.left.columns)
    right_cols = set(node.right.columns)
    attrs_left = tuple(a for a in bindings.attrs if a in left_cols)
    attrs_right = tuple(a for a in bindings.attrs if a in right_cols)
    unknown = set(bindings.attrs) - left_cols - right_cols
    if unknown:
        raise PlanError(f"bindings on unknown join columns {sorted(unknown)}")
    if attrs_left:
        left = fetch(node.left, db, bindings.project(attrs_left), caches)
        final = bindings if attrs_right else None
        return _probe_and_combine(left, node, db, caches, final_bindings=final)
    # Bindings touch only the right side: drive from the right.
    right = fetch(node.right, db, bindings.project(attrs_right), caches)
    return _probe_and_combine_reversed(right, node, db, caches)


def _probe_and_combine(
    left: Relation,
    node: Join,
    db: Database,
    caches: Optional[CacheMap],
    final_bindings: Optional[Bindings],
) -> Relation:
    """Probe the right child for each left row (batched by probe value)."""
    out_columns = node.columns
    out_positions = {c: i for i, c in enumerate(out_columns)}
    if node.condition is None:
        right = fetch(node.right, db, None, caches)
        rows = [lr + rr for lr in left.rows for rr in right.rows]
        result = Relation(out_columns, rows)
        return _filter_by_bindings(result, final_bindings) if final_bindings else result
    pairs, residual = equi_join_pairs(
        node.condition, node.left.columns, node.right.columns
    )
    rows: list[tuple] = []
    if pairs:
        lpos = [left.position(a) for a, _ in pairs]
        right_attrs = tuple(b for _, b in pairs)
        probe_values = [tuple(lr[i] for i in lpos) for lr in left.rows]
        right = fetch(node.right, db, Bindings(right_attrs, probe_values), caches)
        rpos = [right.position(b) for b in right_attrs]
        buckets: dict[tuple, list[tuple]] = {}
        for rr in right.rows:
            key = tuple(rr[i] for i in rpos)
            if None in key:
                continue  # SQL: NULL never equi-joins
            buckets.setdefault(key, []).append(rr)
        for lr, probe in zip(left.rows, probe_values):
            for rr in buckets.get(probe, ()):
                combined = lr + rr
                if matches(residual, out_positions, combined):
                    rows.append(combined)
    else:
        right = fetch(node.right, db, None, caches)
        for lr in left.rows:
            for rr in right.rows:
                combined = lr + rr
                if matches(node.condition, out_positions, combined):
                    rows.append(combined)
    result = Relation(out_columns, rows)
    return _filter_by_bindings(result, final_bindings) if final_bindings else result


def _probe_and_combine_reversed(
    right: Relation, node: Join, db: Database, caches: Optional[CacheMap]
) -> Relation:
    """Drive the join from the right child (bindings bound only there)."""
    out_columns = node.columns
    out_positions = {c: i for i, c in enumerate(out_columns)}
    if node.condition is None:
        left = fetch(node.left, db, None, caches)
        return Relation(out_columns, [lr + rr for lr in left.rows for rr in right.rows])
    pairs, residual = equi_join_pairs(
        node.condition, node.left.columns, node.right.columns
    )
    rows: list[tuple] = []
    if pairs:
        rpos = [right.position(b) for _, b in pairs]
        left_attrs = tuple(a for a, _ in pairs)
        probe_values = [tuple(rr[i] for i in rpos) for rr in right.rows]
        left = fetch(node.left, db, Bindings(left_attrs, probe_values), caches)
        lpos = [left.position(a) for a in left_attrs]
        buckets: dict[tuple, list[tuple]] = {}
        for lr in left.rows:
            key = tuple(lr[i] for i in lpos)
            if None in key:
                continue  # SQL: NULL never equi-joins
            buckets.setdefault(key, []).append(lr)
        for rr, probe in zip(right.rows, probe_values):
            for lr in buckets.get(probe, ()):
                combined = lr + rr
                if matches(residual, out_positions, combined):
                    rows.append(combined)
    else:
        left = fetch(node.left, db, None, caches)
        for lr in left.rows:
            for rr in right.rows:
                combined = lr + rr
                if matches(node.condition, out_positions, combined):
                    rows.append(combined)
    return Relation(out_columns, rows)


def _fetch_semi_like(
    node,
    db: Database,
    bindings: Optional[Bindings],
    caches: Optional[CacheMap],
    negated: bool,
) -> Relation:
    left_bindings = None
    if bindings is not None:
        unknown = set(bindings.attrs) - set(node.left.columns)
        if unknown:
            raise PlanError(f"bindings on unknown (anti)semijoin columns {sorted(unknown)}")
        left_bindings = bindings
    left = fetch(node.left, db, left_bindings, caches)
    pairs, residual = equi_join_pairs(
        node.condition, node.left.columns, node.right.columns
    )
    combined_positions = {
        c: i for i, c in enumerate(node.left.columns + node.right.columns)
    }
    rows: list[tuple] = []
    if pairs:
        lpos = [left.position(a) for a, _ in pairs]
        right_attrs = tuple(b for _, b in pairs)
        probe_values = [tuple(lr[i] for i in lpos) for lr in left.rows]
        right = fetch(node.right, db, Bindings(right_attrs, probe_values), caches)
        rpos = [right.position(b) for b in right_attrs]
        buckets: dict[tuple, list[tuple]] = {}
        for rr in right.rows:
            key = tuple(rr[i] for i in rpos)
            if None in key:
                continue  # SQL: NULL never equi-joins
            buckets.setdefault(key, []).append(rr)
        for lr, probe in zip(left.rows, probe_values):
            candidates = buckets.get(probe, ())
            matched = any(
                matches(residual, combined_positions, lr + rr) for rr in candidates
            )
            if matched != negated:
                rows.append(lr)
    else:
        right = fetch(node.right, db, None, caches)
        for lr in left.rows:
            matched = any(
                matches(node.condition, combined_positions, lr + rr)
                for rr in right.rows
            )
            if matched != negated:
                rows.append(lr)
    return Relation(node.columns, rows)


def _fetch_union(
    node: UnionAll, db: Database, bindings: Optional[Bindings], caches: Optional[CacheMap]
) -> Relation:
    branch = node.branch_column
    if bindings is None or branch not in bindings.attrs:
        left = fetch(node.left, db, bindings, caches)
        right = fetch(node.right, db, bindings, caches)
        rows = [r + (0,) for r in left.rows]
        rows.extend(r + (1,) for r in right.rows)
        return Relation(node.columns, rows)
    # Split bindings by branch value and route each part to its child.
    b_idx = bindings.attrs.index(branch)
    rest_attrs = tuple(a for a in bindings.attrs if a != branch)
    rest_idx = [i for i, a in enumerate(bindings.attrs) if a != branch]
    by_branch: dict[int, list[tuple]] = {0: [], 1: []}
    for value in bindings.values:
        b = value[b_idx]
        if b in by_branch:
            by_branch[b].append(tuple(value[i] for i in rest_idx))
    rows = []
    for b, child in ((0, node.left), (1, node.right)):
        if not by_branch[b]:
            continue
        if rest_attrs:
            part = fetch(child, db, Bindings(rest_attrs, by_branch[b]), caches)
        else:
            part = fetch(child, db, None, caches)
        rows.extend(r + (b,) for r in part.rows)
    return Relation(node.columns, rows)


def _fetch_groupby(
    node: GroupBy, db: Database, bindings: Optional[Bindings], caches: Optional[CacheMap]
) -> Relation:
    if bindings is not None and set(bindings.attrs) <= set(node.keys):
        child = fetch(node.child, db, bindings, caches)
        return aggregate_rows(child, node.keys, node.aggs)
    child = fetch(node.child, db, None, caches)
    result = aggregate_rows(child, node.keys, node.aggs)
    if bindings is not None:
        result = _filter_by_bindings(result, bindings)
    return result
