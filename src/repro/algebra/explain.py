"""Human-readable plan rendering (EXPLAIN-style)."""

from __future__ import annotations

from .plan import PlanNode


def explain_plan(root: PlanNode, show_ids: bool = True) -> str:
    """Indented operator-tree rendering of *root*.

    When Pass 1 has run (``node_id >= 0``), node identifiers and inferred
    ID attributes are included — the annotations of the paper's Figure 5a.
    """
    lines: list[str] = []

    def visit(node: PlanNode, depth: int) -> None:
        pad = "  " * depth
        annotated = node.node_id >= 0
        suffix = ""
        if show_ids and annotated:
            ids = ",".join(node.ids)
            suffix = f"   [n{node.node_id}  ids: {ids}]"
        lines.append(f"{pad}{node.label()}{suffix}")
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)
