"""Human-readable plan rendering (EXPLAIN / EXPLAIN ANALYZE style)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from .plan import PlanNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..storage import Database


def explain_plan(root: PlanNode, show_ids: bool = True) -> str:
    """Indented operator-tree rendering of *root*.

    When Pass 1 has run (``node_id >= 0``), node identifiers and inferred
    ID attributes are included — the annotations of the paper's Figure 5a.
    """
    lines: list[str] = []

    def visit(node: PlanNode, depth: int) -> None:
        pad = "  " * depth
        annotated = node.node_id >= 0
        suffix = ""
        if show_ids and annotated:
            ids = ",".join(node.ids)
            suffix = f"   [n{node.node_id}  ids: {ids}]"
        lines.append(f"{pad}{node.label()}{suffix}")
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def explain_analyze(root: PlanNode, db: "Database", show_ids: bool = True) -> str:
    """EXPLAIN ANALYZE: execute the plan and annotate each operator with
    its *actual* output row count and (cumulative) access costs.

    The plan is evaluated once under a private span recorder; each
    operator span contributes ``rows`` plus the lookups/reads/writes it
    (and its subtree) incurred — the same per-operator attribution the
    maintenance-time traces carry.
    """
    from ..obs import spans as obs
    from .evaluate import evaluate_plan

    recorder = obs.SpanRecorder()
    with obs.recording(recorder):
        evaluate_plan(root, db)
    stats: dict[int, tuple[int, object]] = {}
    for sp in recorder.find(kind="plan_op"):
        node_id = sp.attrs.get("node_id")
        if node_id is not None and node_id not in stats:
            stats[node_id] = (sp.attrs.get("rows_out", 0), sp.counts)
    lines: list[str] = []

    def visit(node: PlanNode, depth: int) -> None:
        pad = "  " * depth
        annotated = node.node_id >= 0
        suffix = ""
        if show_ids and annotated:
            ids = ",".join(node.ids)
            suffix = f"   [n{node.node_id}  ids: {ids}]"
        actual = stats.get(node.node_id)
        if actual is not None:
            rows, counts = actual
            detail = f"rows={rows}"
            if counts is not None:
                detail += (
                    f" lookups={counts.index_lookups} reads={counts.tuple_reads}"
                    f" writes={counts.tuple_writes} cost={counts.total}"
                )
            suffix += f"   (actual {detail})"
        lines.append(f"{pad}{node.label()}{suffix}")
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)
