"""Relational algebra: plans, full evaluation, and index-driven evaluation."""

from .builder import (
    difference,
    equi_join,
    group_by,
    natural_join,
    project_columns,
    rename,
    scan,
    where,
)
from .delta_eval import Bindings, fetch
from .explain import explain_plan
from .evaluate import aggregate_rows, evaluate_plan, materialize
from .plan import (
    AGG_FUNCS,
    ASSOCIATIVE_AGGS,
    AggSpec,
    AntiJoin,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Scan,
    SemiJoin,
    Select,
    UnionAll,
    scans_of,
    validate_plan,
)
from .relation import Relation

__all__ = [
    "AGG_FUNCS",
    "ASSOCIATIVE_AGGS",
    "AggSpec",
    "AntiJoin",
    "Bindings",
    "GroupBy",
    "Join",
    "PlanNode",
    "Project",
    "Relation",
    "Scan",
    "Select",
    "SemiJoin",
    "UnionAll",
    "aggregate_rows",
    "difference",
    "equi_join",
    "evaluate_plan",
    "explain_plan",
    "fetch",
    "group_by",
    "materialize",
    "natural_join",
    "project_columns",
    "rename",
    "scan",
    "scans_of",
    "validate_plan",
    "where",
]
