"""Full (non-incremental) evaluation of algebra plans.

Used to materialize views and caches at definition time, by the recompute
baseline, and as the correctness oracle in tests.  Base-table rows read
during evaluation are counted through the table's counters; intermediate
results are pipelined and free, matching the paper's cost model.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import PlanError
from ..expr import equi_join_pairs, evaluate as eval_expr, matches
from ..obs import spans as obs
from ..storage import Database, Table, TableSchema
from .plan import (
    AggSpec,
    AntiJoin,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Scan,
    SemiJoin,
    Select,
    UnionAll,
)
from .relation import Relation


def evaluate_plan(node: PlanNode, db: Database) -> Relation:
    """Evaluate the subview rooted at *node* against *db*.

    With a span recorder installed, each plan operator gets a span with
    its actual output row count and the (cumulative) access-count delta
    it incurred — the raw material of ``explain --analyze``.
    """
    recorder = obs.current_recorder()
    if recorder is None:
        return _evaluate_plan(node, db)
    with recorder.span(
        node.label(),
        kind="plan_op",
        counters=db.counters,
        op=type(node).__name__,
        node_id=node.node_id,
    ) as sp:
        out = _evaluate_plan(node, db)
        sp.set(rows_out=len(out.rows))
        return out


def _evaluate_plan(node: PlanNode, db: Database) -> Relation:
    if isinstance(node, Scan):
        table = db.table(node.table)
        return Relation(node.columns, list(table.scan()))
    if isinstance(node, Select):
        child = evaluate_plan(node.child, db)
        pos = child.positions
        rows = [r for r in child.rows if matches(node.predicate, pos, r)]
        return Relation(node.columns, rows)
    if isinstance(node, Project):
        child = evaluate_plan(node.child, db)
        return project_rows(node, child)
    if isinstance(node, Join):
        return _evaluate_join(node, db)
    if isinstance(node, AntiJoin):
        return _evaluate_semi_like(node, db, negated=True)
    if isinstance(node, SemiJoin):
        return _evaluate_semi_like(node, db, negated=False)
    if isinstance(node, UnionAll):
        left = evaluate_plan(node.left, db)
        right = evaluate_plan(node.right, db)
        rows = [r + (0,) for r in left.rows]
        rows.extend(r + (1,) for r in right.rows)
        return Relation(node.columns, rows)
    if isinstance(node, GroupBy):
        child = evaluate_plan(node.child, db)
        return aggregate_rows(child, node.keys, node.aggs)
    raise PlanError(f"cannot evaluate plan node {node!r}")


def project_rows(node: Project, child: Relation) -> Relation:
    """Apply a projection to an evaluated child, with a positional fast
    path when every item is a bare column reference (the common case —
    renames and the natural-join lowering)."""
    from ..expr import Col

    pos = child.positions
    if all(isinstance(e, Col) for _, e in node.items):
        idx = [pos[e.name] for _, e in node.items]
        rows = [tuple(r[i] for i in idx) for r in child.rows]
        return Relation(node.columns, rows)
    exprs = [e for _, e in node.items]
    rows = [tuple(eval_expr(e, pos, r) for e in exprs) for r in child.rows]
    return Relation(node.columns, rows)


def _evaluate_join(node: Join, db: Database) -> Relation:
    left = evaluate_plan(node.left, db)
    right = evaluate_plan(node.right, db)
    out_columns = node.columns
    if node.condition is None:
        rows = [lr + rr for lr in left.rows for rr in right.rows]
        return Relation(out_columns, rows)
    pairs, residual = equi_join_pairs(node.condition, left.columns, right.columns)
    rows: list[tuple] = []
    if pairs:
        lpos = [left.position(a) for a, _ in pairs]
        rpos = [right.position(b) for _, b in pairs]
        buckets: dict[tuple, list[tuple]] = {}
        for rr in right.rows:
            key = tuple(rr[i] for i in rpos)
            if None in key:
                continue  # SQL: NULL never equi-joins
            buckets.setdefault(key, []).append(rr)
        out_positions = {c: i for i, c in enumerate(out_columns)}
        for lr in left.rows:
            for rr in buckets.get(tuple(lr[i] for i in lpos), ()):
                combined = lr + rr
                if matches(residual, out_positions, combined):
                    rows.append(combined)
    else:
        out_positions = {c: i for i, c in enumerate(out_columns)}
        for lr in left.rows:
            for rr in right.rows:
                combined = lr + rr
                if matches(node.condition, out_positions, combined):
                    rows.append(combined)
    return Relation(out_columns, rows)


def _evaluate_semi_like(node, db: Database, negated: bool) -> Relation:
    left = evaluate_plan(node.left, db)
    right = evaluate_plan(node.right, db)
    pairs, residual = equi_join_pairs(node.condition, left.columns, right.columns)
    combined_positions = {
        c: i for i, c in enumerate(left.columns + right.columns)
    }
    rows: list[tuple] = []
    if pairs:
        lpos = [left.position(a) for a, _ in pairs]
        rpos = [right.position(b) for _, b in pairs]
        buckets: dict[tuple, list[tuple]] = {}
        for rr in right.rows:
            key = tuple(rr[i] for i in rpos)
            if None in key:
                continue  # SQL: NULL never equi-joins
            buckets.setdefault(key, []).append(rr)
        for lr in left.rows:
            candidates = buckets.get(tuple(lr[i] for i in lpos), ())
            matched = any(
                matches(residual, combined_positions, lr + rr) for rr in candidates
            )
            if matched != negated:
                rows.append(lr)
    else:
        for lr in left.rows:
            matched = any(
                matches(node.condition, combined_positions, lr + rr)
                for rr in right.rows
            )
            if matched != negated:
                rows.append(lr)
    return Relation(node.columns, rows)


def _lt(a, b) -> bool:
    """Total ``a < b`` for min/max: mixed-type values (which Python 3
    refuses to compare) fall back to the same deterministic type-aware
    order :func:`repro.storage.table.sort_rows` uses, instead of raising
    ``TypeError`` mid-aggregation."""
    try:
        return a < b
    except TypeError:
        return (str(type(a)), repr(a)) < (str(type(b)), repr(b))


class _Accumulator:
    """Streaming accumulation of one group's aggregates.

    SQL NULL semantics: ``NULL`` is invisible to every aggregate except
    ``count(*)`` — it never enters a sum, a comparison, or a ``count(col)``.
    ``sum``/``avg`` additionally keep their own *numeric* count, so a
    stray non-numeric value cannot leave ``counts`` and ``sums`` out of
    step (which would silently skew ``avg`` and resurrect an all-NULL
    ``sum`` as 0).
    """

    __slots__ = ("sums", "counts", "nums", "mins", "maxs", "n")

    def __init__(self, n_aggs: int):
        self.sums = [0] * n_aggs
        self.counts = [0] * n_aggs
        self.nums = [0] * n_aggs
        self.mins: list = [None] * n_aggs
        self.maxs: list = [None] * n_aggs
        self.n = 0

    def add(self, values: list) -> None:
        self.n += 1
        for i, v in enumerate(values):
            if v is None:
                continue
            self.counts[i] += 1
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                self.sums[i] += v
                self.nums[i] += 1
            if self.mins[i] is None or _lt(v, self.mins[i]):
                self.mins[i] = v
            if self.maxs[i] is None or _lt(self.maxs[i], v):
                self.maxs[i] = v

    def result(self, agg: AggSpec, i: int):
        if agg.func == "sum":
            return self.sums[i] if self.nums[i] else None
        if agg.func == "count":
            return self.n if agg.arg is None else self.counts[i]
        if agg.func == "avg":
            return self.sums[i] / self.nums[i] if self.nums[i] else None
        if agg.func == "min":
            return self.mins[i]
        if agg.func == "max":
            return self.maxs[i]
        raise PlanError(f"unknown aggregate {agg.func!r}")


def aggregate_rows(
    child: Relation, keys: tuple[str, ...], aggs: tuple[AggSpec, ...]
) -> Relation:
    """Hash-aggregate *child* by *keys* (pipelined: no storage accesses)."""
    key_pos = [child.position(k) for k in keys]
    pos = child.positions
    groups: dict[tuple, _Accumulator] = {}
    for row in child.rows:
        group = tuple(row[i] for i in key_pos)
        acc = groups.get(group)
        if acc is None:
            acc = _Accumulator(len(aggs))
            groups[group] = acc
        values = [
            eval_expr(a.arg, pos, row) if a.arg is not None else None for a in aggs
        ]
        acc.add(values)
    out_columns = keys + tuple(a.name for a in aggs)
    rows = [
        group + tuple(acc.result(a, i) for i, a in enumerate(aggs))
        for group, acc in groups.items()
    ]
    return Relation(out_columns, rows)


def materialize(
    node: PlanNode,
    db: Database,
    name: str,
    key: Iterable[str] | None = None,
) -> Table:
    """Evaluate *node* and store the result as a keyed table.

    *key* defaults to the node's inferred IDs (Pass 1 must have run).
    The materialized table shares the database's counters but is **not**
    registered in its catalog (views/caches live beside base tables).
    """
    key = tuple(key) if key is not None else tuple(node.ids)
    if not key:
        raise PlanError(
            f"cannot materialize {name!r}: no key; run ID inference first"
        )
    result = evaluate_plan(node, db)
    schema = TableSchema(name, result.columns, key)
    table = Table(schema, counters=db.counters, auto_index=db.auto_index)
    table.load(result.rows)
    return table
