"""Convenience constructors for algebra plans.

These helpers take care of the renaming discipline the raw nodes require
(joins demand disjoint column names) and provide the SQL-flavoured
operations — natural join, difference — as compositions of the core
QSPJADU operators.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import PlanError
from ..expr import Expr, all_of, col
from ..storage import Database
from .plan import AggSpec, AntiJoin, GroupBy, Join, PlanNode, Project, Scan, Select


def scan(db: Database, table: str, alias: str | None = None) -> PlanNode:
    """Scan of a base table; *alias* prefixes columns as ``alias_column``.

    Aliasing is needed for self-joins (each alias gets its own scan
    operator; paper Section 4, footnote 5).
    """
    node: PlanNode = Scan(db.table(table).schema, alias=alias)
    if alias is not None and alias != table:
        items = [(f"{alias}_{c}", col(c)) for c in node.columns]
        node = Project(node, items)
    return node


def rename(node: PlanNode, mapping: dict[str, str]) -> Project:
    """Project that renames columns per *mapping*, passing others through."""
    items = [(mapping.get(c, c), col(c)) for c in node.columns]
    return Project(node, items)


def project_columns(node: PlanNode, columns: Sequence[str]) -> Project:
    """Plain projection onto *columns* (bare passthrough)."""
    return Project(node, [(c, col(c)) for c in columns])


def natural_join(left: PlanNode, right: PlanNode) -> PlanNode:
    """Join on all shared column names, keeping a single copy of each.

    Implemented as rename-join-project over the core operators, exactly how
    a planner would lower SQL's NATURAL JOIN.
    """
    shared = [c for c in left.columns if c in set(right.columns)]
    if not shared:
        raise PlanError(
            f"natural join has no shared columns between {left.columns} "
            f"and {right.columns}"
        )
    mapping = {c: f"__rhs_{c}" for c in shared}
    renamed_right = rename(right, mapping)
    condition = all_of(*[col(c).eq(col(mapping[c])) for c in shared])
    joined = Join(left, renamed_right, condition)
    keep = list(left.columns) + [c for c in right.columns if c not in set(shared)]
    return project_columns(joined, keep)


def equi_join(
    left: PlanNode, right: PlanNode, on: Sequence[tuple[str, str]]
) -> Join:
    """Join on explicit (left_column, right_column) equality pairs."""
    condition = all_of(*[col(a).eq(col(b)) for a, b in on])
    return Join(left, right, condition)


def difference(left: PlanNode, right: PlanNode) -> AntiJoin:
    """Bag-set difference ``left EXCEPT right`` via antisemijoin.

    Both inputs must have identical column tuples (the paper: difference is
    a special case of antisemijoin, footnote 1).
    """
    if left.columns != right.columns:
        raise PlanError(
            f"difference requires identical schemas: {left.columns} vs {right.columns}"
        )
    mapping = {c: f"__rhs_{c}" for c in right.columns}
    renamed = rename(right, mapping)
    condition = all_of(*[col(c).eq(col(mapping[c])) for c in left.columns])
    return AntiJoin(left, renamed, condition)


def where(node: PlanNode, predicate: Expr) -> Select:
    return Select(node, predicate)


def group_by(
    node: PlanNode,
    keys: Sequence[str],
    aggs: Sequence[tuple[str, Expr | None, str]] | Sequence[AggSpec],
) -> GroupBy:
    """Grouping; *aggs* items are AggSpec or (func, arg, name) triples."""
    specs = [
        a if isinstance(a, AggSpec) else AggSpec(a[0], a[1], a[2]) for a in aggs
    ]
    return GroupBy(node, tuple(keys), tuple(specs))
