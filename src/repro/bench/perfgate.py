"""CI perf-regression gate over the ``BENCH_*.json`` envelopes.

The benchmarks serialize the paper's cost metric — per-phase access
counts — which is **deterministic** for a fixed configuration: the same
∆-script over the same data performs the same lookups, reads and
writes on every machine.  So the gate can hold those to *exact*
equality against a committed baseline (``benchmarks/baselines/``): any
drift is a real plan/executor change, intended or not.  Wall-clock
fields are machine-dependent noise and only gate with a generous
one-sided slack factor, as a canary for gross slowdowns.

Wired in :mod:`benchmarks.conftest`: when ``REPRO_PERF_GATE`` is set,
``write_bench_json`` compares the fresh payload against the baseline
and fails the benchmark on any violation (``make perf-gate``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

#: Default one-sided slack for wall-clock fields: fresh may be up to
#: this factor above baseline before the gate trips.  Overridable via
#: the ``REPRO_PERF_GATE_SLACK`` environment variable.
DEFAULT_WALL_SLACK = 3.0

#: Wall times below this many seconds never gate — at that scale the
#: measurement is dominated by scheduler noise, not by the benchmark.
WALL_FLOOR_SECONDS = 0.05

#: Keys holding machine-dependent timings (slack-gated, not exact).
_WALL_KEYS = frozenset({"wall_seconds"})

#: Keys describing the machine a payload was produced on, or ratios
#: derived from wall clocks — incomparable across hosts, never gated.
_MACHINE_KEYS = frozenset({"effective_cpus", "wall_speedup"})

#: Top-level envelope keys that are volatile by construction — run
#: provenance (git SHA, timestamp) and the final metrics-registry
#: snapshot (whose wall-clock histograms and incidental counters change
#: shape run to run).  Skipped in both directions; the deterministic
#: telemetry a benchmark wants gated belongs in its ``data`` payload.
_ENVELOPE_VOLATILE = frozenset({"provenance", "metrics"})

#: Wall-clock histogram dict fields compared with the slack factor;
#: everything else value-ish (buckets, zero_count, min) is skipped —
#: bucket boundaries move with the machine, and smaller/faster is fine.
_WALL_HIST_SLACK_KEYS = ("sum", "max", "mean", "p50", "p95", "p99")

#: Wall-clock histogram dict fields still held exactly: the observation
#: *count* is a workload fact (rounds run, entries applied), not a
#: timing.
_WALL_HIST_EXACT_KEYS = ("type", "unit", "count")


def _is_wall_hist(value: object) -> bool:
    """A serialized LogHistogram whose unit marks it machine-dependent."""
    return (
        isinstance(value, dict)
        and value.get("type") == "loghist"
        and value.get("unit") == "seconds"
    )


def _gate_wall_hist(
    baseline: dict, fresh: dict, wall_slack: float, path: str
) -> list[str]:
    violations: list[str] = []
    for key in _WALL_HIST_EXACT_KEYS:
        if baseline.get(key) != fresh.get(key):
            violations.append(
                f"{path}.{key}: {baseline.get(key)!r} -> {fresh.get(key)!r}"
            )
    for key in _WALL_HIST_SLACK_KEYS:
        b, f = baseline.get(key), fresh.get(key)
        if b is None or f is None:
            continue
        violations.extend(_gate_wall(b, f, wall_slack, f"{path}.{key}"))
    return violations


def compare_payloads(
    baseline: object,
    fresh: object,
    wall_slack: float = DEFAULT_WALL_SLACK,
    _path: str = "$",
) -> list[str]:
    """Diff a fresh benchmark payload against its baseline.

    Returns a list of human-readable violations (empty = gate passes).
    Numbers compare exactly except under a wall-clock key; shape
    mismatches (missing/extra keys, list lengths, type changes) are
    violations too — a benchmark that silently stops reporting a metric
    must not pass the gate.
    """
    violations: list[str] = []
    if _is_wall_hist(baseline) and _is_wall_hist(fresh):
        return _gate_wall_hist(baseline, fresh, wall_slack, _path)
    if isinstance(baseline, dict) and isinstance(fresh, dict):
        for key in sorted(baseline.keys() | fresh.keys()):
            here = f"{_path}.{key}"
            if _path == "$" and key in _ENVELOPE_VOLATILE:
                continue
            if key in _MACHINE_KEYS:
                continue
            if key not in fresh:
                violations.append(f"{here}: missing from fresh payload")
            elif key not in baseline:
                violations.append(f"{here}: not in baseline (refresh baselines?)")
            elif key in _WALL_KEYS:
                violations.extend(
                    _gate_wall(baseline[key], fresh[key], wall_slack, here)
                )
            else:
                violations.extend(
                    compare_payloads(baseline[key], fresh[key], wall_slack, here)
                )
    elif isinstance(baseline, list) and isinstance(fresh, list):
        if len(baseline) != len(fresh):
            violations.append(
                f"{_path}: length {len(baseline)} -> {len(fresh)}"
            )
        for i, (b, f) in enumerate(zip(baseline, fresh)):
            violations.extend(
                compare_payloads(b, f, wall_slack, f"{_path}[{i}]")
            )
    elif isinstance(baseline, bool) or isinstance(fresh, bool) or not (
        isinstance(baseline, (int, float)) and isinstance(fresh, (int, float))
    ):
        if baseline != fresh:
            violations.append(f"{_path}: {baseline!r} -> {fresh!r}")
    elif baseline != fresh:
        violations.append(
            f"{_path}: access/count metric changed {baseline} -> {fresh}"
        )
    return violations


def _gate_wall(
    baseline: object, fresh: object, wall_slack: float, path: str
) -> list[str]:
    if not isinstance(baseline, (int, float)) or not isinstance(
        fresh, (int, float)
    ):
        return [f"{path}: non-numeric wall time {baseline!r} -> {fresh!r}"]
    allowed = wall_slack * max(float(baseline), WALL_FLOOR_SECONDS)
    if float(fresh) > allowed:
        return [
            f"{path}: wall time {fresh:.4f}s exceeds "
            f"{wall_slack:g}x baseline ({baseline:.4f}s; allowed {allowed:.4f}s)"
        ]
    return []


def baseline_path(name: str, baselines_dir: Path) -> Path:
    return baselines_dir / f"BENCH_{name}.json"


def load_baseline(name: str, baselines_dir: Path) -> Optional[dict]:
    path = baseline_path(name, baselines_dir)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def run_gate(
    name: str,
    fresh_payload: dict,
    baselines_dir: Path,
    wall_slack: float = DEFAULT_WALL_SLACK,
) -> list[str]:
    """Gate one benchmark's fresh payload; list of violations.

    A missing baseline is itself a violation: every benchmark in the
    gated set must have a committed reference, otherwise the gate would
    silently wave new benchmarks through.
    """
    baseline = load_baseline(name, baselines_dir)
    if baseline is None:
        return [
            f"no committed baseline {baseline_path(name, baselines_dir)}; "
            "copy the fresh BENCH json there to (re)baseline"
        ]
    return compare_payloads(baseline, fresh_payload, wall_slack)
