"""Rendering of benchmark results: paper-shaped plain text tables plus
JSON-serializable dict forms carrying full per-phase access breakdowns
(the machine-readable side of the perf trajectory, ``BENCH_*.json``)."""

from __future__ import annotations

from typing import Iterable, Sequence

from .harness import SweepPoint, SystemResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Monospace table with per-column widths."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rendered
    ]
    return "\n".join([line, rule] + body)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_sweep(
    title: str,
    parameter_name: str,
    points: Sequence[SweepPoint],
    systems: Sequence[str],
    phases: Sequence[str] = (),
) -> str:
    """A Figure 12 style sweep table: one row per parameter value, one
    column block per system (total cost + optional phase breakdown),
    ending with the ID-over-tuple speedup."""
    headers = [parameter_name]
    for system in systems:
        headers.append(f"{system} cost")
        headers.extend(f"{system} {p}" for p in phases)
    headers.append("speedup")
    rows = []
    for point in points:
        row: list[object] = [point.parameter]
        for system in systems:
            result = point.results[system]
            row.append(result.total_cost)
            row.extend(result.phase(p) for p in phases)
        row.append(point.speedup())
        rows.append(row)
    return f"== {title} ==\n" + format_table(headers, rows)


def format_comparison(title: str, results: dict[str, SystemResult]) -> str:
    """One row per system: cost, phase split, wall time, correctness."""
    phases = sorted({p for r in results.values() for p in r.phase_costs})
    headers = ["system", "cost", *phases, "lookups", "reads", "writes", "wall(s)", "ok"]
    rows = []
    for label, result in results.items():
        rows.append(
            [
                label,
                result.total_cost,
                *[result.phase(p) for p in phases],
                result.lookups,
                result.reads,
                result.writes,
                result.wall_seconds,
                "yes" if result.correct else "NO",
            ]
        )
    return f"== {title} ==\n" + format_table(headers, rows)


def format_figure10(rows: Sequence[tuple[str, float, float, float]]) -> str:
    """The Figure 10 shape: per-query speedup plus both IVM times."""
    headers = ["query", "ID-IVM cost", "Tuple-IVM cost", "speedup"]
    return format_table(headers, rows)


# ----------------------------------------------------------------------
# machine-readable forms (BENCH_*.json, trace attachments)
# ----------------------------------------------------------------------
def system_result_to_dict(result: SystemResult) -> dict:
    """JSON-serializable form of one system's round, with the *full*
    per-phase access breakdown (lookups/reads/writes per phase), not
    just the phase totals."""
    return {
        "label": result.label,
        "total_cost": result.total_cost,
        "wall_seconds": result.wall_seconds,
        "correct": result.correct,
        "accesses": {
            "index_lookups": result.lookups,
            "tuple_reads": result.reads,
            "tuple_writes": result.writes,
        },
        "phases": {
            name: counts.as_dict()
            for name, counts in sorted(result.phase_accesses.items())
        },
        "trace": result.trace,
    }


def sweep_point_to_dict(point: SweepPoint) -> dict:
    """JSON-serializable form of one sweep x-axis point."""
    out: dict = {
        "parameter": point.parameter,
        "systems": {
            label: system_result_to_dict(result)
            for label, result in point.results.items()
        },
    }
    if "tuple" in point.results and "idIVM" in point.results:
        out["speedup"] = point.speedup()
    return out


def sweep_to_dict(
    title: str, parameter_name: str, points: Sequence[SweepPoint]
) -> dict:
    """JSON-serializable form of a whole Figure 12 style sweep."""
    return {
        "title": title,
        "parameter": parameter_name,
        "points": [sweep_point_to_dict(p) for p in points],
    }
