"""Plain-text rendering of benchmark results in the paper's shapes."""

from __future__ import annotations

from typing import Iterable, Sequence

from .harness import SweepPoint, SystemResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Monospace table with per-column widths."""
    rendered = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        for row in rendered
    ]
    return "\n".join([line, rule] + body)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_sweep(
    title: str,
    parameter_name: str,
    points: Sequence[SweepPoint],
    systems: Sequence[str],
    phases: Sequence[str] = (),
) -> str:
    """A Figure 12 style sweep table: one row per parameter value, one
    column block per system (total cost + optional phase breakdown),
    ending with the ID-over-tuple speedup."""
    headers = [parameter_name]
    for system in systems:
        headers.append(f"{system} cost")
        headers.extend(f"{system} {p}" for p in phases)
    headers.append("speedup")
    rows = []
    for point in points:
        row: list[object] = [point.parameter]
        for system in systems:
            result = point.results[system]
            row.append(result.total_cost)
            row.extend(result.phase(p) for p in phases)
        row.append(point.speedup())
        rows.append(row)
    return f"== {title} ==\n" + format_table(headers, rows)


def format_comparison(title: str, results: dict[str, SystemResult]) -> str:
    """One row per system: cost, phase split, wall time, correctness."""
    phases = sorted({p for r in results.values() for p in r.phase_costs})
    headers = ["system", "cost", *phases, "lookups", "reads", "writes", "wall(s)", "ok"]
    rows = []
    for label, result in results.items():
        rows.append(
            [
                label,
                result.total_cost,
                *[result.phase(p) for p in phases],
                result.lookups,
                result.reads,
                result.writes,
                result.wall_seconds,
                "yes" if result.correct else "NO",
            ]
        )
    return f"== {title} ==\n" + format_table(headers, rows)


def format_figure10(rows: Sequence[tuple[str, float, float, float]]) -> str:
    """The Figure 10 shape: per-query speedup plus both IVM times."""
    headers = ["query", "ID-IVM cost", "Tuple-IVM cost", "speedup"]
    return format_table(headers, rows)
