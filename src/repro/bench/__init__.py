"""Benchmark harness and paper-style reporting."""

from .harness import SweepPoint, SystemResult, run_system, speedup
from .report import (
    format_comparison,
    format_figure10,
    format_sweep,
    format_table,
    sweep_point_to_dict,
    sweep_to_dict,
    system_result_to_dict,
)

__all__ = [
    "SweepPoint",
    "SystemResult",
    "format_comparison",
    "format_figure10",
    "format_sweep",
    "format_table",
    "run_system",
    "speedup",
    "sweep_point_to_dict",
    "sweep_to_dict",
    "system_result_to_dict",
]
