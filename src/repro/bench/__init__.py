"""Benchmark harness and paper-style reporting."""

from .harness import SweepPoint, SystemResult, run_system, speedup
from .report import format_comparison, format_figure10, format_sweep, format_table

__all__ = [
    "SweepPoint",
    "SystemResult",
    "format_comparison",
    "format_figure10",
    "format_sweep",
    "format_table",
    "run_system",
    "speedup",
]
