"""Benchmark harness and paper-style reporting."""

from .harness import SweepPoint, SystemResult, run_system, speedup
from .perfgate import compare_payloads, run_gate
from .report import (
    format_comparison,
    format_figure10,
    format_sweep,
    format_table,
    sweep_point_to_dict,
    sweep_to_dict,
    system_result_to_dict,
)

__all__ = [
    "SweepPoint",
    "SystemResult",
    "compare_payloads",
    "format_comparison",
    "run_gate",
    "format_figure10",
    "format_sweep",
    "format_table",
    "run_system",
    "speedup",
    "sweep_point_to_dict",
    "sweep_to_dict",
    "system_result_to_dict",
]
