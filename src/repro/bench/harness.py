"""Benchmark harness: run one maintenance round per system and collect
wall time + per-phase access counts (the paper's cost metric)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..algebra.evaluate import evaluate_plan
from ..core.engine import MaintenanceReport
from ..obs import spans as obs
from ..storage import AccessCounts, Database


@dataclass
class SystemResult:
    """One system's maintenance round on one workload configuration."""

    label: str
    total_cost: int
    phase_costs: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    correct: bool = True
    lookups: int = 0
    reads: int = 0
    writes: int = 0
    #: Full per-phase access breakdown (lookups/reads/writes per phase),
    #: not just the totals of :attr:`phase_costs`.
    phase_accesses: dict[str, AccessCounts] = field(default_factory=dict)
    #: Nested span tree of the maintenance round (dict form), captured
    #: when a span recorder was active during :func:`run_system`.
    trace: Optional[dict] = None

    def phase(self, name: str) -> int:
        return self.phase_costs.get(name, 0)


def run_system(
    label: str,
    db_factory: Callable[[], Database],
    make_engine: Callable[[Database], object],
    build_view: Callable[[Database], object],
    log_modifications: Callable[[object, Database], None],
    check: bool = True,
    view_name: str = "V",
) -> SystemResult:
    """Build a fresh database, define the view, log the modification
    batch, run one maintenance round and report its cost.

    When tracing is enabled (``repro.obs``), the round runs inside a
    ``system:<label>`` span and the resulting span tree is attached to
    the returned :class:`SystemResult`.
    """
    db = db_factory()
    engine = make_engine(db)
    try:
        view = engine.define_view(view_name, build_view(db))
        log_modifications(engine, db)
        with obs.span(f"system:{label}", kind="system", system=label) as ssp:
            started = time.perf_counter()
            reports = engine.maintain()
            wall = time.perf_counter() - started
    finally:
        # Process-backend sharded engines own worker processes; release
        # them even when the round raises.
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    report: MaintenanceReport = reports[view_name]
    phase_costs = {
        name: counts.total
        for name, counts in report.phase_counts.items()
        if name != "__total__"
    }
    phase_accesses = {
        name: counts.copy()
        for name, counts in report.phase_counts.items()
        if name != "__total__"
    }
    total = report.phase_counts.get("__total__")
    correct = True
    if check:
        expected = evaluate_plan(view.plan, db).as_set()
        correct = view.table.as_set() == expected
    return SystemResult(
        label=label,
        total_cost=report.total_cost,
        phase_costs=phase_costs,
        wall_seconds=wall,
        correct=correct,
        lookups=total.index_lookups if total else 0,
        reads=total.tuple_reads if total else 0,
        writes=total.tuple_writes if total else 0,
        phase_accesses=phase_accesses,
        trace=ssp.tree_dict() if obs.enabled() else None,
    )


def speedup(baseline: SystemResult, contender: SystemResult) -> float:
    """baseline cost / contender cost (the paper's speedup ratio)."""
    if contender.total_cost == 0:
        return float("inf") if baseline.total_cost else 1.0
    return baseline.total_cost / contender.total_cost


@dataclass
class SweepPoint:
    """One x-axis value of a Figure 12 style sweep."""

    parameter: object
    results: dict[str, SystemResult]

    def speedup(self, baseline: str = "tuple", contender: str = "idIVM") -> float:
        return speedup(self.results[baseline], self.results[contender])
