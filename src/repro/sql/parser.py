"""Recursive-descent parser for the SQL subset.

Grammar (QSPJADU, the paper's view-definition language):

.. code-block:: text

    statement   := select ( UNION ALL select | EXCEPT select )*
    select      := SELECT item ("," item)* FROM source
                   [WHERE expr] [GROUP BY column ("," column)*]
                   [HAVING expr]
    item        := "*" | expr [AS name]
    source      := table_ref ( NATURAL JOIN table_ref
                             | [INNER] JOIN table_ref ON expr
                             | "," table_ref )*
    table_ref   := name [[AS] alias]
    expr        := standard precedence with AND / OR / NOT, comparisons
                   (= <> < <= > >=), BETWEEN, IN (literals), + - * /,
                   scalar functions, and the aggregates SUM / COUNT /
                   AVG / MIN / MAX in the select list.

The parser produces a small AST (:class:`SelectStmt` and friends) that
:mod:`repro.sql.translate` lowers onto the algebra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import SqlError
from .lexer import Token, tokenize

AGG_KEYWORDS = ("SUM", "COUNT", "AVG", "MIN", "MAX")


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass
class ColumnRef:
    table: Optional[str]
    name: str


@dataclass
class Literal:
    value: object


@dataclass
class BinaryOp:
    op: str
    left: object
    right: object


@dataclass
class BoolOp:
    op: str  # AND | OR
    items: list


@dataclass
class NotOp:
    item: object


@dataclass
class InOp:
    item: object
    values: list


@dataclass
class FuncCall:
    name: str
    args: list


@dataclass
class AggCall:
    func: str            # sum/count/avg/min/max (lower case)
    arg: Optional[object]  # None for COUNT(*)


@dataclass
class SelectItem:
    expr: object
    alias: Optional[str]
    star: bool = False


@dataclass
class TableRef:
    name: str
    alias: Optional[str]


@dataclass
class JoinClause:
    kind: str            # natural | on | cross
    table: TableRef
    condition: Optional[object] = None


@dataclass
class SelectStmt:
    items: list[SelectItem]
    base: TableRef
    joins: list[JoinClause] = field(default_factory=list)
    where: Optional[object] = None
    group_by: list[ColumnRef] = field(default_factory=list)
    having: Optional[object] = None


@dataclass
class SetOp:
    op: str  # union_all | except
    left: object
    right: object


def parse(text: str):
    """Parse *text* into a :class:`SelectStmt` / :class:`SetOp` tree."""
    return _Parser(tokenize(text)).parse_statement()


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers ---------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.value in words

    def expect_keyword(self, word: str) -> Token:
        token = self.advance()
        if token.kind != "KEYWORD" or token.value != word:
            raise SqlError(f"expected {word}, found {token.value!r} at {token.position}")
        return token

    def expect_punct(self, symbol: str) -> Token:
        token = self.advance()
        if token.kind != "PUNCT" or token.value != symbol:
            raise SqlError(
                f"expected {symbol!r}, found {token.value!r} at {token.position}"
            )
        return token

    def at_punct(self, symbol: str) -> bool:
        token = self.peek()
        return token.kind == "PUNCT" and token.value == symbol

    def accept_punct(self, symbol: str) -> bool:
        if self.at_punct(symbol):
            self.advance()
            return True
        return False

    # -- grammar ---------------------------------------------------------
    def parse_statement(self):
        node = self.parse_select()
        while True:
            if self.at_keyword("UNION"):
                self.advance()
                self.expect_keyword("ALL")
                node = SetOp("union_all", node, self.parse_select())
            elif self.at_keyword("EXCEPT"):
                self.advance()
                node = SetOp("except", node, self.parse_select())
            else:
                break
        token = self.peek()
        if token.kind != "EOF":
            raise SqlError(f"unexpected trailing input {token.value!r} at {token.position}")
        return node

    def parse_select(self) -> SelectStmt:
        self.expect_keyword("SELECT")
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        base = self.parse_table_ref()
        joins: list[JoinClause] = []
        while True:
            if self.at_keyword("NATURAL"):
                self.advance()
                self.expect_keyword("JOIN")
                joins.append(JoinClause("natural", self.parse_table_ref()))
            elif self.at_keyword("JOIN", "INNER"):
                if self.at_keyword("INNER"):
                    self.advance()
                self.expect_keyword("JOIN")
                table = self.parse_table_ref()
                self.expect_keyword("ON")
                joins.append(JoinClause("on", table, self.parse_expr()))
            elif self.at_punct(","):
                self.advance()
                joins.append(JoinClause("cross", self.parse_table_ref()))
            else:
                break
        where = None
        if self.at_keyword("WHERE"):
            self.advance()
            where = self.parse_expr()
        group_by: list[ColumnRef] = []
        if self.at_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            group_by.append(self.parse_column_ref())
            while self.accept_punct(","):
                group_by.append(self.parse_column_ref())
        having = None
        if self.at_keyword("HAVING"):
            self.advance()
            having = self.parse_expr()
        return SelectStmt(items, base, joins, where, group_by, having)

    def parse_select_item(self) -> SelectItem:
        if self.at_punct("*"):
            self.advance()
            return SelectItem(None, None, star=True)
        expr = self.parse_expr()
        alias = None
        if self.at_keyword("AS"):
            self.advance()
            token = self.advance()
            if token.kind != "IDENT":
                raise SqlError(f"expected alias name at {token.position}")
            alias = token.value
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return SelectItem(expr, alias)

    def parse_table_ref(self) -> TableRef:
        token = self.advance()
        if token.kind != "IDENT":
            raise SqlError(f"expected table name at {token.position}")
        alias = None
        if self.at_keyword("AS"):
            self.advance()
            alias_token = self.advance()
            if alias_token.kind != "IDENT":
                raise SqlError(f"expected alias at {alias_token.position}")
            alias = alias_token.value
        elif self.peek().kind == "IDENT":
            alias = self.advance().value
        return TableRef(token.value, alias)

    def parse_column_ref(self) -> ColumnRef:
        token = self.advance()
        if token.kind != "IDENT":
            raise SqlError(f"expected column name at {token.position}")
        if self.accept_punct("."):
            column = self.advance()
            if column.kind != "IDENT":
                raise SqlError(f"expected column after '.' at {column.position}")
            return ColumnRef(token.value, column.value)
        return ColumnRef(None, token.value)

    # -- expressions -------------------------------------------------
    def parse_expr(self):
        return self.parse_or()

    def parse_or(self):
        node = self.parse_and()
        items = [node]
        while self.at_keyword("OR"):
            self.advance()
            items.append(self.parse_and())
        return items[0] if len(items) == 1 else BoolOp("OR", items)

    def parse_and(self):
        node = self.parse_not()
        items = [node]
        while self.at_keyword("AND"):
            self.advance()
            items.append(self.parse_not())
        return items[0] if len(items) == 1 else BoolOp("AND", items)

    def parse_not(self):
        if self.at_keyword("NOT"):
            self.advance()
            return NotOp(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self):
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "PUNCT" and token.value in ("=", "<>", "<", "<=", ">", ">="):
            self.advance()
            right = self.parse_additive()
            return BinaryOp(token.value, left, right)
        if self.at_keyword("BETWEEN"):
            self.advance()
            low = self.parse_additive()
            self.expect_keyword("AND")
            high = self.parse_additive()
            return BoolOp(
                "AND",
                [BinaryOp(">=", left, low), BinaryOp("<=", left, high)],
            )
        if self.at_keyword("IN"):
            self.advance()
            self.expect_punct("(")
            values = [self.parse_literal_value()]
            while self.accept_punct(","):
                values.append(self.parse_literal_value())
            self.expect_punct(")")
            return InOp(left, values)
        if self.at_keyword("NOT"):
            # NOT IN
            save = self.position
            self.advance()
            if self.at_keyword("IN"):
                self.advance()
                self.expect_punct("(")
                values = [self.parse_literal_value()]
                while self.accept_punct(","):
                    values.append(self.parse_literal_value())
                self.expect_punct(")")
                return NotOp(InOp(left, values))
            self.position = save
        return left

    def parse_additive(self):
        node = self.parse_multiplicative()
        while self.at_punct("+") or self.at_punct("-"):
            op = self.advance().value
            node = BinaryOp(op, node, self.parse_multiplicative())
        return node

    def parse_multiplicative(self):
        node = self.parse_unary()
        while self.at_punct("*") or self.at_punct("/"):
            op = self.advance().value
            node = BinaryOp(op, node, self.parse_unary())
        return node

    def parse_unary(self):
        if self.at_punct("-"):
            self.advance()
            return BinaryOp("-", Literal(0), self.parse_unary())
        return self.parse_primary()

    def parse_primary(self):
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "STRING":
            self.advance()
            return Literal(token.value)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE", "NULL"):
            self.advance()
            return Literal(
                {"TRUE": True, "FALSE": False, "NULL": None}[token.value]
            )
        if token.kind == "KEYWORD" and token.value in AGG_KEYWORDS:
            self.advance()
            self.expect_punct("(")
            if token.value == "COUNT" and self.at_punct("*"):
                self.advance()
                self.expect_punct(")")
                return AggCall("count", None)
            arg = self.parse_expr()
            self.expect_punct(")")
            return AggCall(token.value.lower(), arg)
        if token.kind == "IDENT":
            self.advance()
            if self.at_punct("("):
                self.advance()
                args = []
                if not self.at_punct(")"):
                    args.append(self.parse_expr())
                    while self.accept_punct(","):
                        args.append(self.parse_expr())
                self.expect_punct(")")
                return FuncCall(token.value.lower(), args)
            if self.accept_punct("."):
                column = self.advance()
                if column.kind != "IDENT":
                    raise SqlError(f"expected column after '.' at {column.position}")
                return ColumnRef(token.value, column.value)
            return ColumnRef(None, token.value)
        if self.accept_punct("("):
            node = self.parse_expr()
            self.expect_punct(")")
            return node
        raise SqlError(f"unexpected token {token.value!r} at {token.position}")

    def parse_literal_value(self):
        node = self.parse_primary()
        if not isinstance(node, Literal):
            raise SqlError("IN lists may contain literals only")
        return node.value
