"""SQL subset front-end: lexer, parser and algebra translation."""

from .lexer import Token, tokenize
from .parser import parse
from .translate import sql_to_plan

__all__ = ["Token", "parse", "sql_to_plan", "tokenize"]
