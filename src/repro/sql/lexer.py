"""Tokenizer for the SQL subset front-end."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SqlError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "AS", "AND", "OR",
    "NOT", "IN", "NATURAL", "JOIN", "ON", "UNION", "ALL", "EXCEPT",
    "SUM", "COUNT", "AVG", "MIN", "MAX", "TRUE", "FALSE", "NULL",
    "CREATE", "VIEW", "BETWEEN", "INNER",
}

PUNCTUATION = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*",
               "+", "-", "/", ".")


@dataclass
class Token:
    kind: str   # KEYWORD | IDENT | NUMBER | STRING | PUNCT | EOF
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"{self.kind}:{self.value}"


def tokenize(text: str) -> list[Token]:
    """Split *text* into tokens; raises :class:`SqlError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i:i + 2] == "--":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, start))
            else:
                tokens.append(Token("IDENT", word, start))
            continue
        if ch.isdigit():
            start = i
            while i < n and (text[i].isdigit() or text[i] == "."):
                i += 1
            tokens.append(Token("NUMBER", text[start:i], start))
            continue
        if ch in ("'", '"'):
            quote = ch
            start = i
            i += 1
            chunk: list[str] = []
            while i < n and text[i] != quote:
                chunk.append(text[i])
                i += 1
            if i >= n:
                raise SqlError(f"unterminated string literal at offset {start}")
            i += 1
            tokens.append(Token("STRING", "".join(chunk), start))
            continue
        for punct in PUNCTUATION:
            if text.startswith(punct, i):
                tokens.append(Token("PUNCT", "<>" if punct == "!=" else punct, i))
                i += len(punct)
                break
        else:
            raise SqlError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
