"""Lowering of parsed SQL onto the QSPJADU algebra."""

from __future__ import annotations

from typing import Optional

from ..algebra import (
    AggSpec,
    GroupBy,
    Join,
    PlanNode,
    Project,
    Select,
    UnionAll,
    difference,
    natural_join,
    scan,
)
from ..errors import SqlError
from ..expr import Call, Expr, InList, Not, all_of, any_of, col, lit
from ..storage import Database
from .parser import (
    AggCall,
    BinaryOp,
    BoolOp,
    ColumnRef,
    FuncCall,
    InOp,
    Literal,
    NotOp,
    SelectStmt,
    SetOp,
    parse,
)


def sql_to_plan(db: Database, text: str) -> PlanNode:
    """Parse and translate a SELECT statement into an algebra plan."""
    return _translate(db, parse(text))


def _translate(db: Database, node) -> PlanNode:
    if isinstance(node, SetOp):
        left = _translate(db, node.left)
        right = _translate(db, node.right)
        if node.op == "union_all":
            return UnionAll(left, right)
        return difference(left, right)
    assert isinstance(node, SelectStmt)
    return _translate_select(db, node)


class _Scope:
    """Column-name resolution for one FROM clause."""

    def __init__(self) -> None:
        #: (qualifier, column) -> plan column name
        self.qualified: dict[tuple[str, str], str] = {}
        #: plan column name -> how many sources expose it
        self.plain: dict[str, int] = {}

    def add_table(self, db: Database, name: str, alias: Optional[str]) -> None:
        schema = db.table(name).schema
        qualifier = alias if alias is not None else name
        for column in schema.columns:
            out = f"{alias}_{column}" if alias is not None else column
            self.qualified[(qualifier, column)] = out
            self.plain[out] = self.plain.get(out, 0) + 1

    def merge_shared(self, shared: list[str]) -> None:
        """After a natural join, shared columns collapse to one copy."""
        for column in shared:
            self.plain[column] = 1

    def resolve(self, ref: ColumnRef) -> str:
        if ref.table is not None:
            out = self.qualified.get((ref.table, ref.name))
            if out is None:
                raise SqlError(f"unknown column {ref.table}.{ref.name}")
            return out
        if ref.name in self.plain:
            if self.plain[ref.name] > 1:
                raise SqlError(f"ambiguous column {ref.name!r}; qualify it")
            return ref.name
        # An aliased table's column referenced without the qualifier.
        matches = [
            out for (_q, c), out in self.qualified.items() if c == ref.name
        ]
        matches = sorted(set(matches))
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise SqlError(f"unknown column {ref.name!r}")
        raise SqlError(f"ambiguous column {ref.name!r}; qualify it")


def _translate_select(db: Database, stmt: SelectStmt) -> PlanNode:
    scope = _Scope()
    plan = scan(db, stmt.base.name, alias=stmt.base.alias)
    scope.add_table(db, stmt.base.name, stmt.base.alias)
    for clause in stmt.joins:
        right = scan(db, clause.table.name, alias=clause.table.alias)
        if clause.kind == "natural":
            shared = [c for c in plan.columns if c in set(right.columns)]
            plan = natural_join(plan, right)
            scope.add_table(db, clause.table.name, clause.table.alias)
            scope.merge_shared(shared)
            continue
        scope.add_table(db, clause.table.name, clause.table.alias)
        overlap = set(plan.columns) & set(right.columns)
        if overlap:
            raise SqlError(
                f"tables share columns {sorted(overlap)}; alias one of them "
                f"or use NATURAL JOIN"
            )
        condition = (
            _expr(clause.condition, scope) if clause.kind == "on" else None
        )
        plan = Join(plan, right, condition)
    if stmt.where is not None:
        plan = Select(plan, _expr(stmt.where, scope))

    has_aggs = any(
        not item.star and _contains_agg(item.expr) for item in stmt.items
    )
    if stmt.group_by or has_aggs:
        return _translate_grouped(stmt, plan, scope)

    if len(stmt.items) == 1 and stmt.items[0].star:
        return plan
    items: list[tuple[str, Expr]] = []
    for i, item in enumerate(stmt.items):
        if item.star:
            raise SqlError("'*' cannot be combined with other select items")
        expr = _expr(item.expr, scope)
        name = item.alias or _default_name(item.expr, scope, i)
        items.append((name, expr))
    return Project(plan, items)


def _translate_grouped(stmt: SelectStmt, plan: PlanNode, scope: _Scope) -> PlanNode:
    if not stmt.group_by:
        raise SqlError(
            "aggregates require GROUP BY (views need keys; paper Section 2)"
        )
    keys = [scope.resolve(ref) for ref in stmt.group_by]
    aggs: list[AggSpec] = []
    output: list[tuple[str, str]] = []  # (output name, source column)
    for i, item in enumerate(stmt.items):
        if item.star:
            raise SqlError("'*' is not allowed with GROUP BY")
        if isinstance(item.expr, AggCall):
            name = item.alias or f"{item.expr.func}_{i}"
            arg = _expr(item.expr.arg, scope) if item.expr.arg is not None else None
            aggs.append(AggSpec(item.expr.func, arg, name))
            output.append((name, name))
        elif isinstance(item.expr, ColumnRef):
            resolved = scope.resolve(item.expr)
            if resolved not in keys:
                raise SqlError(
                    f"non-aggregated column {resolved!r} must appear in GROUP BY"
                )
            output.append((item.alias or resolved, resolved))
        else:
            raise SqlError(
                "grouped select items must be grouping columns or aggregates"
            )
    if not aggs:
        raise SqlError("GROUP BY without aggregates is not supported")
    grouped: PlanNode = GroupBy(plan, tuple(keys), tuple(aggs))
    if stmt.having is not None:
        # HAVING references grouping columns and aggregate aliases.
        grouped = Select(grouped, _having_expr(stmt.having, scope, grouped))
    if [name for name, _src in output] == list(grouped.columns):
        return grouped
    return Project(grouped, [(name, col(src)) for name, src in output])


def _having_expr(node, scope: _Scope, grouped: PlanNode) -> Expr:
    """Translate a HAVING predicate over the grouped output columns."""
    available = set(grouped.columns)
    if isinstance(node, ColumnRef) and node.table is None and node.name in available:
        return col(node.name)
    if isinstance(node, Literal):
        return lit(node.value)
    if isinstance(node, BinaryOp):
        left = _having_expr(node.left, scope, grouped)
        right = _having_expr(node.right, scope, grouped)
        if node.op in ("+", "-", "*", "/"):
            from ..expr import Arith

            return Arith(node.op, left, right)
        from ..expr import Cmp

        return Cmp(node.op, left, right)
    if isinstance(node, BoolOp):
        parts = [_having_expr(i, scope, grouped) for i in node.items]
        return all_of(*parts) if node.op == "AND" else any_of(*parts)
    if isinstance(node, NotOp):
        return Not(_having_expr(node.item, scope, grouped))
    if isinstance(node, InOp):
        return InList(_having_expr(node.item, scope, grouped), tuple(node.values))
    if isinstance(node, AggCall):
        raise SqlError(
            "HAVING must reference aggregate columns by their alias"
        )
    raise SqlError(f"cannot translate HAVING expression {node!r}")


def _contains_agg(node) -> bool:
    if isinstance(node, AggCall):
        return True
    if isinstance(node, BinaryOp):
        return _contains_agg(node.left) or _contains_agg(node.right)
    if isinstance(node, BoolOp):
        return any(_contains_agg(i) for i in node.items)
    if isinstance(node, (NotOp,)):
        return _contains_agg(node.item)
    if isinstance(node, FuncCall):
        return any(_contains_agg(a) for a in node.args)
    return False


def _default_name(node, scope: _Scope, index: int) -> str:
    if isinstance(node, ColumnRef):
        return scope.resolve(node)
    raise SqlError(f"select item #{index + 1} needs an AS alias")


def _expr(node, scope: _Scope) -> Expr:
    if isinstance(node, Literal):
        return lit(node.value)
    if isinstance(node, ColumnRef):
        return col(scope.resolve(node))
    if isinstance(node, BinaryOp):
        left = _expr(node.left, scope)
        right = _expr(node.right, scope)
        if node.op in ("+", "-", "*", "/"):
            from ..expr import Arith

            return Arith(node.op, left, right)
        from ..expr import Cmp

        return Cmp(node.op, left, right)
    if isinstance(node, BoolOp):
        parts = [_expr(i, scope) for i in node.items]
        return all_of(*parts) if node.op == "AND" else any_of(*parts)
    if isinstance(node, NotOp):
        return Not(_expr(node.item, scope))
    if isinstance(node, InOp):
        return InList(_expr(node.item, scope), tuple(node.values))
    if isinstance(node, FuncCall):
        return Call(node.name, [_expr(a, scope) for a in node.args])
    if isinstance(node, AggCall):
        raise SqlError("aggregates are only allowed in the select list")
    raise SqlError(f"cannot translate expression node {node!r}")
