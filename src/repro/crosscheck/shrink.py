"""Greedy shrinking of failing crosscheck cases.

A divergence found by the fuzzer is only useful once it is small enough
to read.  :func:`shrink_case` repeatedly tries structural reductions —
drop a batch, drop one modification, drop an initial row, drop an unused
table or column, simplify the plan — and keeps a reduction only when the
case *still fails the same way*: at least one divergence with the same
``(strategy, kind)`` as the original failure.  That signature check is
what stops the shrinker from drifting onto an unrelated failure (e.g.
turning a view mismatch into a spec validation error and "minimizing"
that instead).

The passes run to a fixed point, cheapest-first; every accepted
reduction restarts the pass list so early passes get another look at the
smaller case.  All candidates are deep copies — the input case is never
mutated.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator, Mapping, Optional

from .runner import ALL_STRATEGIES, CaseResult, run_case
from .spec import plan_tables

#: Ceiling on candidate evaluations (each runs the failing strategies
#: plus the oracle over the whole case).  Generated cases are tiny, so
#: the fixed point normally lands well under this.
DEFAULT_MAX_TRIALS = 600


# ----------------------------------------------------------------------
# failure signatures
# ----------------------------------------------------------------------
def _signature(result: CaseResult) -> set[tuple[str, str]]:
    return {(d.strategy, d.kind) for d in result.divergences}


def _failing_strategies(result: CaseResult) -> tuple[str, ...]:
    named = {d.strategy for d in result.divergences}
    picked = tuple(s for s in ALL_STRATEGIES if s in named)
    # An oracle_error names no strategy; any single strategy will do —
    # the oracle runs (and fails) regardless of which one we pick.
    return picked or ALL_STRATEGIES[:1]


# ----------------------------------------------------------------------
# reduction passes (each yields candidate cases, smallest-step first)
# ----------------------------------------------------------------------
def _drop_batches(case: Mapping) -> Iterator[dict]:
    for i in reversed(range(len(case["batches"]))):
        candidate = copy.deepcopy(case)
        del candidate["batches"][i]
        yield candidate


def _drop_modifications(case: Mapping) -> Iterator[dict]:
    for bi in reversed(range(len(case["batches"]))):
        for mi in reversed(range(len(case["batches"][bi]))):
            candidate = copy.deepcopy(case)
            del candidate["batches"][bi][mi]
            if not candidate["batches"][bi]:
                del candidate["batches"][bi]
            yield candidate


def _shrink_updates(case: Mapping) -> Iterator[dict]:
    """Narrow multi-column updates one changed column at a time."""
    for bi, batch in enumerate(case["batches"]):
        for mi, mod in enumerate(batch):
            if mod["op"] != "update" or len(mod["changes"]) <= 1:
                continue
            for cname in mod["changes"]:
                candidate = copy.deepcopy(case)
                del candidate["batches"][bi][mi]["changes"][cname]
                yield candidate


def _drop_rows(case: Mapping) -> Iterator[dict]:
    for ti, table in enumerate(case["tables"]):
        for ri in reversed(range(len(table["rows"]))):
            candidate = copy.deepcopy(case)
            del candidate["tables"][ti]["rows"][ri]
            yield candidate


def _drop_unused_tables(case: Mapping) -> Iterator[dict]:
    """Drop every table the (possibly simplified) plan no longer reads."""
    used = plan_tables(case["plan"])
    unused = [t["name"] for t in case["tables"] if t["name"] not in used]
    if not unused:
        return
    dead = set(unused)
    candidate = copy.deepcopy(case)
    candidate["tables"] = [t for t in candidate["tables"] if t["name"] not in dead]
    candidate["foreign_keys"] = [
        fk
        for fk in candidate.get("foreign_keys", [])
        if fk[0] not in dead and fk[2] not in dead
    ]
    candidate["batches"] = [
        [mod for mod in batch if mod["table"] not in dead]
        for batch in candidate["batches"]
    ]
    candidate["batches"] = [b for b in candidate["batches"] if b]
    yield candidate


# -- plan simplification ----------------------------------------------
def _predicate_variants(pred: list) -> Iterator[list]:
    tag = pred[0]
    if tag in ("and", "or"):
        items = pred[1:]
        for i in range(len(items)):
            rest = items[:i] + items[i + 1 :]
            yield rest[0] if len(rest) == 1 else [tag] + rest
    elif tag == "not":
        yield pred[1]


def _node_variants(spec: Mapping) -> Iterator[dict]:
    """Smaller replacements for one plan node (children, weaker forms)."""
    op = spec["op"]
    if op == "select":
        yield spec["child"]
        for pred in _predicate_variants(spec["predicate"]):
            yield {**spec, "predicate": pred}
    elif op == "project":
        yield spec["child"]
    elif op == "groupby":
        yield spec["child"]
        if len(spec["aggs"]) > 1:
            for i in range(len(spec["aggs"])):
                yield {**spec, "aggs": spec["aggs"][:i] + spec["aggs"][i + 1 :]}
    elif op in ("join", "antijoin", "union"):
        yield spec["left"]
        yield spec["right"]


def _walk_plan(spec: Mapping, path: tuple = ()) -> Iterator[tuple[tuple, Mapping]]:
    yield path, spec
    for key in ("child", "left", "right"):
        child = spec.get(key)
        if isinstance(child, Mapping):
            yield from _walk_plan(child, path + (key,))


def _simplify_plan(case: Mapping) -> Iterator[dict]:
    for path, node in _walk_plan(case["plan"]):
        for variant in _node_variants(node):
            candidate = copy.deepcopy(case)
            target = candidate["plan"]
            if not path:
                candidate["plan"] = copy.deepcopy(variant)
            else:
                for key in path[:-1]:
                    target = target[key]
                target[path[-1]] = copy.deepcopy(variant)
            yield candidate


# -- column dropping ---------------------------------------------------
def _collect_plan_columns(spec: Mapping, out: set[str]) -> None:
    """Every aliased column name a plan spec mentions anywhere."""

    def from_pred(pred) -> None:
        tag = pred[0]
        if tag == "col":
            out.add(pred[1])
        elif tag == "cmp":
            from_pred(pred[2])
            from_pred(pred[3])
        elif tag in ("and", "or", "not"):
            for item in pred[1:]:
                from_pred(item)
        elif tag == "in":
            from_pred(pred[1])

    op = spec["op"]
    if op == "select":
        from_pred(spec["predicate"])
    elif op in ("join", "antijoin"):
        for a, b in spec["on"]:
            out.add(a)
            out.add(b)
    elif op == "project":
        out.update(spec["columns"])
    elif op == "groupby":
        out.update(spec["keys"])
        for _func, arg, _name in spec["aggs"]:
            if arg is not None:
                out.add(arg)
    for key in ("child", "left", "right"):
        child = spec.get(key)
        if isinstance(child, Mapping):
            _collect_plan_columns(child, out)


def _scan_aliases(spec: Mapping, out: dict[str, list[str]]) -> None:
    if spec["op"] == "scan":
        out.setdefault(spec["table"], []).append(spec.get("alias") or spec["table"])
    for key in ("child", "left", "right"):
        child = spec.get(key)
        if isinstance(child, Mapping):
            _scan_aliases(child, out)


def _drop_columns(case: Mapping) -> Iterator[dict]:
    """Drop base-table columns no scan alias exposes to the plan."""
    refs: set[str] = set()
    _collect_plan_columns(case["plan"], refs)
    aliases: dict[str, list[str]] = {}
    _scan_aliases(case["plan"], aliases)
    for ti, table in enumerate(case["tables"]):
        key_cols = set(table["key"])
        for ci, cname in enumerate(table["columns"]):
            if cname in key_cols:
                continue
            exposed = any(
                f"{alias}_{cname}" in refs
                for alias in aliases.get(table["name"], [])
            )
            if exposed:
                continue
            candidate = copy.deepcopy(case)
            tspec = candidate["tables"][ti]
            del tspec["columns"][ci]
            tspec["rows"] = [row[:ci] + row[ci + 1 :] for row in tspec["rows"]]
            candidate["foreign_keys"] = [
                fk
                for fk in candidate.get("foreign_keys", [])
                if not (fk[0] == table["name"] and cname in fk[1])
            ]
            for batch in candidate["batches"]:
                for mod in batch:
                    if mod["table"] != table["name"]:
                        continue
                    if mod["op"] == "insert":
                        mod["row"] = mod["row"][:ci] + mod["row"][ci + 1 :]
                    elif mod["op"] == "update":
                        mod["changes"].pop(cname, None)
                # Updates left with no changes are no-ops; fold them away
                # *before* the predicate sees the candidate, so acceptance
                # is judged on exactly what the shrinker would keep.
                batch[:] = [
                    mod
                    for mod in batch
                    if not (mod["op"] == "update" and not mod["changes"])
                ]
            candidate["batches"] = [b for b in candidate["batches"] if b]
            yield candidate


#: Pass order: coarse, high-yield reductions first; column surgery last.
_PASSES: tuple[Callable[[Mapping], Iterator[dict]], ...] = (
    _drop_batches,
    _drop_modifications,
    _simplify_plan,
    _drop_rows,
    _drop_unused_tables,
    _shrink_updates,
    _drop_columns,
)


# ----------------------------------------------------------------------
def shrink_case(
    case: Mapping,
    result: Optional[CaseResult] = None,
    *,
    predicate: Optional[Callable[[Mapping], bool]] = None,
    max_trials: int = DEFAULT_MAX_TRIALS,
) -> dict:
    """Minimize a failing case while it keeps failing the same way.

    *result* is the case's known :class:`CaseResult` (recomputed when
    omitted).  *predicate* overrides the whole still-fails check — useful
    for tests and for shrinking against a property other than a live
    divergence.  Returns a new case dict; the input is not modified.
    A case that does not fail (and no predicate is given) is returned
    unchanged.
    """
    trials = 0
    if predicate is None:
        if result is None:
            result = run_case(case)
        if result.ok:
            return copy.deepcopy(case)
        reference = _signature(result)
        strategies = _failing_strategies(result)

        def predicate(candidate: Mapping) -> bool:
            res = run_case(candidate, strategies)
            return bool(_signature(res) & reference)

    current = copy.deepcopy(case)
    progress = True
    while progress and trials < max_trials:
        progress = False
        for reduce_pass in _PASSES:
            for candidate in reduce_pass(current):
                if trials >= max_trials:
                    break
                trials += 1
                try:
                    keep = predicate(candidate)
                except Exception:  # noqa: BLE001 - a candidate may be invalid
                    keep = False
                if keep:
                    current = candidate
                    progress = True
                    break
            if progress:
                break
    return current
