"""Run one crosscheck case: every strategy against the recompute oracle.

The oracle is :func:`repro.algebra.evaluate_plan` — the same from-scratch
evaluator :class:`repro.baselines.recompute.RecomputeEngine` swaps in,
applied after every batch to a private database that receives the same
modification stream.  Each maintenance strategy then runs on its *own*
fresh database; after every batch its view table must equal the oracle's
multiset exactly, and the engine must pass every invariant in
:mod:`repro.crosscheck.invariants`.

A divergence names the strategy, the batch and what went wrong; the
shrinker and the regression corpus both consume this structure.
"""

from __future__ import annotations

import traceback
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from ..baselines import TupleIvmEngine
from ..core import IdIvmEngine
from ..obs import metrics
from ..core.idinfer import annotate_plan
from ..core.modlog import ModificationLog
from ..core.sharded import ShardedEngine
from ..algebra.evaluate import evaluate_plan
from .invariants import check_engine_state
from .spec import apply_modification, build_database, build_plan

#: Every maintenance strategy under test, in reporting order.
STRATEGY_FACTORIES: dict[str, Callable] = {
    "eager": lambda db: IdIvmEngine(db, optimize=False),
    "minimized": lambda db: IdIvmEngine(db, optimize=True),
    "compiled": lambda db: IdIvmEngine(db, exec_backend="compiled"),
    "tuple": TupleIvmEngine,
    # Sharded strategies run with the dynamic race detector on: any
    # overlapping per-shard write-sets become a "race" divergence (see
    # run_strategy) — one more claim the fuzzer differentially checks.
    "sharded1": lambda db: ShardedEngine(db, shards=1, race_check=True),
    "sharded2": lambda db: ShardedEngine(db, shards=2, race_check=True),
    "sharded4": lambda db: ShardedEngine(db, shards=4, race_check=True),
}

ALL_STRATEGIES = tuple(STRATEGY_FACTORIES)


@dataclass
class Divergence:
    """One way one strategy disagreed with the oracle (or itself)."""

    strategy: str
    batch: int  # -1: view definition / initial state
    kind: str  # "view_mismatch" | "invariant" | "exception" |
    #          # "oracle_error" | "analysis" | "cost" | "drift" |
    #          # "race" | "fingerprint"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        where = "setup" if self.batch < 0 else f"batch {self.batch}"
        return f"[{self.strategy} @ {where}] {self.kind}: {self.detail}"


@dataclass
class CaseResult:
    """Outcome of one case across all requested strategies."""

    divergences: list[Divergence] = field(default_factory=list)
    #: every static-analyzer diagnostic (rendered) plus tolerance-level
    #: COST503 reconciliation deviations and COST504 sustained-drift
    #: alerts, informational; error-severity analyzer findings also
    #: land in ``divergences`` as "analysis"
    diagnostics: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _tail(exc: BaseException) -> str:
    lines = traceback.format_exception(type(exc), exc, exc.__traceback__)
    return lines[-1].strip() + (
        f"  (at {traceback.extract_tb(exc.__traceback__)[-1].name})"
        if exc.__traceback__ is not None
        else ""
    )


def _multiset_detail(expected: Counter, actual: Counter) -> str:
    missing = list((expected - actual).elements())[:4]
    extra = list((actual - expected).elements())[:4]
    parts = []
    if missing:
        parts.append(f"missing={missing!r}")
    if extra:
        parts.append(f"extra={extra!r}")
    return " ".join(parts) or "multisets differ"


def oracle_states(case: Mapping) -> list[Counter]:
    """Expected view multisets after each batch (full recomputation).

    Raises whatever the evaluator raises — the caller classifies an
    oracle failure as ``oracle_error`` (the case is unusable as a
    differential test, but a *crashing* oracle is still a finding: the
    shared expression/algebra layer blew up).
    """
    db = build_database(case)
    plan = annotate_plan(build_plan(case["plan"], db))
    log = ModificationLog(db)
    states = []
    for batch in case["batches"]:
        for op in batch:
            apply_modification(log, op)
        log.take()
        states.append(Counter(evaluate_plan(plan, db).rows))
    return states


def run_strategy(
    case: Mapping,
    strategy: str,
    expected: Sequence[Counter],
    diag_sink: Optional[list] = None,
) -> Optional[Divergence]:
    """Run one strategy over the case; return its first divergence."""
    factory = STRATEGY_FACTORIES[strategy]
    try:
        db = build_database(case)
        plan = build_plan(case["plan"], db)
        engine = factory(db)
        view = engine.define_view("V", plan)
    except Exception as exc:  # noqa: BLE001 - the fuzzer reports, never raises
        return Divergence(strategy, -1, "exception", _tail(exc))
    for bi, batch in enumerate(case["batches"]):
        try:
            for op in batch:
                apply_modification(engine.log, op)
            report = engine.maintain()["V"]
        except Exception as exc:  # noqa: BLE001
            return Divergence(strategy, bi, "exception", _tail(exc))
        actual = Counter(view.table.rows_uncounted())
        if actual != expected[bi]:
            return Divergence(
                strategy, bi, "view_mismatch", _multiset_detail(expected[bi], actual)
            )
        try:
            problems = check_engine_state(view, db, report)
        except Exception as exc:  # noqa: BLE001
            return Divergence(strategy, bi, "exception", _tail(exc))
        if problems:
            return Divergence(strategy, bi, "invariant", "; ".join(problems[:3]))
        overlaps = getattr(report, "race_overlaps", None)
        if overlaps:
            shown = "; ".join(
                f"{tag} key {key!r} by shards {list(shards)}"
                for tag, key, shards in overlaps[:3]
            )
            return Divergence(
                strategy,
                bi,
                "race",
                f"{len(overlaps)} overlapping per-shard write(s): {shown}",
            )
        cost_divergence = _reconcile_cost(report, strategy, bi, diag_sink)
        if cost_divergence is not None:
            return cost_divergence
    drift_divergence = _check_drift(
        engine, strategy, len(case["batches"]) - 1, diag_sink
    )
    if drift_divergence is not None:
        return drift_divergence
    return None


#: A measured count this far above the symbolic prediction is a fuzz
#: divergence (not just a tolerance warning): the S2 counters report
#: work the inferred upper bound cannot possibly explain.
_COST_HARD_FACTOR = 3.0
_COST_HARD_SLACK = 50.0


def _reconcile_cost(
    report, strategy: str, batch_index: int, diag_sink: Optional[list]
) -> Optional[Divergence]:
    """COST503 reconciliation as one more differential check.

    Within-tolerance rounds are silent; tolerance-exceeding deviations
    are recorded as informational diagnostics; only measured counts the
    upper-bound model cannot remotely explain become divergences (the
    fuzzer must not cry wolf on estimate noise).
    """
    try:
        from ..analysis.cost import reconcile_report

        deviations = reconcile_report(report)
    except Exception:  # noqa: BLE001 - reconciliation must never kill a case
        return None
    if not deviations:
        return None
    metrics.counter("crosscheck.cost_deviations").inc(len(deviations))
    if diag_sink is not None:
        diag_sink.extend(
            f"COST503 [{strategy} @ batch {batch_index}] {d.render()}"
            for d in deviations
        )
    egregious = [
        d
        for d in deviations
        if d.measured > _COST_HARD_FACTOR * d.predicted + _COST_HARD_SLACK
    ]
    if egregious:
        return Divergence(
            strategy, batch_index, "cost", egregious[0].render()
        )
    return None


#: A sustained observed/predicted EWMA above this is a fuzz divergence:
#: across the whole batch stream, the upper-bound cost model cannot
#: explain the measured work even after smoothing out per-round noise.
_DRIFT_HARD_RATIO = 3.0


def _check_drift(
    engine, strategy: str, batch_index: int, diag_sink: Optional[list]
) -> Optional[Divergence]:
    """COST504 sustained-drift check over the completed case.

    Alerts are informational (the monitor flags *any* miscalibration,
    and over-prediction is expected for an upper-bound model); only a
    sustained *under*-prediction beyond :data:`_DRIFT_HARD_RATIO`
    diverges, mirroring the hard-factor rule in :func:`_reconcile_cost`.
    """
    monitor = getattr(engine, "drift", None)
    if monitor is None:  # baseline engines carry no drift monitor
        return None
    try:
        alerts = monitor.alerts()
    except Exception:  # noqa: BLE001 - telemetry must never kill a case
        return None
    if diag_sink is not None:
        diag_sink.extend(
            f"COST504 [{strategy}] {alert.render()}" for alert in alerts
        )
    egregious = [
        alert
        for alert in alerts
        if alert.kind == "under_predicted" and alert.ewma > _DRIFT_HARD_RATIO
    ]
    if egregious:
        return Divergence(strategy, batch_index, "drift", egregious[0].render())
    return None


def analyze_case(case: Mapping):
    """Static analysis of the case's generated plan (own database)."""
    from ..analysis import analyze_generated
    from ..core.generator import ScriptGenerator
    from ..core.schema_gen import generate_base_schemas

    db = build_database(case)
    generator = ScriptGenerator("V", build_plan(case["plan"], db))
    generated = generator.generate(generate_base_schemas(generator.plan, db))
    return analyze_generated(generated, db=db)


def fingerprint_check(case: Mapping) -> Optional[str]:
    """Twin-generation fingerprint determinism check.

    Builds the case's database and generates its ∆-script twice, fully
    independently, and compares the exact (syntactic) fingerprints of
    the two generated plans.  The generator is supposed to be a pure
    function of (plan, statistics); a mismatch means some ambient state
    (hash ordering, caching, RNG) leaked into plan or script structure —
    exactly the bug class the incremental analysis cache cannot survive.
    Returns a detail string on mismatch, None when the twins agree.
    """
    from ..analysis import generated_fingerprint
    from ..core.generator import ScriptGenerator
    from ..core.schema_gen import generate_base_schemas

    prints = []
    for _ in range(2):
        db = build_database(case)
        generator = ScriptGenerator("V", build_plan(case["plan"], db))
        generated = generator.generate(
            generate_base_schemas(generator.plan, db)
        )
        prints.append(generated_fingerprint(generated, db, alpha=False))
    if prints[0] != prints[1]:
        return f"twin generations fingerprint {prints[0]} != {prints[1]}"
    return None


def run_case(
    case: Mapping, strategies: Sequence[str] = ALL_STRATEGIES
) -> CaseResult:
    """Differential-check one case across *strategies*.

    The static analyzer runs first, as one more cross-check: a crash is
    an ``exception`` divergence, an error-severity diagnostic on a plan
    the generator was happy to emit is an ``analysis`` divergence —
    either the generator produced a hazard or the analyzer cried wolf,
    and both are findings.  Twin generations that disagree on their
    exact fingerprint are a ``fingerprint`` divergence: nondeterminism
    in the generator that would silently poison the analysis cache.
    """
    result = CaseResult()
    try:
        report = analyze_case(case)
    except Exception as exc:  # noqa: BLE001
        result.divergences.append(
            Divergence("analyzer", -1, "exception", _tail(exc))
        )
    else:
        result.diagnostics = [d.render() for d in report.diagnostics]
        for diag in report.errors:
            result.divergences.append(
                Divergence(
                    "analyzer", -1, "analysis", diag.render().splitlines()[0]
                )
            )
        try:
            mismatch = fingerprint_check(case)
        except Exception as exc:  # noqa: BLE001
            result.divergences.append(
                Divergence("analyzer", -1, "exception", _tail(exc))
            )
        else:
            if mismatch is not None:
                result.divergences.append(
                    Divergence("analyzer", -1, "fingerprint", mismatch)
                )
    try:
        expected = oracle_states(case)
    except Exception as exc:  # noqa: BLE001
        result.divergences.append(
            Divergence("oracle", -1, "oracle_error", _tail(exc))
        )
        return result
    for strategy in strategies:
        divergence = run_strategy(
            case, strategy, expected, diag_sink=result.diagnostics
        )
        if divergence is not None:
            result.divergences.append(divergence)
    return result
