"""Engine invariants the fuzzer checks after every maintenance round.

A view can match the recompute oracle while the engine is still rotting
inside — a stale intermediate cache or a corrupt secondary index only
shows up on some *later* batch.  These checks make such latent damage a
divergence at the round that caused it:

* **primary-key uniqueness / placement** — every materialized table maps
  each storage key to a row whose key columns equal it;
* **index consistency** — every secondary-index bucket entry points at a
  live row with the bucket's value, and every row is findable through
  every index;
* **non-negative counters** — no phase of the round's report went
  backwards;
* **phase reconciliation** — per-field sums of the phase buckets equal
  the round's ``__total__`` (the obs layer's accounting guarantee);
* **cache consistency** — every intermediate cache, hidden aggregate
  output and operator cache equals a fresh recomputation of its plan
  node against the post-state database.
"""

from __future__ import annotations

from collections import Counter

from ..algebra.evaluate import evaluate_plan
from ..core.rules.aggregate import OpCacheSpec
from ..storage import AccessCounts, CounterSet, Table

_COUNT_FIELDS = ("index_lookups", "tuple_reads", "tuple_writes", "index_maintenance")


def check_table(table: Table, label: str) -> list[str]:
    """Primary-key and secondary-index structural integrity."""
    problems: list[str] = []
    for key, row in table._rows.items():
        if table.schema.key_of(row) != key:
            problems.append(
                f"{label}: row {row!r} stored under key {key!r} but its key "
                f"columns are {table.schema.key_of(row)!r}"
            )
    n_rows = len(table._rows)
    for columns, index in table._indexes.items():
        seen = 0
        for value, bucket in index.buckets.items():
            for key in bucket:
                row = table._rows.get(key)
                if row is None:
                    problems.append(
                        f"{label}: index {columns} bucket {value!r} holds "
                        f"dead key {key!r}"
                    )
                elif index.value_of(row) != value:
                    problems.append(
                        f"{label}: index {columns} bucket {value!r} holds "
                        f"key {key!r} whose row has value "
                        f"{index.value_of(row)!r}"
                    )
                else:
                    seen += 1
        if seen != n_rows:
            problems.append(
                f"{label}: index {columns} covers {seen} of {n_rows} rows"
            )
    return problems


def check_report(report, label: str) -> list[str]:
    """Non-negative phase counters + exact phase/total reconciliation."""
    problems: list[str] = []
    totals = {f: 0 for f in _COUNT_FIELDS}
    grand = None
    for phase, counts in report.phase_counts.items():
        for field in _COUNT_FIELDS:
            value = getattr(counts, field)
            if value < 0:
                problems.append(
                    f"{label}: phase {phase!r} has negative {field} ({value})"
                )
        if phase == "__total__":
            grand = counts
        else:
            for field in _COUNT_FIELDS:
                totals[field] += getattr(counts, field)
    if grand is not None:
        for field in _COUNT_FIELDS:
            if totals[field] != getattr(grand, field):
                problems.append(
                    f"{label}: phases sum to {field}={totals[field]} but "
                    f"__total__ has {getattr(grand, field)}"
                )
    return problems


def _node_by_id(plan, node_id: int):
    if plan.node_id == node_id:
        return plan
    for child in plan.children:
        found = _node_by_id(child, node_id)
        if found is not None:
            return found
    return None


def _multiset_diff(expected, actual) -> str:
    missing = expected - actual
    extra = actual - expected
    parts = []
    if missing:
        parts.append(f"missing {sorted(missing.elements(), key=repr)[:5]!r}")
    if extra:
        parts.append(f"extra {sorted(extra.elements(), key=repr)[:5]!r}")
    return ", ".join(parts)


def check_caches(view, db) -> list[str]:
    """Semantic cache consistency against a fresh recompute of each node.

    Works for both engines' view objects: ``caches`` (ID engine
    intermediate caches), ``agg_outputs`` (tuple engine hidden aggregate
    outputs) and ``operator_caches``/``opcaches`` (γ bookkeeping).
    """
    problems: list[str] = []
    plan = view.plan
    materializations: dict[int, Table] = {}
    materializations.update(getattr(view, "caches", {}))
    materializations.update(getattr(view, "agg_outputs", {}))
    for node_id, table in materializations.items():
        node = _node_by_id(plan, node_id)
        if node is None:
            problems.append(f"cache n{node_id}: node not found in plan")
            continue
        if node is plan:
            continue  # the root is the view table; the oracle covers it
        expected = Counter(evaluate_plan(node, db).rows)
        actual = Counter(table.rows_uncounted())
        if expected != actual:
            problems.append(
                f"cache n{node_id} ({node.label()}) stale: "
                + _multiset_diff(expected, actual)
            )
    opcaches: dict[int, Table] = {}
    opcaches.update(getattr(view, "operator_caches", {}))
    opcaches.update(getattr(view, "opcaches", {}))
    for node_id, table in opcaches.items():
        gnode = _node_by_id(plan, node_id)
        if gnode is None:
            problems.append(f"opcache n{node_id}: node not found in plan")
            continue
        rebuilt = OpCacheSpec(gnode, "check").build(
            evaluate_plan(gnode.child, db), CounterSet()
        )
        expected = Counter(rebuilt.rows_uncounted())
        actual = Counter(table.rows_uncounted())
        if expected != actual:
            problems.append(
                f"opcache n{node_id} stale: " + _multiset_diff(expected, actual)
            )
    return problems


def check_engine_state(view, db, report) -> list[str]:
    """All invariant families for one view after one maintenance round."""
    problems = check_report(report, "report")
    problems += check_table(view.table, f"view {view.name!r}")
    for node_id, table in {
        **getattr(view, "caches", {}),
        **getattr(view, "agg_outputs", {}),
        **getattr(view, "operator_caches", {}),
        **getattr(view, "opcaches", {}),
    }.items():
        problems += check_table(table, f"materialization n{node_id}")
    for name in db.table_names():
        problems += check_table(db.table(name), f"base table {name!r}")
    problems += check_caches(view, db)
    return problems
