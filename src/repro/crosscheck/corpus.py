"""Regression corpus: shrunken fuzzer cases checked into the tree.

Every divergence the fuzzer finds (and any bug fixed by hand) should
leave behind a minimal case file in ``tests/regressions/`` so the bug
stays fixed.  Files are the pure-JSON case spec of :mod:`.spec`, plus
optional annotation keys (``label``, ``divergence``) that the runner
ignores; ``tests/test_regressions.py`` replays every file on each test
run and demands a clean :class:`~repro.crosscheck.runner.CaseResult`.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Mapping, Optional

from ..errors import PlanError
from .spec import SPEC_VERSION

#: ``tests/regressions`` at the repository root (this file lives at
#: ``src/repro/crosscheck/corpus.py``).
DEFAULT_CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "regressions"

_NAME_RE = re.compile(r"[^a-z0-9_]+")


def corpus_files(directory: Optional[Path] = None) -> list[Path]:
    """All corpus case files, sorted for stable test ordering."""
    directory = Path(directory) if directory is not None else DEFAULT_CORPUS_DIR
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


def load_corpus_case(path: Path) -> dict:
    """Read one corpus file back into a runnable case spec."""
    with open(path, encoding="utf-8") as fh:
        case = json.load(fh)
    version = case.get("version")
    if version != SPEC_VERSION:
        raise PlanError(
            f"{path}: corpus case version {version!r} != {SPEC_VERSION}"
        )
    return case


def save_corpus_case(
    case: Mapping,
    name: str,
    directory: Optional[Path] = None,
    *,
    label: Optional[str] = None,
    divergence: Optional[str] = None,
) -> Path:
    """Write a (shrunken) case into the corpus; returns the file path.

    *name* is slugified into the filename.  *label* should say what bug
    the case pinned down; *divergence* records the original failure
    string — both are documentation, invisible to the replayer.
    """
    directory = Path(directory) if directory is not None else DEFAULT_CORPUS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    slug = _NAME_RE.sub("_", name.lower()).strip("_") or "case"
    path = directory / f"{slug}.json"
    payload = dict(case)
    if label is not None:
        payload["label"] = label
    if divergence is not None:
        payload["divergence"] = divergence
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    return path
