"""Differential cross-check fuzzer: every engine vs the recompute oracle.

See docs/CROSSCHECK.md for the design and the seed/corpus workflow.
"""

from .corpus import corpus_files, load_corpus_case, save_corpus_case
from .generate import CaseGenerator, generate_case
from .invariants import check_engine_state, check_report, check_table
from .runner import (
    ALL_STRATEGIES,
    CaseResult,
    Divergence,
    STRATEGY_FACTORIES,
    run_case,
    run_strategy,
)
from .shrink import shrink_case
from .spec import (
    apply_modification,
    build_database,
    build_plan,
    case_label,
    expr_from_spec,
    expr_to_spec,
    plan_tables,
)

__all__ = [
    "ALL_STRATEGIES",
    "CaseGenerator",
    "CaseResult",
    "Divergence",
    "STRATEGY_FACTORIES",
    "apply_modification",
    "build_database",
    "build_plan",
    "case_label",
    "check_engine_state",
    "check_report",
    "check_table",
    "corpus_files",
    "expr_from_spec",
    "expr_to_spec",
    "generate_case",
    "load_corpus_case",
    "plan_tables",
    "run_case",
    "run_strategy",
    "save_corpus_case",
    "shrink_case",
]
