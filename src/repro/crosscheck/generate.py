"""Seeded random case generation for the differential fuzzer.

Everything flows from one ``random.Random(seed)``: schemas (1–4 tables,
int/str columns, FK-style reference columns), view plans (σ/π/⋈/γ/
antijoin/union over aliased scans — alias prefixes keep join columns
disjoint, the raw ``Join`` node's requirement), and modification streams
with deliberately adversarial value distributions:

* **NULL-heavy** — nullable columns draw NULL with high probability, so
  three-valued predicate logic, NULL join keys, NULL group keys and
  all-NULL aggregate groups are all routinely exercised;
* **duplicate-heavy** — non-key values come from tiny domains, so
  duplicate extrema (min/max ties) and duplicate join fan-out happen
  constantly;
* **skewed keys** — modifications hit low keys far more often than high
  ones (Zipf-ish), so fold chains (insert∘update∘delete of one tuple in
  one batch) are common;
* **type chaos** — with small probability a *string* column receives an
  int value, exercising the UNKNOWN-on-incomparable comparison semantics
  (int columns stay int: SUM/AVG over mixed types is a genuine type
  error, not a semantics corner).

The generator only promises *valid* workloads (inserts of fresh keys,
deletes/updates of live keys, no key-column updates); it promises
nothing about usefulness — empty tables, empty batches and predicates
that select nothing are all fair game and must not diverge either.
"""

from __future__ import annotations

import copy
import random
from typing import Optional

#: Tiny value domains: heavy duplication by construction.
INT_DOMAIN = [0, 1, 2, 3, 5, 7, 100]
STR_DOMAIN = ["a", "b", "c", "x", "aa", ""]

#: Aggregate functions the plan generator may emit.
AGG_FUNCS = ("count", "sum", "avg", "min", "max")


class _ColumnInfo:
    """Generator-side metadata for one (aliased) plan column."""

    __slots__ = ("name", "ctype", "nullable", "ref_table", "key_of")

    def __init__(
        self,
        name: str,
        ctype: str,
        nullable: bool,
        ref_table: Optional[str] = None,
        key_of: Optional[str] = None,
    ):
        self.name = name
        self.ctype = ctype  # "int" | "str"
        self.nullable = nullable
        self.ref_table = ref_table  # FK target table, if any
        self.key_of = key_of  # base table this column is the key of


class CaseGenerator:
    """Deterministic generator: same seed, same stream of case specs."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        # name -> {"key": str, "columns": {name: _ColumnInfo}} (base tables)
        self._tables: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def _value(self, info: _ColumnInfo, live_keys: dict[str, list]) -> object:
        rng = self.rng
        if info.nullable and rng.random() < 0.30:
            return None
        if info.ref_table is not None:
            keys = live_keys.get(info.ref_table, [])
            if keys and rng.random() < 0.85:
                return rng.choice(keys)
            return rng.choice(INT_DOMAIN)  # dangling reference
        if info.ctype == "int":
            return rng.choice(INT_DOMAIN)
        # Type chaos lives in str columns only (see module docstring).
        if rng.random() < 0.06:
            return rng.choice(INT_DOMAIN)
        return rng.choice(STR_DOMAIN)

    def _skewed_choice(self, items: list):
        """Pick with bias toward the front of the list (key skew)."""
        rng = self.rng
        if len(items) == 1 or rng.random() < 0.5:
            return items[rng.randrange(max(1, len(items) // 3 + 1))]
        return rng.choice(items)

    # ------------------------------------------------------------------
    # schemas + data
    # ------------------------------------------------------------------
    def _gen_tables(self) -> list[dict]:
        rng = self.rng
        self._tables = {}
        specs = []
        n_tables = rng.randint(1, 4)
        for i in range(n_tables):
            name = f"t{i}"
            columns: dict[str, _ColumnInfo] = {}
            n_data = rng.randint(1, 3)
            for j in range(n_data):
                ctype = rng.choice(("int", "int", "str"))
                columns[f"c{j}"] = _ColumnInfo(f"c{j}", ctype, nullable=True)
            if i > 0 and rng.random() < 0.75:
                target = f"t{rng.randrange(i)}"
                columns["r0"] = _ColumnInfo(
                    "r0", "int", nullable=rng.random() < 0.3, ref_table=target
                )
            self._tables[name] = {"key": "k", "columns": columns}
            # Declared metadata for the static analyzer: nullability is
            # exact; str columns get no type claim (they deliberately mix
            # in int values — "type chaos" — so any claim would lie).
            types = {"k": "int"}
            types.update(
                {c: info.ctype for c, info in columns.items() if info.ctype == "int"}
            )
            specs.append(
                {
                    "name": name,
                    "columns": ["k"] + list(columns),
                    "key": ["k"],
                    "rows": [],
                    "nullable": [c for c, info in columns.items() if info.nullable],
                    "types": types,
                }
            )
        # Initial rows: keys dense from 0 so modifications can skew low.
        live_keys: dict[str, list] = {s["name"]: [] for s in specs}
        for spec in specs:
            name = spec["name"]
            n_rows = rng.choice((0, 3, 5, 8, 12, 20))
            infos = self._tables[name]["columns"]
            for k in range(n_rows):
                row = [k] + [self._value(info, live_keys) for info in infos.values()]
                spec["rows"].append(row)
                live_keys[name].append(k)
        return specs

    def _foreign_keys(self) -> list[list]:
        out = []
        for name, meta in self._tables.items():
            for info in meta["columns"].values():
                if info.ref_table is not None:
                    out.append([name, [info.name], info.ref_table])
        return out

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def _gen_predicate(self, columns: list[_ColumnInfo], depth: int = 2) -> list:
        rng = self.rng
        if depth > 0 and rng.random() < 0.35:
            kind = rng.choice(("and", "or", "not"))
            if kind == "not":
                return ["not", self._gen_predicate(columns, depth - 1)]
            return [
                kind,
                self._gen_predicate(columns, depth - 1),
                self._gen_predicate(columns, depth - 1),
            ]
        info = rng.choice(columns)
        if rng.random() < 0.2:
            # IN list over the column's domain, sometimes containing NULL.
            domain = INT_DOMAIN if info.ctype == "int" else STR_DOMAIN
            values = rng.sample(domain, rng.randint(1, 3))
            if rng.random() < 0.35:
                values.append(None)
            return ["in", ["col", info.name], values]
        op = rng.choice(("=", "<>", "<", "<=", ">", ">="))
        if rng.random() < 0.12:
            # Column-vs-column comparison (same source relation).
            other = rng.choice(columns)
            return ["cmp", op, ["col", info.name], ["col", other.name]]
        if rng.random() < 0.08:
            literal: object = None  # NULL literal: the predicate is UNKNOWN
        elif rng.random() < 0.08:
            # Cross-type literal: UNKNOWN under orderings post-fix.
            literal = (
                rng.choice(STR_DOMAIN)
                if info.ctype == "int"
                else rng.choice(INT_DOMAIN)
            )
        else:
            domain = INT_DOMAIN if info.ctype == "int" else STR_DOMAIN
            literal = rng.choice(domain)
        return ["cmp", op, ["col", info.name], ["lit", literal]]

    # ------------------------------------------------------------------
    # plans
    # ------------------------------------------------------------------
    def _source(self, idx: int) -> tuple[dict, list[_ColumnInfo], list[str]]:
        """One aliased scan (plus optional σ): (spec, columns, id columns)."""
        rng = self.rng
        table = rng.choice(list(self._tables))
        alias = f"s{idx}"
        meta = self._tables[table]
        columns = [_ColumnInfo(f"{alias}_k", "int", False, key_of=table)] + [
            _ColumnInfo(f"{alias}_{info.name}", info.ctype, info.nullable, info.ref_table)
            for info in meta["columns"].values()
        ]
        spec: dict = {"op": "scan", "table": table, "alias": alias}
        if rng.random() < 0.4:
            spec = {
                "op": "select",
                "child": spec,
                "predicate": self._gen_predicate(columns),
            }
        return spec, columns, [f"{alias}_k"]

    def _join_pair(
        self, left: list[_ColumnInfo], right: list[_ColumnInfo]
    ) -> Optional[list]:
        """Pick an equi-join pair, preferring FK -> key references."""
        rng = self.rng
        fk_pairs = []
        for lc in left:
            for rc in right:
                if lc.ref_table is not None and rc.key_of == lc.ref_table:
                    fk_pairs.append([lc.name, rc.name])
                if rc.ref_table is not None and lc.key_of == rc.ref_table:
                    fk_pairs.append([lc.name, rc.name])
        typed_pairs = [
            [lc.name, rc.name]
            for lc in left
            for rc in right
            if lc.ctype == rc.ctype
        ]
        pool = fk_pairs if fk_pairs and rng.random() < 0.8 else typed_pairs
        if not pool:
            return None
        return rng.choice(pool)

    def _gen_plan(self) -> dict:
        rng = self.rng
        n_sources = rng.choice((1, 1, 1, 2, 2, 3))
        spec, columns, ids = self._source(0)
        for i in range(1, n_sources):
            rspec, rcolumns, rids = self._source(i)
            pair = self._join_pair(columns, rcolumns)
            if pair is None:
                continue
            spec = {"op": "join", "left": spec, "right": rspec, "on": [pair]}
            columns = columns + rcolumns
            ids = ids + rids

        if rng.random() < 0.25:
            spec = {
                "op": "select",
                "child": spec,
                "predicate": self._gen_predicate(columns),
            }

        shape = rng.random()
        if shape < 0.30:
            # γ root: group keys may be nullable (NULL group keys) and
            # min/max over tiny domains tie constantly.
            keys = [
                c.name
                for c in rng.sample(columns, rng.randint(1, min(2, len(columns))))
            ]
            int_cols = [c for c in columns if c.ctype == "int"]
            aggs: list[list] = []
            for i in range(rng.randint(1, 3)):
                func = rng.choice(AGG_FUNCS)
                if func == "count":
                    aggs.append(["count", None, f"agg{i}"])
                elif func in ("sum", "avg"):
                    if not int_cols:
                        aggs.append(["count", None, f"agg{i}"])
                    else:
                        aggs.append([func, rng.choice(int_cols).name, f"agg{i}"])
                else:
                    aggs.append([func, rng.choice(columns).name, f"agg{i}"])
            spec = {"op": "groupby", "child": spec, "keys": keys, "aggs": aggs}
        elif shape < 0.45:
            # Union of two σ branches over the same core (identical
            # columns by construction; distinct node objects on build).
            spec = {
                "op": "union",
                "left": {
                    "op": "select",
                    "child": spec,
                    "predicate": self._gen_predicate(columns),
                },
                "right": {
                    "op": "select",
                    # Deep copy: the shrinker must be able to mutate one
                    # branch without aliasing the other.
                    "child": copy.deepcopy(spec),
                    "predicate": self._gen_predicate(columns),
                },
                "branch": "ub",
            }
        elif shape < 0.58:
            # Antijoin against a fresh aliased scan.
            rspec, rcolumns, _ = self._source(9)
            pair = self._join_pair(columns, rcolumns)
            if pair is not None:
                spec = {
                    "op": "antijoin",
                    "left": spec,
                    "right": rspec,
                    "on": [pair],
                }
        elif shape < 0.75 and len(columns) > len(ids):
            # π root: keep the IDs (the engines require them) plus a
            # random subset of the rest.
            non_ids = [c.name for c in columns if c.name not in ids]
            keep = ids + [
                c for c in non_ids if rng.random() < 0.6
            ]
            spec = {"op": "project", "child": spec, "columns": keep}
        return spec

    # ------------------------------------------------------------------
    # modifications
    # ------------------------------------------------------------------
    def _gen_batches(self, table_specs: list[dict]) -> list[list[dict]]:
        rng = self.rng
        # Shadow state: live rows per table, kept current batch by batch.
        live: dict[str, dict[int, list]] = {
            spec["name"]: {row[0]: list(row) for row in spec["rows"]}
            for spec in table_specs
        }
        next_key = {name: max(rows, default=-1) + 1 for name, rows in live.items()}
        batches = []
        for _ in range(rng.randint(1, 4)):
            batch = []
            for _ in range(rng.randint(1, 6)):
                name = rng.choice(list(live))
                rows = live[name]
                infos = self._tables[name]["columns"]
                live_keys = {t: sorted(v) for t, v in live.items()}
                roll = rng.random()
                if not rows or roll < 0.35:
                    key = next_key[name]
                    next_key[name] += 1
                    row = [key] + [
                        self._value(info, live_keys) for info in infos.values()
                    ]
                    rows[key] = row
                    batch.append({"op": "insert", "table": name, "row": list(row)})
                elif roll < 0.65:
                    key = self._skewed_choice(sorted(rows))
                    changes = {}
                    for cname in rng.sample(
                        list(infos), rng.randint(1, max(1, len(infos) - 1))
                    ):
                        if rng.random() < 0.08:
                            # Same-value update: must fold to a no-op.
                            changes[cname] = rows[key][
                                list(infos).index(cname) + 1
                            ]
                        else:
                            changes[cname] = self._value(infos[cname], live_keys)
                    for cname, value in changes.items():
                        rows[key][list(infos).index(cname) + 1] = value
                    batch.append(
                        {
                            "op": "update",
                            "table": name,
                            "key": [key],
                            "changes": changes,
                        }
                    )
                else:
                    key = self._skewed_choice(sorted(rows))
                    del rows[key]
                    batch.append({"op": "delete", "table": name, "key": [key]})
            batches.append(batch)
        self._ensure_update(batches, live, next_key)
        return batches

    def _ensure_update(
        self,
        batches: list[list[dict]],
        live: dict[str, dict[int, list]],
        next_key: dict[str, int],
    ) -> None:
        """Guarantee every case contains at least one UPDATE.

        UPDATE is the operation most corners of the delta pipeline hinge
        on (fold chains, same-value no-ops, key-preserving rewrites), so
        a case without one under-tests by construction.  The roll-based
        stream usually produces several; when a seed happens not to, a
        deterministic post-pass appends one to the last batch — against a
        live row if any survive, otherwise against a freshly inserted one
        — keeping the workload valid and the seed→case map stable.
        """
        if any(op["op"] == "update" for batch in batches for op in batch):
            return
        rng = self.rng
        batch = batches[-1]
        candidates = [name for name, rows in live.items() if rows]
        if candidates:
            name = rng.choice(candidates)
        else:
            name = rng.choice(list(live))
            infos = self._tables[name]["columns"]
            live_keys = {t: sorted(v) for t, v in live.items()}
            key = next_key[name]
            next_key[name] += 1
            row = [key] + [self._value(info, live_keys) for info in infos.values()]
            live[name][key] = row
            batch.append({"op": "insert", "table": name, "row": list(row)})
        rows = live[name]
        infos = self._tables[name]["columns"]
        live_keys = {t: sorted(v) for t, v in live.items()}
        key = self._skewed_choice(sorted(rows))
        cname = rng.choice(list(infos))
        changes = {cname: self._value(infos[cname], live_keys)}
        rows[key][list(infos).index(cname) + 1] = changes[cname]
        batch.append(
            {"op": "update", "table": name, "key": [key], "changes": changes}
        )

    # ------------------------------------------------------------------
    def generate(self) -> dict:
        """One complete case spec."""
        tables = self._gen_tables()
        plan = self._gen_plan()
        batches = self._gen_batches(tables)
        return {
            "version": 1,
            "tables": tables,
            "foreign_keys": self._foreign_keys(),
            "plan": plan,
            "batches": batches,
        }


def generate_case(seed: int, index: int) -> dict:
    """The *index*-th case of the stream seeded with *seed*.

    Each case gets its own Random derived from (seed, index), so case N
    is reproducible without generating cases 0..N-1 first.
    """
    return CaseGenerator(seed * 1_000_003 + index).generate()
